//===- service/Protocol.cpp - Advisory daemon wire protocol ---------------===//

#include "service/Protocol.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace slo;
using namespace slo::service;

const char *slo::service::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Ping:
    return "Ping";
  case Opcode::PutSource:
    return "PutSource";
  case Opcode::PutSummary:
    return "PutSummary";
  case Opcode::PutProfile:
    return "PutProfile";
  case Opcode::GetAdvice:
    return "GetAdvice";
  case Opcode::GetProfile:
    return "GetProfile";
  case Opcode::GetStats:
    return "GetStats";
  case Opcode::Batch:
    return "Batch";
  case Opcode::Shutdown:
    return "Shutdown";
  case Opcode::Ok:
    return "Ok";
  case Opcode::Error:
    return "Error";
  case Opcode::RetryAfter:
    return "RetryAfter";
  case Opcode::Advice:
    return "Advice";
  case Opcode::Profile:
    return "Profile";
  case Opcode::Stats:
    return "Stats";
  case Opcode::BatchReply:
    return "BatchReply";
  case Opcode::Pong:
    return "Pong";
  case Opcode::GetMetrics:
    return "GetMetrics";
  case Opcode::Traced:
    return "Traced";
  case Opcode::Metrics:
    return "Metrics";
  case Opcode::TracedReply:
    return "TracedReply";
  }
  return "?";
}

const char *slo::service::readStatusName(ReadStatus S) {
  switch (S) {
  case ReadStatus::Ok:
    return "ok";
  case ReadStatus::Eof:
    return "eof";
  case ReadStatus::Truncated:
    return "truncated";
  case ReadStatus::TooLarge:
    return "too-large";
  case ReadStatus::BadLength:
    return "bad-length";
  case ReadStatus::Timeout:
    return "timeout";
  case ReadStatus::Error:
    return "error";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

void slo::service::appendU16(std::string &Out, uint16_t V) {
  Out.push_back(static_cast<char>(V & 0xff));
  Out.push_back(static_cast<char>((V >> 8) & 0xff));
}

void slo::service::appendU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void slo::service::appendU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void slo::service::appendString(std::string &Out, const std::string &S) {
  appendU32(Out, static_cast<uint32_t>(S.size()));
  Out += S;
}

std::string slo::service::encodeFrame(Opcode Op, const std::string &Body) {
  std::string Out;
  appendU32(Out, static_cast<uint32_t>(Body.size() + 1));
  Out.push_back(static_cast<char>(Op));
  Out += Body;
  return Out;
}

std::string slo::service::encodePutSource(const std::string &Module,
                                          const std::string &Source) {
  std::string Body;
  appendString(Body, Module);
  appendString(Body, Source);
  return Body;
}

std::string slo::service::encodePutProfile(const std::string &Module,
                                           const std::string &Feedback) {
  std::string Body;
  appendString(Body, Module);
  appendString(Body, Feedback);
  return Body;
}

std::string slo::service::encodeErrorBody(ErrCode Code,
                                          const std::string &Message) {
  std::string Body;
  appendU16(Body, static_cast<uint16_t>(Code));
  appendString(Body, Message);
  return Body;
}

//===----------------------------------------------------------------------===//
// Trace-context extension
//===----------------------------------------------------------------------===//

namespace {

/// u8 version + u64 trace id + u64 request id.
constexpr uint32_t TraceExtBytes = 1 + 8 + 8;

void appendTraceExt(std::string &Out, const TraceContext &Ctx) {
  Out.push_back(static_cast<char>(Ctx.Version));
  appendU64(Out, Ctx.TraceId);
  appendU64(Out, Ctx.RequestId);
}

/// Reads the u32-length-prefixed extension. Version 0 and a declared
/// length shorter than the known fields are malformed; extra bytes from
/// a future version are skipped via the length.
bool readTraceExt(BodyReader &R, TraceContext &Ctx) {
  uint32_t ExtLen;
  if (!R.readU32(ExtLen))
    return false;
  if (ExtLen < TraceExtBytes || ExtLen > R.remaining())
    return false;
  if (!R.readU8(Ctx.Version) || !R.readU64(Ctx.TraceId) ||
      !R.readU64(Ctx.RequestId))
    return false;
  if (Ctx.Version == 0)
    return false;
  return R.skip(ExtLen - TraceExtBytes);
}

} // namespace

std::string slo::service::encodeTraced(const TraceContext &Ctx,
                                       Opcode InnerOp,
                                       const std::string &InnerBody) {
  std::string Body;
  appendU32(Body, TraceExtBytes);
  appendTraceExt(Body, Ctx);
  Body += encodeFrame(InnerOp, InnerBody);
  return Body;
}

std::string
slo::service::encodeTracedReplyBody(const TraceContext &Ctx,
                                    const std::vector<DaemonSpan> &Spans,
                                    const std::string &InnerReplyFrame) {
  std::string Body;
  appendU32(Body, TraceExtBytes);
  appendTraceExt(Body, Ctx);
  appendU32(Body, static_cast<uint32_t>(Spans.size()));
  for (const DaemonSpan &S : Spans) {
    appendString(Body, S.Name);
    appendU64(Body, S.StartMicros);
    appendU64(Body, S.DurMicros);
  }
  Body += InnerReplyFrame;
  return Body;
}

bool slo::service::decodeTracedRequest(BodyReader &R, TraceContext &Ctx,
                                       Frame &Inner,
                                       uint32_t MaxFrameBytes) {
  if (!readTraceExt(R, Ctx))
    return false;
  return readInnerFrame(R, Inner, MaxFrameBytes);
}

bool slo::service::decodeTracedReply(BodyReader &R, TraceContext &Ctx,
                                     std::vector<DaemonSpan> &Spans,
                                     Frame &Inner, uint32_t MaxFrameBytes) {
  if (!readTraceExt(R, Ctx))
    return false;
  uint32_t Count;
  if (!R.readU32(Count))
    return false;
  // A span entry is at least 4 + 8 + 8 bytes; bound Count before
  // reserving (the hostile-count pattern).
  if (Count > R.remaining() / 20)
    return false;
  Spans.clear();
  Spans.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    DaemonSpan S;
    if (!R.readString(S.Name) || !R.readU64(S.StartMicros) ||
        !R.readU64(S.DurMicros))
      return false;
    Spans.push_back(std::move(S));
  }
  return readInnerFrame(R, Inner, MaxFrameBytes);
}

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

bool BodyReader::readU8(uint8_t &V) {
  if (Failed || Size - Pos < 1) {
    Failed = true;
    return false;
  }
  V = Data[Pos++];
  return true;
}

bool BodyReader::readU16(uint16_t &V) {
  if (Failed || Size - Pos < 2) {
    Failed = true;
    return false;
  }
  V = static_cast<uint16_t>(Data[Pos] | (Data[Pos + 1] << 8));
  Pos += 2;
  return true;
}

bool BodyReader::readU32(uint32_t &V) {
  if (Failed || Size - Pos < 4) {
    Failed = true;
    return false;
  }
  V = static_cast<uint32_t>(Data[Pos]) |
      (static_cast<uint32_t>(Data[Pos + 1]) << 8) |
      (static_cast<uint32_t>(Data[Pos + 2]) << 16) |
      (static_cast<uint32_t>(Data[Pos + 3]) << 24);
  Pos += 4;
  return true;
}

bool BodyReader::readU64(uint64_t &V) {
  if (Failed || Size - Pos < 8) {
    Failed = true;
    return false;
  }
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
  Pos += 8;
  return true;
}

bool BodyReader::skip(size_t N) {
  if (Failed || Size - Pos < N) {
    Failed = true;
    return false;
  }
  Pos += N;
  return true;
}

bool BodyReader::readString(std::string &V) {
  uint32_t Len;
  if (!readU32(Len))
    return false;
  if (Size - Pos < Len) { // Hostile length: declared run overruns body.
    Failed = true;
    return false;
  }
  V.assign(reinterpret_cast<const char *>(Data + Pos), Len);
  Pos += Len;
  return true;
}

bool slo::service::readInnerFrame(BodyReader &R, Frame &F,
                                  uint32_t MaxFrameBytes) {
  uint32_t Len;
  if (!R.readU32(Len))
    return false;
  if (Len == 0 || Len > MaxFrameBytes || R.remaining() < Len)
    return false;
  uint8_t Op;
  if (!R.readU8(Op))
    return false;
  F.Op = static_cast<Opcode>(Op);
  F.Body.clear();
  F.Body.reserve(Len - 1);
  for (uint32_t I = 0; I + 1 < Len; ++I) {
    uint8_t B;
    if (!R.readU8(B))
      return false;
    F.Body.push_back(static_cast<char>(B));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

namespace {

/// Waits for \p Fd to become ready for \p What (POLLIN/POLLOUT).
/// Returns 1 ready, 0 timeout, -1 error/hangup-without-data.
int waitReady(int Fd, short What, int TimeoutMillis) {
  struct pollfd P;
  P.fd = Fd;
  P.events = What;
  P.revents = 0;
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMillis);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return 0;
    // POLLHUP/POLLERR still allow a final read that returns 0/-1; let
    // the caller's read observe it rather than guessing here.
    return 1;
  }
}

/// Reads exactly \p Len bytes. Returns Ok, Truncated (peer closed),
/// Timeout, or Error. \p TimeoutMillis bounds the whole read (0 = no
/// bound).
ReadStatus readExact(int Fd, void *Buf, size_t Len, int TimeoutMillis) {
  auto Deadline = std::chrono::steady_clock::time_point();
  if (TimeoutMillis > 0)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(TimeoutMillis);
  uint8_t *P = static_cast<uint8_t *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    int Wait = -1; // poll() forever
    if (TimeoutMillis > 0) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return ReadStatus::Timeout;
      Wait = static_cast<int>(Left);
    }
    int R = waitReady(Fd, POLLIN, Wait);
    if (R == 0)
      return ReadStatus::Timeout;
    if (R < 0)
      return ReadStatus::Error;
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N == 0)
      return ReadStatus::Truncated;
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return ReadStatus::Error;
    }
    Got += static_cast<size_t>(N);
  }
  return ReadStatus::Ok;
}

} // namespace

ReadStatus slo::service::readFrame(
    int Fd, Frame &F, uint32_t MaxFrameBytes, int IdleTimeoutMillis,
    int FrameTimeoutMillis,
    std::chrono::steady_clock::time_point *FirstByteAt) {
  // The idle wait covers the first header byte only: a connection parked
  // between requests is fine, a peer that started a frame must finish
  // it inside the frame timeout.
  uint8_t Hdr[4];
  {
    int Wait = IdleTimeoutMillis > 0 ? IdleTimeoutMillis : -1;
    int R = waitReady(Fd, POLLIN, Wait);
    if (R == 0)
      return ReadStatus::Timeout;
    if (R < 0)
      return ReadStatus::Error;
    ssize_t N = ::recv(Fd, Hdr, 1, 0);
    if (N == 0)
      return ReadStatus::Eof;
    if (N < 0)
      return ReadStatus::Error;
    if (FirstByteAt)
      *FirstByteAt = std::chrono::steady_clock::now();
  }
  ReadStatus S = readExact(Fd, Hdr + 1, 3, FrameTimeoutMillis);
  if (S != ReadStatus::Ok)
    return S;
  uint32_t Len = static_cast<uint32_t>(Hdr[0]) |
                 (static_cast<uint32_t>(Hdr[1]) << 8) |
                 (static_cast<uint32_t>(Hdr[2]) << 16) |
                 (static_cast<uint32_t>(Hdr[3]) << 24);
  if (Len == 0)
    return ReadStatus::BadLength;
  if (Len > MaxFrameBytes)
    return ReadStatus::TooLarge;
  uint8_t Op;
  S = readExact(Fd, &Op, 1, FrameTimeoutMillis);
  if (S != ReadStatus::Ok)
    return S;
  F.Op = static_cast<Opcode>(Op);
  F.Body.resize(Len - 1);
  if (Len > 1) {
    S = readExact(Fd, F.Body.data(), Len - 1, FrameTimeoutMillis);
    if (S != ReadStatus::Ok)
      return S;
  }
  return ReadStatus::Ok;
}

bool slo::service::writeAll(int Fd, const std::string &Bytes,
                            int TimeoutMillis) {
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    int R = waitReady(Fd, POLLOUT, TimeoutMillis > 0 ? TimeoutMillis : -1);
    if (R <= 0)
      return false;
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

bool slo::service::writeFrame(int Fd, Opcode Op, const std::string &Body,
                              int TimeoutMillis) {
  return writeAll(Fd, encodeFrame(Op, Body), TimeoutMillis);
}

//===----------------------------------------------------------------------===//
// Sockets
//===----------------------------------------------------------------------===//

bool slo::service::makeSocketPair(int Fds[2]) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
    return false;
  ::fcntl(Fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(Fds[1], F_SETFD, FD_CLOEXEC);
  return true;
}

int slo::service::listenTcpLocalhost(uint16_t Port, uint16_t &BoundPort) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  ::fcntl(Fd, F_SETFD, FD_CLOEXEC);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof Addr) !=
          0 ||
      ::listen(Fd, 64) != 0) {
    ::close(Fd);
    return -1;
  }
  socklen_t Len = sizeof Addr;
  if (::getsockname(Fd, reinterpret_cast<struct sockaddr *>(&Addr), &Len) !=
      0) {
    ::close(Fd);
    return -1;
  }
  BoundPort = ntohs(Addr.sin_port);
  return Fd;
}

int slo::service::connectTcpLocalhost(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  ::fcntl(Fd, F_SETFD, FD_CLOEXEC);
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof Addr) != 0) {
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  return Fd;
}
