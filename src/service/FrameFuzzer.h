//===- service/FrameFuzzer.h - Protocol frame fuzzer -----------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic frame-level fuzzer for the advisory protocol. From a
/// fixed seed it generates malformed byte sequences — truncated length
/// prefixes, zero and oversized declared lengths, garbage opcodes,
/// hostile body lengths, mid-frame disconnects, raw byte soup,
/// malformed trace-context extensions — fires
/// each at the daemon on a fresh connection, and holds the daemon to
/// its robustness contract:
///
///  - it never crashes or wedges: an interleaved well-formed Ping probe
///    must keep answering Pong throughout the sweep;
///  - malformed injections are never answered with a success opcode
///    (Error / RetryAfter / silence are the only acceptable replies);
///  - callers additionally assert AdvisoryState::fingerprint() is
///    bit-identical before and after the sweep.
///
/// The oracle is non-vacuous: a daemon started with
/// DaemonConfig::InjectFrameBug (garbage opcodes answered as Ping) must
/// make runFrameFuzz fail.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SERVICE_FRAMEFUZZER_H
#define SLO_SERVICE_FRAMEFUZZER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace slo {
namespace service {

struct FrameFuzzOptions {
  uint64_t Seed = 1;
  size_t Count = 200;
  /// The daemon's frame-size ceiling (to aim oversized lengths past it).
  uint32_t MaxFrameBytes = 4u << 20;
  /// Read budget when waiting for a (possible) reply to an injection.
  int ReplyTimeoutMillis = 2000;
  /// Every ProbeEvery injections, a well-formed Ping on a fresh
  /// connection must answer Pong.
  size_t ProbeEvery = 16;
};

struct FrameFuzzReport {
  size_t Sent = 0;
  /// Injections that drew any reply frame at all.
  size_t Replied = 0;
  /// Liveness probes that answered Pong.
  size_t ProbesOk = 0;
  /// Contract violations (success reply to garbage, dead probe, ...).
  size_t Violations = 0;
  std::string FirstViolation;
};

/// Deterministic malformed frame for (Seed, Index). \p CategoryOut gets
/// the generator category (stable across runs; see the .cpp table).
std::string fuzzFrameBytes(uint64_t Seed, size_t Index, unsigned &CategoryOut);

/// Human-readable name of a generator category.
const char *fuzzCategoryName(unsigned Category);

/// Runs the sweep. \p Connect must yield a fresh connected fd to the
/// daemon under test (or -1, which counts as a violation). Returns true
/// when the daemon upheld the contract for all Count injections.
bool runFrameFuzz(const FrameFuzzOptions &Options,
                  const std::function<int()> &Connect,
                  FrameFuzzReport &Report);

} // namespace service
} // namespace slo

#endif // SLO_SERVICE_FRAMEFUZZER_H
