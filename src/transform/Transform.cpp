//===- transform/Transform.cpp - BE transformation driver -----------------===//

#include "transform/Transform.h"

#include "support/Format.h"

using namespace slo;

TransformSummary slo::applyPlans(Module &M,
                                 const std::vector<TypePlan> &Plans,
                                 const LegalityResult &Legal) {
  TransformSummary Summary;

  // Peels first, splits second; the sets of affected types are disjoint
  // by construction (one plan per type), so the order only affects block
  // layout.
  for (int Phase = 0; Phase < 2; ++Phase) {
    for (const TypePlan &Plan : Plans) {
      bool IsPeel = Plan.Kind == TransformKind::Peel;
      if (Plan.isNoop() || (Phase == 0) != IsPeel)
        continue;
      AppliedTransform Applied;
      Applied.Plan = Plan;
      if (IsPeel) {
        PeelabilityInfo Info =
            analyzePeelability(M, Plan.Rec, Legal.get(Plan.Rec));
        if (!Info.Peelable) {
          Summary.Log.push_back("skipped peel of '" +
                                Plan.Rec->getRecordName() +
                                "': " + Info.Reason);
          continue;
        }
        Applied.Peel = applyStructPeel(M, Plan, Info);
        Summary.Log.push_back(formatString(
            "peeled '%s' into %u arrays (%u dead/unused fields removed)",
            Plan.Rec->getRecordName().c_str(),
            static_cast<unsigned>(Applied.Peel.GroupRecs.size()),
            static_cast<unsigned>(Plan.DeadFields.size() +
                                  Plan.UnusedFields.size())));
      } else {
        Applied.Split = applyStructSplit(M, Plan, Legal.get(Plan.Rec));
        Summary.Log.push_back(formatString(
            "split '%s': %u hot, %u cold, %u dead/unused",
            Plan.Rec->getRecordName().c_str(),
            static_cast<unsigned>(Plan.HotFields.size()),
            static_cast<unsigned>(Plan.ColdFields.size()),
            static_cast<unsigned>(Plan.DeadFields.size() +
                                  Plan.UnusedFields.size())));
      }
      ++Summary.TypesTransformed;
      Summary.FieldsSplitOrDead += Plan.splitOrDeadCount();
      Summary.Applied.push_back(std::move(Applied));
    }
  }
  return Summary;
}
