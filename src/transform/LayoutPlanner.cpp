//===- transform/LayoutPlanner.cpp - The paper's heuristics ---------------===//

#include "transform/LayoutPlanner.h"

#include "transform/StructPeel.h"

#include <algorithm>

using namespace slo;

const char *slo::transformKindName(TransformKind K) {
  switch (K) {
  case TransformKind::None:
    return "None";
  case TransformKind::Split:
    return "Splitting";
  case TransformKind::Peel:
    return "Peeling";
  }
  return "?";
}

namespace {

/// Classifies the fields of one type into live/dead/unused.
struct FieldClasses {
  std::vector<unsigned> Live;
  std::vector<unsigned> Dead;   // Stores but no loads.
  std::vector<unsigned> Unused; // No references at all.
};

FieldClasses classifyFields(const TypeFieldStats &S, bool RemoveDead,
                            const std::set<unsigned> *ForceLive) {
  FieldClasses C;
  for (unsigned I = 0; I < S.Rec->getNumFields(); ++I) {
    bool HasReads = S.Reads[I] > 0.0;
    bool HasWrites = S.Writes[I] > 0.0;
    if (!RemoveDead || (ForceLive && ForceLive->count(I))) {
      // A field whose address was taken (and discharged) may be read
      // through stored pointers the access stats cannot see; removing it
      // as dead would be wrong.
      C.Live.push_back(I);
    } else if (!HasReads && !HasWrites) {
      C.Unused.push_back(I);
    } else if (!HasReads && HasWrites) {
      C.Dead.push_back(I);
    } else {
      C.Live.push_back(I);
    }
  }
  return C;
}

/// Stable sort by decreasing hotness: the reordering applied to the new
/// records ("field reordering is currently only performed in the context
/// of structure splitting").
void sortByHotnessDescending(std::vector<unsigned> &Fields,
                             const TypeFieldStats &S) {
  std::stable_sort(Fields.begin(), Fields.end(),
                   [&S](unsigned A, unsigned B) {
                     return S.Hotness[A] > S.Hotness[B];
                   });
}

} // namespace

std::vector<TypePlan> slo::planLayout(const Module &M,
                                      const LegalityResult &Legal,
                                      const FieldStatsResult &Stats,
                                      const PlannerOptions &Opts,
                                      const RefinementResult *Refine) {
  std::vector<TypePlan> Plans;
  for (RecordType *Rec : Legal.types()) {
    TypePlan Plan;
    Plan.Rec = Rec;
    Plan.Kind = TransformKind::None;
    const TypeLegality &L = Legal.get(Rec);

    bool StrictLegal = L.isLegal(/*Relax=*/false);
    const TypeRefinement *TR = Refine ? Refine->get(Rec) : nullptr;
    bool Proven = TR && TR->ProvenLegal && TR->TransformSafe;
    if (!StrictLegal && !Proven) {
      Plan.Reason =
          "illegal: " + violationMaskToString(L.Violations);
      Plans.push_back(std::move(Plan));
      continue;
    }
    if (!L.Attrs.DynamicallyAllocated) {
      Plan.Reason = "not dynamically allocated";
      Plans.push_back(std::move(Plan));
      continue;
    }
    if (L.Attrs.Reallocated) {
      Plan.Reason = "type is realloc'd";
      Plans.push_back(std::move(Plan));
      continue;
    }
    if (L.Attrs.HasGlobalVar || L.Attrs.HasLocalVar ||
        L.Attrs.HasStaticArray) {
      Plan.Reason = "aggregate (non-heap) instances exist";
      Plans.push_back(std::move(Plan));
      continue;
    }

    const TypeFieldStats *S = Stats.get(Rec);
    if (!S) {
      Plan.Reason = "no field statistics";
      Plans.push_back(std::move(Plan));
      continue;
    }

    const std::set<unsigned> *ForceLive =
        TR && !TR->AddressTakenLiveFields.empty()
            ? &TR->AddressTakenLiveFields
            : nullptr;
    FieldClasses C = classifyFields(*S, Opts.EnableDeadFieldRemoval, ForceLive);

    // Peeling is always performed when possible (paper §2.4). The peeling
    // rewrite changes the allocation shape wholesale, so it is reserved
    // for types legal under the blanket tests, not merely proven.
    if (Opts.EnablePeeling && StrictLegal) {
      PeelabilityInfo PI = analyzePeelability(M, Rec, L);
      if (PI.Peelable && C.Live.size() >= 1) {
        Plan.Kind = TransformKind::Peel;
        Plan.DeadFields = C.Dead;
        Plan.UnusedFields = C.Unused;
        // One field per group, like the paper's 179.art example.
        for (unsigned I : C.Live)
          Plan.PeelGroups.push_back({I});
        Plan.Reason = "peeled into " +
                      std::to_string(Plan.PeelGroups.size()) +
                      " per-field arrays";
        Plans.push_back(std::move(Plan));
        continue;
      }
    }

    if (!Opts.EnableSplitting) {
      Plan.Reason = "splitting disabled";
      Plans.push_back(std::move(Plan));
      continue;
    }

    // Splitting: cold fields are live fields under the hotness threshold.
    std::vector<double> Rel = S->relativeHotness();
    std::vector<unsigned> Hot, Cold;
    for (unsigned I : C.Live) {
      if (Rel[I] < Opts.splitThreshold())
        Cold.push_back(I);
      else
        Hot.push_back(I);
    }
    if (Hot.empty()) {
      // Everything cold (type never referenced in a hot context): no
      // split. Dead/unused-field removal still applies — it is static
      // advice, independent of hotness, so a sampled profile that never
      // caught this type in a miss sample must yield the same cleanup
      // an exact profile does.
      if (!C.Live.empty() && (!C.Dead.empty() || !C.Unused.empty())) {
        Plan.Kind = TransformKind::Split;
        Plan.HotFields = C.Live; // All live fields stay.
        Plan.DeadFields = C.Dead;
        Plan.UnusedFields = C.Unused;
        sortByHotnessDescending(Plan.HotFields, *S);
        Plan.Reason = "dead field removal only (no hot fields)";
        Plans.push_back(std::move(Plan));
        continue;
      }
      Plan.Reason = "no hot fields";
      Plans.push_back(std::move(Plan));
      continue;
    }
    if (Cold.size() < Opts.MinColdFields) {
      // Not enough cold fields to pay for the link pointer. Dead-field
      // removal (with reordering) may still be worthwhile.
      if (!C.Dead.empty() || !C.Unused.empty()) {
        Plan.Kind = TransformKind::Split;
        Plan.HotFields = C.Live; // All live fields stay.
        Plan.DeadFields = C.Dead;
        Plan.UnusedFields = C.Unused;
        sortByHotnessDescending(Plan.HotFields, *S);
        Plan.Reason = "dead field removal only";
        Plans.push_back(std::move(Plan));
        continue;
      }
      Plan.Reason = "fewer than " + std::to_string(Opts.MinColdFields) +
                    " cold fields (T_s=" +
                    std::to_string(Opts.splitThreshold()) + "%)";
      Plans.push_back(std::move(Plan));
      continue;
    }

    Plan.Kind = TransformKind::Split;
    Plan.HotFields = Hot;
    Plan.ColdFields = Cold;
    Plan.DeadFields = C.Dead;
    Plan.UnusedFields = C.Unused;
    // Field reordering in the context of splitting: hottest first.
    sortByHotnessDescending(Plan.HotFields, *S);
    sortByHotnessDescending(Plan.ColdFields, *S);
    Plan.Reason = "split: " + std::to_string(Cold.size()) +
                  " cold fields below T_s";
    Plans.push_back(std::move(Plan));
  }
  return Plans;
}
