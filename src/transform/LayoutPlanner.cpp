//===- transform/LayoutPlanner.cpp - The paper's heuristics ---------------===//

#include "transform/LayoutPlanner.h"

#include "transform/StructPeel.h"

#include <algorithm>

using namespace slo;

const char *slo::transformKindName(TransformKind K) {
  switch (K) {
  case TransformKind::None:
    return "None";
  case TransformKind::Split:
    return "Splitting";
  case TransformKind::Peel:
    return "Peeling";
  }
  return "?";
}

namespace {

/// Classifies the fields of one type into live/dead/unused.
struct FieldClasses {
  std::vector<unsigned> Live;
  std::vector<unsigned> Dead;   // Stores but no loads.
  std::vector<unsigned> Unused; // No references at all.
};

FieldClasses classifyFields(const PlannerTypeInput &In, bool RemoveDead) {
  FieldClasses C;
  for (unsigned I = 0; I < In.NumFields; ++I) {
    bool HasReads = In.Reads[I] > 0.0;
    bool HasWrites = In.Writes[I] > 0.0;
    if (!RemoveDead || (In.ForceLive && In.ForceLive->count(I))) {
      // A field whose address was taken (and discharged) may be read
      // through stored pointers the access stats cannot see; removing it
      // as dead would be wrong.
      C.Live.push_back(I);
    } else if (!HasReads && !HasWrites) {
      C.Unused.push_back(I);
    } else if (!HasReads && HasWrites) {
      C.Dead.push_back(I);
    } else {
      C.Live.push_back(I);
    }
  }
  return C;
}

/// Stable sort by decreasing hotness: the reordering applied to the new
/// records ("field reordering is currently only performed in the context
/// of structure splitting").
void sortByHotnessDescending(std::vector<unsigned> &Fields,
                             const std::vector<double> &Hotness) {
  std::stable_sort(Fields.begin(), Fields.end(),
                   [&Hotness](unsigned A, unsigned B) {
                     return Hotness[A] > Hotness[B];
                   });
}

/// Per-field hotness as a percentage of the hottest field
/// (TypeFieldStats::relativeHotness, replicated on the IR-free vector).
std::vector<double> relativeHotness(const std::vector<double> &Hotness) {
  double Max = 0.0;
  for (double H : Hotness)
    Max = std::max(Max, H);
  std::vector<double> Out(Hotness.size(), 0.0);
  if (Max <= 0.0)
    return Out;
  for (size_t I = 0; I < Hotness.size(); ++I)
    Out[I] = 100.0 * Hotness[I] / Max;
  return Out;
}

} // namespace

PlanDecision slo::decideTypePlan(const PlannerTypeInput &In,
                                 const PlannerOptions &Opts) {
  PlanDecision Plan;
  Plan.Kind = TransformKind::None;

  if (!In.StrictLegal && !In.Proven) {
    Plan.Reason = "illegal: " + violationMaskToString(In.Violations);
    return Plan;
  }
  if (!In.DynamicallyAllocated) {
    Plan.Reason = "not dynamically allocated";
    return Plan;
  }
  if (In.Reallocated) {
    Plan.Reason = "type is realloc'd";
    return Plan;
  }
  if (In.HasAggregateInstance) {
    Plan.Reason = "aggregate (non-heap) instances exist";
    return Plan;
  }
  if (!In.HaveStats) {
    Plan.Reason = "no field statistics";
    return Plan;
  }

  FieldClasses C = classifyFields(In, Opts.EnableDeadFieldRemoval);

  // Peeling is always performed when possible (paper §2.4). The peeling
  // rewrite changes the allocation shape wholesale, so it is reserved
  // for types legal under the blanket tests, not merely proven.
  if (Opts.EnablePeeling && In.StrictLegal && In.Peelable &&
      C.Live.size() >= 1) {
    Plan.Kind = TransformKind::Peel;
    Plan.DeadFields = C.Dead;
    Plan.UnusedFields = C.Unused;
    // One field per group, like the paper's 179.art example.
    for (unsigned I : C.Live)
      Plan.PeelGroups.push_back({I});
    Plan.Reason = "peeled into " + std::to_string(Plan.PeelGroups.size()) +
                  " per-field arrays";
    return Plan;
  }

  if (!Opts.EnableSplitting) {
    Plan.Reason = "splitting disabled";
    return Plan;
  }

  // Splitting: cold fields are live fields under the hotness threshold.
  std::vector<double> Rel = relativeHotness(In.Hotness);
  std::vector<unsigned> Hot, Cold;
  for (unsigned I : C.Live) {
    if (Rel[I] < Opts.splitThreshold())
      Cold.push_back(I);
    else
      Hot.push_back(I);
  }
  if (Hot.empty()) {
    // Everything cold (type never referenced in a hot context): no
    // split. Dead/unused-field removal still applies — it is static
    // advice, independent of hotness, so a sampled profile that never
    // caught this type in a miss sample must yield the same cleanup
    // an exact profile does.
    if (!C.Live.empty() && (!C.Dead.empty() || !C.Unused.empty())) {
      Plan.Kind = TransformKind::Split;
      Plan.HotFields = C.Live; // All live fields stay.
      Plan.DeadFields = C.Dead;
      Plan.UnusedFields = C.Unused;
      sortByHotnessDescending(Plan.HotFields, In.Hotness);
      Plan.Reason = "dead field removal only (no hot fields)";
      return Plan;
    }
    Plan.Reason = "no hot fields";
    return Plan;
  }
  if (Cold.size() < Opts.MinColdFields) {
    // Not enough cold fields to pay for the link pointer. Dead-field
    // removal (with reordering) may still be worthwhile.
    if (!C.Dead.empty() || !C.Unused.empty()) {
      Plan.Kind = TransformKind::Split;
      Plan.HotFields = C.Live; // All live fields stay.
      Plan.DeadFields = C.Dead;
      Plan.UnusedFields = C.Unused;
      sortByHotnessDescending(Plan.HotFields, In.Hotness);
      Plan.Reason = "dead field removal only";
      return Plan;
    }
    Plan.Reason = "fewer than " + std::to_string(Opts.MinColdFields) +
                  " cold fields (T_s=" +
                  std::to_string(Opts.splitThreshold()) + "%)";
    return Plan;
  }

  Plan.Kind = TransformKind::Split;
  Plan.HotFields = Hot;
  Plan.ColdFields = Cold;
  Plan.DeadFields = C.Dead;
  Plan.UnusedFields = C.Unused;
  // Field reordering in the context of splitting: hottest first.
  sortByHotnessDescending(Plan.HotFields, In.Hotness);
  sortByHotnessDescending(Plan.ColdFields, In.Hotness);
  Plan.Reason =
      "split: " + std::to_string(Cold.size()) + " cold fields below T_s";
  return Plan;
}

std::vector<TypePlan> slo::planLayout(const Module &M,
                                      const LegalityResult &Legal,
                                      const FieldStatsResult &Stats,
                                      const PlannerOptions &Opts,
                                      const RefinementResult *Refine) {
  std::vector<TypePlan> Plans;
  for (RecordType *Rec : Legal.types()) {
    const TypeLegality &L = Legal.get(Rec);
    const TypeFieldStats *S = Stats.get(Rec);
    const TypeRefinement *TR = Refine ? Refine->get(Rec) : nullptr;

    PlannerTypeInput In;
    In.NumFields = Rec->getNumFields();
    In.StrictLegal = L.isLegal(/*Relax=*/false);
    In.Proven = TR && TR->ProvenLegal && TR->TransformSafe;
    In.Violations = L.Violations;
    In.DynamicallyAllocated = L.Attrs.DynamicallyAllocated;
    In.Reallocated = L.Attrs.Reallocated;
    In.HasAggregateInstance =
        L.Attrs.HasGlobalVar || L.Attrs.HasLocalVar || L.Attrs.HasStaticArray;
    if (S) {
      In.HaveStats = true;
      In.Reads = S->Reads;
      In.Writes = S->Writes;
      In.Hotness = S->Hotness;
    }
    In.ForceLive = TR && !TR->AddressTakenLiveFields.empty()
                       ? &TR->AddressTakenLiveFields
                       : nullptr;
    // The structural peelability walk is only consulted for types that
    // survive the cheap gates, so only those pay for it.
    if (Opts.EnablePeeling && In.StrictLegal && In.HaveStats &&
        In.DynamicallyAllocated && !In.Reallocated && !In.HasAggregateInstance)
      In.Peelable = analyzePeelability(M, Rec, L).Peelable;

    PlanDecision D = decideTypePlan(In, Opts);
    TypePlan Plan;
    Plan.Rec = Rec;
    Plan.Kind = D.Kind;
    Plan.HotFields = std::move(D.HotFields);
    Plan.ColdFields = std::move(D.ColdFields);
    Plan.PeelGroups = std::move(D.PeelGroups);
    Plan.DeadFields = std::move(D.DeadFields);
    Plan.UnusedFields = std::move(D.UnusedFields);
    Plan.Reason = std::move(D.Reason);
    Plans.push_back(std::move(Plan));
  }
  return Plans;
}
