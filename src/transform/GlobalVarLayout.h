//===- transform/GlobalVarLayout.h - GVL phase -----------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's companion phase: "Our compiler has a similar phase, which
/// we call global variable layout (GVL). We plan to merge GVL with the
/// presented framework in the future." (§4, discussing Calder et al.'s
/// cache-conscious data placement.)
///
/// This is that merge: globals are re-laid-out by access weight so hot
/// scalars pack into the same cache lines and cold ones move out of the
/// way. The interpreter assigns global addresses in module order, so the
/// reordering changes real simulated addresses, like a linker acting on
/// a placement map.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_GLOBALVARLAYOUT_H
#define SLO_TRANSFORM_GLOBALVARLAYOUT_H

#include "analysis/Affinity.h"
#include "ir/Module.h"

#include <string>
#include <vector>

namespace slo {

/// Outcome of the GVL phase.
struct GvlResult {
  /// Globals in their new order (hottest scalars first).
  std::vector<const GlobalVariable *> NewOrder;
  /// Per-global access weight, parallel to NewOrder.
  std::vector<double> Weights;
  /// True when the order actually changed.
  bool Changed = false;
};

/// Computes the access weight of every global under \p WS (loads and
/// stores directly through the global, weighted by block weight).
std::vector<std::pair<const GlobalVariable *, double>>
computeGlobalWeights(const Module &M, const WeightSource &WS);

/// Reorders the module's globals hottest-first: scalars and pointers by
/// descending weight, then aggregates (arrays/records) by descending
/// weight. Stable for ties, so the layout is deterministic.
GvlResult applyGlobalVariableLayout(Module &M, const WeightSource &WS);

} // namespace slo

#endif // SLO_TRANSFORM_GLOBALVARLAYOUT_H
