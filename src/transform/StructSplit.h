//===- transform/StructSplit.h - Structure splitting -----------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structure splitting (paper §2.1, Figure 1b): breaks a record into a
/// hot part and a cold part and inserts a link pointer so that every
/// part remains addressable from a pointer to the root part. Dead field
/// removal and field reordering are wrapped into this transformation,
/// exactly as in the paper: only live fields move into the new records,
/// and the hot part is emitted in the plan's (hotness-sorted) order.
///
/// Allocation sites grow a second allocation for the cold array plus a
/// link-pointer initialization loop; free sites free the cold array
/// through element 0's link before freeing the hot array. Both pieces of
/// runtime overhead are real in the simulator, which is how the paper's
/// observation that "the cost for loops accessing cold fields via link
/// pointers grows disproportionately" reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_STRUCTSPLIT_H
#define SLO_TRANSFORM_STRUCTSPLIT_H

#include "analysis/Legality.h"
#include "transform/Plan.h"

namespace slo {

/// Outcome of one split.
struct SplitResult {
  /// The record that replaced the original (holds hot fields + link).
  RecordType *HotRec = nullptr;
  /// The cold record, or null when nothing was split out.
  RecordType *ColdRec = nullptr;
  /// Index of the link-pointer field within HotRec (meaningful only when
  /// ColdRec is non-null).
  unsigned LinkFieldIndex = 0;
  /// Old-field-index -> (record, new index). Dead/unused fields are
  /// absent.
  std::map<unsigned, std::pair<RecordType *, unsigned>> FieldMap;
};

/// Applies a Split plan to \p M. \p Legal must be the legality info of
/// the SAME module (its alloc-site records are used to rewrite the
/// allocations). The module is verified on exit.
SplitResult applyStructSplit(Module &M, const TypePlan &Plan,
                             const TypeLegality &Legal);

} // namespace slo

#endif // SLO_TRANSFORM_STRUCTSPLIT_H
