//===- transform/LayoutPlanner.h - The paper's heuristics ------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristics of paper §2.4, deciding if and how each record type is
/// transformed:
///
///   - dead structure fields are always removed;
///   - structure peeling is always performed when legal;
///   - splitting uses a relative-hotness threshold T_s (3% under PBO,
///     7.5% under ISPBO) and requires at least two split-out fields
///     (the link pointer must pay for itself);
///   - field reordering happens only in the context of splitting;
///   - only dynamically allocated types are transformed, never types
///     with only global/local instances, never realloc'd types;
///   - hot fields stay in the hot section no matter what ("the single
///     most important criterion for splitting is hotness").
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_LAYOUTPLANNER_H
#define SLO_TRANSFORM_LAYOUTPLANNER_H

#include "analysis/Affinity.h"
#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "transform/Plan.h"

#include <vector>

namespace slo {

class Module;

struct PlannerOptions {
  /// T_s for profile-based compilations (paper: 3%).
  double SplitThresholdPBO = 3.0;
  /// T_s for non-profile (ISPBO) compilations (paper: 7.5%).
  double SplitThresholdStatic = 7.5;
  /// True when the hotness numbers come from a profile (selects the
  /// threshold).
  bool HotnessFromProfile = false;
  /// Minimum number of fields that must be split out (paper: 2, because
  /// of the link pointer).
  unsigned MinColdFields = 2;
  /// Enable/disable individual transformations (for ablations).
  bool EnablePeeling = true;
  bool EnableSplitting = true;
  bool EnableDeadFieldRemoval = true;

  double splitThreshold() const {
    return HotnessFromProfile ? SplitThresholdPBO : SplitThresholdStatic;
  }
};

/// Decides the transformation for every record type.
/// \p M must be the module \p Legal and \p Stats were computed on.
///
/// When \p Refine is supplied, types whose violations were all discharged
/// by the points-to refinement (and whose allocations are rewritable) are
/// admitted for splitting even though the blanket legality tests failed;
/// fields with discharged address-taken sites are kept live. The Relax
/// flag of TypeLegality::isLegal is never consulted here: upper bounds
/// report, proofs transform.
std::vector<TypePlan> planLayout(const Module &M, const LegalityResult &Legal,
                                 const FieldStatsResult &Stats,
                                 const PlannerOptions &Opts,
                                 const RefinementResult *Refine = nullptr);

} // namespace slo

#endif // SLO_TRANSFORM_LAYOUTPLANNER_H
