//===- transform/LayoutPlanner.h - The paper's heuristics ------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristics of paper §2.4, deciding if and how each record type is
/// transformed:
///
///   - dead structure fields are always removed;
///   - structure peeling is always performed when legal;
///   - splitting uses a relative-hotness threshold T_s (3% under PBO,
///     7.5% under ISPBO) and requires at least two split-out fields
///     (the link pointer must pay for itself);
///   - field reordering happens only in the context of splitting;
///   - only dynamically allocated types are transformed, never types
///     with only global/local instances, never realloc'd types;
///   - hot fields stay in the hot section no matter what ("the single
///     most important criterion for splitting is hotness").
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_LAYOUTPLANNER_H
#define SLO_TRANSFORM_LAYOUTPLANNER_H

#include "analysis/Affinity.h"
#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "transform/Plan.h"

#include <vector>

namespace slo {

class Module;

struct PlannerOptions {
  /// T_s for profile-based compilations (paper: 3%).
  double SplitThresholdPBO = 3.0;
  /// T_s for non-profile (ISPBO) compilations (paper: 7.5%).
  double SplitThresholdStatic = 7.5;
  /// True when the hotness numbers come from a profile (selects the
  /// threshold).
  bool HotnessFromProfile = false;
  /// Minimum number of fields that must be split out (paper: 2, because
  /// of the link pointer).
  unsigned MinColdFields = 2;
  /// Enable/disable individual transformations (for ablations).
  bool EnablePeeling = true;
  bool EnableSplitting = true;
  bool EnableDeadFieldRemoval = true;

  double splitThreshold() const {
    return HotnessFromProfile ? SplitThresholdPBO : SplitThresholdStatic;
  }
};

/// Everything the plan decision needs to know about one record type,
/// decoupled from the IR. planLayout builds these views from the linked
/// module's analysis results; the incremental advisor builds them from
/// merged per-TU summaries — both paths share decideTypePlan, so the
/// incremental advice follows the paper's heuristics by construction.
struct PlannerTypeInput {
  unsigned NumFields = 0;
  /// Every blanket legality test passes.
  bool StrictLegal = false;
  /// All violations discharged by per-site proofs AND the allocations are
  /// rewritable (TypeRefinement::ProvenLegal && TransformSafe).
  bool Proven = false;
  uint32_t Violations = 0;
  bool DynamicallyAllocated = false;
  bool Reallocated = false;
  /// A global/local variable or static array of the type exists.
  bool HasAggregateInstance = false;
  /// Field statistics were computed for the type (Reads/Writes/Hotness
  /// are only meaningful when set).
  bool HaveStats = false;
  std::vector<double> Reads;   // Per field, weighted.
  std::vector<double> Writes;  // Per field, weighted.
  std::vector<double> Hotness; // Per field.
  /// Fields that must stay live (discharged address-taken sites), or
  /// null.
  const std::set<unsigned> *ForceLive = nullptr;
  /// Verdict of the structural peelability check (only consulted for
  /// strictly legal types).
  bool Peelable = false;
};

/// The IR-free part of a TypePlan: what to do and why.
struct PlanDecision {
  TransformKind Kind = TransformKind::None;
  std::vector<unsigned> HotFields;
  std::vector<unsigned> ColdFields;
  std::vector<std::vector<unsigned>> PeelGroups;
  std::vector<unsigned> DeadFields;
  std::vector<unsigned> UnusedFields;
  std::string Reason;
};

/// Decides the transformation for one record type from an IR-free view.
/// This is the paper's §2.4 heuristic core shared by planLayout and the
/// incremental summary-based advisor.
PlanDecision decideTypePlan(const PlannerTypeInput &In,
                            const PlannerOptions &Opts);

/// Decides the transformation for every record type.
/// \p M must be the module \p Legal and \p Stats were computed on.
///
/// When \p Refine is supplied, types whose violations were all discharged
/// by the points-to refinement (and whose allocations are rewritable) are
/// admitted for splitting even though the blanket legality tests failed;
/// fields with discharged address-taken sites are kept live. The Relax
/// flag of TypeLegality::isLegal is never consulted here: upper bounds
/// report, proofs transform.
std::vector<TypePlan> planLayout(const Module &M, const LegalityResult &Legal,
                                 const FieldStatsResult &Stats,
                                 const PlannerOptions &Opts,
                                 const RefinementResult *Refine = nullptr);

} // namespace slo

#endif // SLO_TRANSFORM_LAYOUTPLANNER_H
