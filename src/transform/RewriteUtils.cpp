//===- transform/RewriteUtils.cpp - Shared rewriting helpers --------------===//

#include "transform/RewriteUtils.h"

#include "support/Casting.h"
#include "support/Error.h"

using namespace slo;

Type *slo::remapType(TypeContext &Types, Type *Ty, RecordType *From,
                     RecordType *To) {
  if (Ty == From)
    return To;
  if (auto *PT = dyn_cast<PointerType>(Ty)) {
    Type *NewPointee = remapType(Types, PT->getPointee(), From, To);
    return NewPointee == PT->getPointee() ? Ty
                                          : Types.getPointerType(NewPointee);
  }
  if (auto *AT = dyn_cast<ArrayType>(Ty)) {
    Type *NewElem = remapType(Types, AT->getElementType(), From, To);
    return NewElem == AT->getElementType()
               ? Ty
               : Types.getArrayType(NewElem, AT->getNumElements());
  }
  if (auto *FT = dyn_cast<FunctionType>(Ty)) {
    Type *NewRet = remapType(Types, FT->getReturnType(), From, To);
    std::vector<Type *> NewParams;
    bool Changed = NewRet != FT->getReturnType();
    for (Type *P : FT->getParamTypes()) {
      Type *NP = remapType(Types, P, From, To);
      Changed |= NP != P;
      NewParams.push_back(NP);
    }
    return Changed ? Types.getFunctionType(NewRet, std::move(NewParams))
                   : Ty;
  }
  return Ty;
}

void slo::retypeModuleForRecord(Module &M, RecordType *From, RecordType *To) {
  TypeContext &Types = M.getTypes();
  IRContext &Ctx = M.getContext();

  for (const auto &G : M.globals()) {
    Type *NewTy = remapType(Types, G->getValueType(), From, To);
    if (NewTy != G->getValueType())
      G->setValueType(Types, NewTy);
  }

  for (const auto &F : M.functions()) {
    // Function signature (arguments retype via their own walk below).
    auto *NewFnTy = cast<FunctionType>(
        remapType(Types, F->getFunctionType(), From, To));
    if (NewFnTy != F->getFunctionType())
      F->retype(Types, NewFnTy);

    for (unsigned A = 0; A < F->getNumArgs(); ++A) {
      Argument *Arg = F->getArg(A);
      Type *NewTy = remapType(Types, Arg->getType(), From, To);
      if (NewTy != Arg->getType())
        Arg->mutateType(NewTy);
    }

    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        if (auto *A = dyn_cast<AllocaInst>(I.get())) {
          Type *NewTy = remapType(Types, A->getAllocatedType(), From, To);
          if (NewTy != A->getAllocatedType())
            A->setAllocatedType(Types, NewTy);
        } else {
          Type *NewTy = remapType(Types, I->getType(), From, To);
          if (NewTy != I->getType())
            I->mutateType(NewTy);
        }
        // Null-pointer constants are uniqued per type; swap operands.
        for (unsigned Op = 0; Op < I->getNumOperands(); ++Op) {
          if (auto *Null = dyn_cast<ConstantNull>(I->getOperand(Op))) {
            Type *NewTy = remapType(Types, Null->getType(), From, To);
            if (NewTy != Null->getType())
              I->setOperand(Op,
                            Ctx.getNullPtr(cast<PointerType>(NewTy)));
          }
        }
      }
    }
  }
}

void slo::rewriteSizeofConstants(Module &M, RecordType *From,
                                 RecordType *To) {
  IRContext &Ctx = M.getContext();
  ConstantInt *NewConst = Ctx.getSizeOf(To);
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        for (unsigned Op = 0; Op < I->getNumOperands(); ++Op) {
          auto *C = dyn_cast<ConstantInt>(I->getOperand(Op));
          if (C && C->getSizeOfRecord() == From)
            I->setOperand(Op, NewConst);
        }
      }
    }
  }
}

BasicBlock *slo::splitBlockAfter(BasicBlock *BB, Instruction *Pos,
                                 const std::string &TailName) {
  Function *F = BB->getParent();
  assert(F && "splitting a detached block");
  auto Tail = std::make_unique<BasicBlock>(TailName);
  BasicBlock *TailPtr = Tail.get();
  F->insertBlockAfter(BB, std::move(Tail));

  // Collect the instructions after Pos (Pos stays in BB).
  std::vector<Instruction *> ToMove;
  bool Found = false;
  for (const auto &I : BB->instructions()) {
    if (Found)
      ToMove.push_back(I.get());
    if (I.get() == Pos)
      Found = true;
  }
  if (!Found)
    reportFatalError("splitBlockAfter: position not in block");
  for (Instruction *I : ToMove)
    TailPtr->append(BB->remove(I));
  return TailPtr;
}
