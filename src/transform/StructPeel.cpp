//===- transform/StructPeel.cpp - Structure peeling -----------------------===//

#include "transform/StructPeel.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "transform/RewriteUtils.h"

using namespace slo;

//===----------------------------------------------------------------------===//
// Peelability analysis
//===----------------------------------------------------------------------===//

static PeelabilityInfo notPeelable(const std::string &Reason) {
  PeelabilityInfo Info;
  Info.Reason = Reason;
  return Info;
}

PeelabilityInfo slo::analyzePeelability(const Module &M, RecordType *Rec,
                                        const TypeLegality &Legal) {
  if (!Legal.isLegal(/*Relax=*/false))
    return notPeelable("type fails legality tests: " +
                       violationMaskToString(Legal.Violations));
  const TypeAttributes &A = Legal.Attrs;
  if (!A.DynamicallyAllocated)
    return notPeelable("type is never dynamically allocated");
  if (A.HasGlobalVar || A.HasLocalVar || A.HasStaticArray)
    return notPeelable("aggregate instances of the type exist");
  if (A.HasRecursivePtrField)
    return notPeelable("record fields hold pointers to the type");
  if (A.Reallocated)
    return notPeelable("type is realloc'd");
  if (A.PassedToFunction)
    return notPeelable("pointers to the type escape to functions");
  if (A.HasLocalPtr)
    return notPeelable("local pointer variables of the type exist");
  if (Legal.PointerGlobals.size() != 1)
    return notPeelable("need exactly one global pointer of the type");
  if (Legal.AllocSites.size() != 1)
    return notPeelable("need exactly one allocation site");
  if (Rec->getNumFields() < 2)
    return notPeelable("nothing to peel: fewer than two fields");

  GlobalVariable *G = Legal.PointerGlobals.front();
  if (cast<PointerType>(G->getType())->getPointee() !=
      M.getTypes().getPointerType(Rec))
    return notPeelable("the global pointer is not exactly T*");

  const AllocSiteInfo &Site = Legal.AllocSites.front();
  if (Site.Unanalyzable)
    return notPeelable("allocation size is not analyzable");

  // The cast result's single use must be the store into G, and that must
  // be the only store to G.
  Instruction *Cast = Site.CastToRecord;
  if (Cast->users().size() != 1)
    return notPeelable("allocation result has uses besides the store to "
                       "the global");
  auto *AllocStore = dyn_cast<StoreInst>(Cast->users().front());
  if (!AllocStore || AllocStore->getPointer() != G ||
      AllocStore->getStoredValue() != Cast)
    return notPeelable("allocation result does not flow into the global");

  // Every user of G must be the allocation store or a load whose users
  // form IndexAddr/FieldAddr chains.
  for (const Instruction *U : G->users()) {
    if (U == AllocStore)
      continue;
    const auto *Ld = dyn_cast<LoadInst>(U);
    if (!Ld)
      return notPeelable("the global pointer is used outside load/store "
                         "idioms");
    for (const Instruction *LU : Ld->users()) {
      switch (LU->getOpcode()) {
      case Instruction::OpIndexAddr: {
        for (const Instruction *IU : LU->users())
          if (IU->getOpcode() != Instruction::OpFieldAddr)
            return notPeelable("element pointers escape the field-access "
                               "idiom");
        continue;
      }
      case Instruction::OpFieldAddr:
        continue; // Element 0 access; field uses checked by legality/ATKN.
      case Instruction::OpICmpEQ:
      case Instruction::OpICmpNE:
        continue; // Null checks.
      case Instruction::OpFree:
        continue;
      default:
        return notPeelable("loaded pointer escapes the access idiom");
      }
    }
  }

  // Attributed sizeof(T) constants may only appear in the allocation's
  // size expression.
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        for (unsigned Op = 0; Op < I->getNumOperands(); ++Op) {
          auto *C = dyn_cast<ConstantInt>(I->getOperand(Op));
          if (!C || C->getSizeOfRecord() != Rec)
            continue;
          bool InAllocExpr =
              I.get() == Site.Alloc ||
              (!I->users().empty() && I->users().front() == Site.Alloc);
          if (!InAllocExpr)
            return notPeelable("sizeof(T) used outside the allocation "
                               "site");
        }
      }
    }
  }

  PeelabilityInfo Info;
  Info.Peelable = true;
  Info.PeelGlobal = G;
  Info.Site = Site;
  return Info;
}

//===----------------------------------------------------------------------===//
// Peeling transformation
//===----------------------------------------------------------------------===//

namespace {

class Peeler {
public:
  Peeler(Module &M, const TypePlan &Plan, const PeelabilityInfo &Info)
      : M(M), Types(M.getTypes()), Ctx(M.getContext()), Plan(Plan),
        Info(Info), B(M.getContext()) {}

  PeelResult run() {
    assert(Plan.Kind == TransformKind::Peel && "not a peel plan");
    assert(Info.Peelable && "peeling an unpeelable type");
    buildGroups();
    rewriteAllocationSite();
    rewriteUses();
    verifyModuleOrDie(M);
    return Result;
  }

private:
  void buildGroups() {
    const std::string &Base = Plan.Rec->getRecordName();
    for (unsigned GI = 0; GI < Plan.PeelGroups.size(); ++GI) {
      const std::vector<unsigned> &Group = Plan.PeelGroups[GI];
      std::string Suffix;
      std::vector<Field> Fields;
      for (unsigned OldIdx : Group) {
        const Field &F = Plan.Rec->getField(OldIdx);
        Suffix += "." + F.Name;
        Result.FieldMap[OldIdx] = {GI,
                                   static_cast<unsigned>(Fields.size())};
        Fields.push_back({F.Name, F.Ty, 0, 0});
      }
      RecordType *Rec = Types.createUniqueRecord(Base + Suffix);
      Rec->setFields(std::move(Fields));
      Result.GroupRecs.push_back(Rec);
      GlobalVariable *G = M.createGlobal(
          Types.getPointerType(Rec),
          Info.PeelGlobal->getName() + Suffix);
      Result.GroupGlobals.push_back(G);
    }
  }

  Value *materializeCount() {
    if (Info.Site.CountValue)
      return Info.Site.CountValue;
    assert(Info.Site.ConstCount >= 0 && "unanalyzable site");
    return Ctx.getInt64(Info.Site.ConstCount);
  }

  void rewriteAllocationSite() {
    Instruction *Alloc = Info.Site.Alloc;
    Instruction *Cast = Info.Site.CastToRecord;
    StoreInst *AllocStore = cast<StoreInst>(Cast->users().front());
    bool IsCalloc = isa<CallocInst>(Alloc);
    Value *Count = materializeCount();

    B.setInsertBefore(Alloc);
    for (unsigned GI = 0; GI < Result.GroupRecs.size(); ++GI) {
      RecordType *Rec = Result.GroupRecs[GI];
      Value *Mem = nullptr;
      if (IsCalloc)
        Mem = B.createCalloc(Count, Ctx.getSizeOf(Rec), "peel.mem");
      else
        Mem = B.createMalloc(B.createBinary(Instruction::OpMul, Count,
                                            Ctx.getSizeOf(Rec),
                                            "peel.bytes"),
                             "peel.mem");
      Value *Typed = B.createCast(Instruction::OpBitcast, Mem,
                                  Types.getPointerType(Rec), "peel.base");
      B.createStore(Typed, Result.GroupGlobals[GI]);
    }

    // Remove the old allocation chain: store, cast, alloc.
    AllocStore->getParent()->erase(AllocStore);
    // The size expression (a Mul) may become dead; erase it after the
    // alloc.
    Value *SizeExpr = isa<MallocInst>(Alloc)
                          ? cast<MallocInst>(Alloc)->getSizeBytes()
                          : nullptr;
    Cast->getParent()->erase(Cast);
    BasicBlock *AllocBB = Alloc->getParent();
    AllocBB->erase(Alloc);
    if (SizeExpr)
      if (auto *SizeInst = dyn_cast<BinaryInst>(SizeExpr))
        if (!SizeInst->hasUsers())
          SizeInst->getParent()->erase(SizeInst);
  }

  void rewriteUses() {
    GlobalVariable *G = Info.PeelGlobal;
    std::vector<Instruction *> Loads(G->users().begin(), G->users().end());
    for (Instruction *U : Loads) {
      auto *Ld = cast<LoadInst>(U);
      rewriteLoad(Ld);
      if (!Ld->hasUsers())
        Ld->getParent()->erase(Ld);
    }
    // The peeled global itself stays (now unused) to preserve the
    // module's symbol table; it is never read again.
  }

  /// Loads a group's base pointer right before \p Before.
  Value *loadGroupBase(unsigned GI, Instruction *Before) {
    B.setInsertBefore(Before);
    return B.createLoad(Result.GroupGlobals[GI], "peel.p");
  }

  void rewriteLoad(LoadInst *Ld) {
    std::vector<Instruction *> Users(Ld->users().begin(), Ld->users().end());
    for (Instruction *U : Users) {
      switch (U->getOpcode()) {
      case Instruction::OpIndexAddr: {
        auto *IA = cast<IndexAddrInst>(U);
        std::vector<Instruction *> FAs(IA->users().begin(),
                                       IA->users().end());
        for (Instruction *FI : FAs)
          rewriteFieldAccess(cast<FieldAddrInst>(FI), IA->getIndex());
        if (!IA->hasUsers())
          IA->getParent()->erase(IA);
        break;
      }
      case Instruction::OpFieldAddr:
        rewriteFieldAccess(cast<FieldAddrInst>(U), nullptr);
        break;
      case Instruction::OpICmpEQ:
      case Instruction::OpICmpNE: {
        // Null check: substitute the first group's pointer.
        Value *NewP = loadGroupBase(0, U);
        for (unsigned Op = 0; Op < U->getNumOperands(); ++Op)
          if (U->getOperand(Op) == Ld)
            U->setOperand(Op, NewP);
        // Retype a null constant on the other side, if any.
        for (unsigned Op = 0; Op < U->getNumOperands(); ++Op)
          if (isa<ConstantNull>(U->getOperand(Op)))
            U->setOperand(Op, Ctx.getNullPtr(cast<PointerType>(
                                  NewP->getType())));
        break;
      }
      case Instruction::OpFree: {
        // free(P) -> free every group array.
        B.setInsertBefore(U);
        for (unsigned GI = 0; GI < Result.GroupGlobals.size(); ++GI) {
          Value *P = B.createLoad(Result.GroupGlobals[GI], "peel.free");
          B.createFree(P);
        }
        U->getParent()->erase(U);
        break;
      }
      default:
        reportFatalError("peeling: unexpected use survived the "
                         "peelability analysis");
      }
    }
  }

  /// Rewrites one access to field \p FA, indexed by \p Index (null means
  /// element 0).
  void rewriteFieldAccess(FieldAddrInst *FA, Value *Index) {
    unsigned OldIdx = FA->getFieldIndex();
    auto MapIt = Result.FieldMap.find(OldIdx);
    if (MapIt == Result.FieldMap.end()) {
      // Dead or unused field: delete the stores into it.
      std::vector<Instruction *> Users(FA->users().begin(),
                                       FA->users().end());
      for (Instruction *U : Users) {
        auto *St = dyn_cast<StoreInst>(U);
        if (!St || St->getPointer() != FA)
          reportFatalError("peeling: dead field has a non-store use");
        St->getParent()->erase(St);
      }
      FA->getParent()->erase(FA);
      return;
    }
    auto [GI, NewIdx] = MapIt->second;
    B.setInsertBefore(FA);
    Value *Base = B.createLoad(Result.GroupGlobals[GI], "peel.p");
    Value *Elem = Index ? B.createIndexAddr(Base, Index, "peel.elem") : Base;
    FieldAddrInst *NewFA = B.createFieldAddr(Elem, Result.GroupRecs[GI],
                                             NewIdx, FA->getField().Name);
    FA->replaceAllUsesWith(NewFA);
    FA->getParent()->erase(FA);
  }

  Module &M;
  TypeContext &Types;
  IRContext &Ctx;
  const TypePlan &Plan;
  const PeelabilityInfo &Info;
  IRBuilder B;
  PeelResult Result;
};

} // namespace

PeelResult slo::applyStructPeel(Module &M, const TypePlan &Plan,
                                const PeelabilityInfo &Info) {
  return Peeler(M, Plan, Info).run();
}
