//===- transform/StructSplit.cpp - Structure splitting --------------------===//

#include "transform/StructSplit.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "transform/RewriteUtils.h"

#include <algorithm>

using namespace slo;

namespace {

/// Performs one split; a class to share state between the phases.
class Splitter {
public:
  Splitter(Module &M, const TypePlan &Plan, const TypeLegality &Legal)
      : M(M), Types(M.getTypes()), Ctx(M.getContext()), Plan(Plan),
        Legal(Legal), B(M.getContext()) {}

  SplitResult run() {
    assert(Plan.Kind == TransformKind::Split && "not a split plan");
    buildNewRecords();
    retypeModuleForRecord(M, Plan.Rec, Result.HotRec);
    rewriteFieldAccesses();
    rewriteAllocationSites();
    rewriteFreeSites();
    // Any remaining attributed sizeof(T) becomes sizeof(T.hot); the
    // allocation sites were already rewritten explicitly above.
    rewriteSizeofConstants(M, Plan.Rec, Result.HotRec);
    verifyModuleOrDie(M);
    return Result;
  }

private:
  void buildNewRecords() {
    const std::string &Base = Plan.Rec->getRecordName();
    RecordType *Hot = Types.createUniqueRecord(Base + ".hot");
    RecordType *Cold = nullptr;
    if (!Plan.ColdFields.empty())
      Cold = Types.createUniqueRecord(Base + ".cold");

    // Recursive pointer fields (T* inside T, like mcf's pred/child) must
    // point at the new hot record.
    auto FieldTy = [&](const Field &F) {
      return remapType(Types, F.Ty, Plan.Rec, Hot);
    };

    std::vector<Field> ColdFields;
    for (unsigned OldIdx : Plan.ColdFields) {
      const Field &F = Plan.Rec->getField(OldIdx);
      Result.FieldMap[OldIdx] = {Cold,
                                 static_cast<unsigned>(ColdFields.size())};
      ColdFields.push_back({F.Name, FieldTy(F), 0, 0});
    }
    if (Cold)
      Cold->setFields(std::move(ColdFields));

    std::vector<Field> HotFields;
    for (unsigned OldIdx : Plan.HotFields) {
      const Field &F = Plan.Rec->getField(OldIdx);
      Result.FieldMap[OldIdx] = {Hot,
                                 static_cast<unsigned>(HotFields.size())};
      HotFields.push_back({F.Name, FieldTy(F), 0, 0});
    }
    if (Cold) {
      Result.LinkFieldIndex = static_cast<unsigned>(HotFields.size());
      HotFields.push_back(
          {"cold_link", Types.getPointerType(Cold), 0, 0});
    }
    Hot->setFields(std::move(HotFields));

    Result.HotRec = Hot;
    Result.ColdRec = Cold;
  }

  void rewriteFieldAccesses() {
    // Snapshot first: we will erase and insert instructions.
    std::vector<FieldAddrInst *> Accesses;
    for (const auto &F : M.functions())
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions())
          if (auto *FA = dyn_cast<FieldAddrInst>(I.get()))
            if (FA->getRecord() == Plan.Rec)
              Accesses.push_back(FA);

    for (FieldAddrInst *FA : Accesses) {
      unsigned OldIdx = FA->getFieldIndex();
      auto MapIt = Result.FieldMap.find(OldIdx);
      if (MapIt == Result.FieldMap.end()) {
        // Dead or unused field: every remaining user is a store through
        // the address (guaranteed by the deadness analysis).
        eraseDeadAccess(FA);
        continue;
      }
      auto [NewRec, NewIdx] = MapIt->second;
      if (NewRec == Result.HotRec) {
        FA->setTarget(Types, Result.HotRec, NewIdx);
        continue;
      }
      // Cold field: chase the link pointer. This inserts the extra load
      // whose cost the paper's §2.4 discussion is about.
      B.setInsertBefore(FA);
      Value *LinkAddr = B.createFieldAddr(FA->getBase(), Result.HotRec,
                                          Result.LinkFieldIndex, "link.addr");
      Value *LinkVal = B.createLoad(LinkAddr, "link");
      FieldAddrInst *NewFA = B.createFieldAddr(
          LinkVal, Result.ColdRec, NewIdx, FA->getField().Name);
      FA->replaceAllUsesWith(NewFA);
      FA->getParent()->erase(FA);
    }
  }

  void eraseDeadAccess(FieldAddrInst *FA) {
    std::vector<Instruction *> Users(FA->users().begin(), FA->users().end());
    for (Instruction *U : Users) {
      auto *St = dyn_cast<StoreInst>(U);
      if (!St || St->getPointer() != FA)
        reportFatalError("dead field '" +
                         Plan.Rec->getField(FA->getFieldIndex()).Name +
                         "' has a non-store use; planner bug");
      St->getParent()->erase(St);
    }
    FA->getParent()->erase(FA);
  }

  /// The count value is an operand of the original size expression; it
  /// dominates the allocation.
  Value *materializeCount(const AllocSiteInfo &Site) {
    if (Site.CountValue)
      return Site.CountValue;
    assert(Site.ConstCount >= 0 && "unanalyzable site slipped through");
    return Ctx.getInt64(Site.ConstCount);
  }

  void rewriteAllocationSites() {
    for (const AllocSiteInfo &Site : Legal.AllocSites) {
      // Retarget the original allocation's size to the hot record.
      rewriteAllocSize(Site.Alloc, Result.HotRec);
      if (!Result.ColdRec)
        continue;

      // After the bitcast: allocate the cold array and initialize the
      // link pointers.
      Instruction *Cast = Site.CastToRecord;
      Value *Count = materializeCount(Site);

      B.setInsertPoint(Cast->getParent());
      // Insert right after the cast: split the block there, then build
      // the loop between the pieces.
      BasicBlock *Head = Cast->getParent();
      BasicBlock *Tail = splitBlockAfter(Head, Cast, "split.done");

      B.setInsertPoint(Head);
      Value *ColdMem = nullptr;
      if (isa<CallocInst>(Site.Alloc))
        ColdMem = B.createCalloc(Count, Ctx.getSizeOf(Result.ColdRec),
                                 "cold.mem");
      else
        ColdMem = B.createMalloc(
            B.createBinary(Instruction::OpMul, Count,
                           Ctx.getSizeOf(Result.ColdRec), "cold.bytes"),
            "cold.mem");
      Value *ColdBase = B.createCast(
          Instruction::OpBitcast, ColdMem,
          Types.getPointerType(Result.ColdRec), "cold.base");

      // Loop counter slot in the entry block.
      Function *F = Head->getParent();
      AllocaInst *IdxSlot = nullptr;
      {
        BasicBlock *Entry = F->getEntry();
        if (Entry->getTerminator())
          B.setInsertBefore(Entry->getTerminator());
        else
          B.setInsertPoint(Entry);
        IdxSlot = B.createAlloca(Types.getI64(), "link.i");
      }

      BasicBlock *LoopHdr = F->createBlock("link.hdr");
      BasicBlock *LoopBody = F->createBlock("link.body");

      B.setInsertPoint(Head);
      B.createStore(Ctx.getInt64(0), IdxSlot);
      B.createBr(LoopHdr);

      B.setInsertPoint(LoopHdr);
      Value *Iv = B.createLoad(IdxSlot, "i");
      Value *InLoop =
          B.createCmp(Instruction::OpICmpSLT, Iv, Count, "link.cmp");
      B.createCondBr(InLoop, LoopBody, Tail);

      B.setInsertPoint(LoopBody);
      Value *HotElem = B.createIndexAddr(Cast, Iv, "hot.elem");
      Value *ColdElem = B.createIndexAddr(ColdBase, Iv, "cold.elem");
      Value *LinkAddr = B.createFieldAddr(HotElem, Result.HotRec,
                                          Result.LinkFieldIndex, "link.slot");
      B.createStore(ColdElem, LinkAddr);
      B.createStore(B.createBinary(Instruction::OpAdd, Iv, Ctx.getInt64(1)),
                    IdxSlot);
      B.createBr(LoopHdr);

      F->renumberBlocks();
    }
  }

  /// Swaps the sizeof(T) factor inside the allocation's size expression
  /// for sizeof(NewRec).
  void rewriteAllocSize(Instruction *Alloc, RecordType *NewRec) {
    ConstantInt *NewSize = Ctx.getSizeOf(NewRec);
    int64_t OldSize = static_cast<int64_t>(Plan.Rec->getSize());

    auto RewriteOperand = [&](Instruction *I, unsigned Op) {
      Value *V = I->getOperand(Op);
      if (auto *C = dyn_cast<ConstantInt>(V)) {
        if (C->getSizeOfRecord() == Plan.Rec) {
          I->setOperand(Op, NewSize);
          return true;
        }
        if (!C->isSizeOf() && C->getValue() % OldSize == 0) {
          // Plain constant N*sizeof folded by the programmer.
          int64_t N = C->getValue() / OldSize;
          I->setOperand(
              Op, Ctx.getInt64(N * static_cast<int64_t>(NewRec->getSize())));
          return true;
        }
      }
      if (auto *Mul = dyn_cast<BinaryInst>(V)) {
        // Prefer the attributed sizeof(T) operand; a plain constant count
        // can numerically collide with sizeof(T).
        for (unsigned Side = 0; Side < 2; ++Side) {
          auto *C = dyn_cast<ConstantInt>(Mul->getOperand(Side));
          if (C && C->getSizeOfRecord() == Plan.Rec) {
            Mul->setOperand(Side, NewSize);
            return true;
          }
        }
        for (unsigned Side = 0; Side < 2; ++Side) {
          auto *C = dyn_cast<ConstantInt>(Mul->getOperand(Side));
          if (C && !C->isSizeOf() && C->getValue() == OldSize) {
            Mul->setOperand(Side, NewSize);
            return true;
          }
        }
      }
      return false;
    };

    bool Ok = false;
    if (isa<MallocInst>(Alloc))
      Ok = RewriteOperand(Alloc, 0);
    else if (isa<CallocInst>(Alloc))
      Ok = RewriteOperand(Alloc, 1);
    if (!Ok)
      reportFatalError("could not rewrite allocation size for '" +
                       Plan.Rec->getRecordName() + "'");
  }

  void rewriteFreeSites() {
    if (!Result.ColdRec)
      return;
    for (Instruction *FreeI : Legal.FreeSites) {
      auto *Fr = cast<FreeInst>(FreeI);
      // free(p): free p->cold_link first (p points at element 0, whose
      // link is the cold array base).
      B.setInsertBefore(Fr);
      Value *LinkAddr =
          B.createFieldAddr(Fr->getPtr(), Result.HotRec,
                            Result.LinkFieldIndex, "free.link.addr");
      Value *ColdBase = B.createLoad(LinkAddr, "free.cold");
      B.createFree(ColdBase);
    }
  }

  Module &M;
  TypeContext &Types;
  IRContext &Ctx;
  const TypePlan &Plan;
  const TypeLegality &Legal;
  IRBuilder B;
  SplitResult Result;
};

} // namespace

SplitResult slo::applyStructSplit(Module &M, const TypePlan &Plan,
                                  const TypeLegality &Legal) {
  return Splitter(M, Plan, Legal).run();
}
