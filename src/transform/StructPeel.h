//===- transform/StructPeel.h - Structure peeling --------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structure peeling (paper §2.1, Figure 1c): splitting without link
/// pointers. The paper's motivating case is 179.art: one dynamically
/// allocated array of structures whose result lives in a single global
/// pointer P and no other variables of the type exist. The type breaks
/// into one record per field (or per plan group), the allocation becomes
/// one allocation per piece, fresh global pointers Pi are created, and
/// every access P[i].f becomes Pf[i].
///
/// Peelability is a stronger condition than legality; analyzePeelability
/// checks the paper's conditions structurally:
///   - a single allocation site whose result is stored to exactly one
///     global pointer of the type, and that is the only store to it,
///   - no other variables/pointers of the type anywhere (no locals, no
///     other globals, no record fields of the type, no call arguments),
///   - every use of the global's loads is an IndexAddr/FieldAddr chain
///     ending in loads/stores, a null comparison, or a free.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_STRUCTPEEL_H
#define SLO_TRANSFORM_STRUCTPEEL_H

#include "analysis/Legality.h"
#include "transform/Plan.h"

namespace slo {

/// Verdict of the peelability check.
struct PeelabilityInfo {
  bool Peelable = false;
  std::string Reason; // Why not, when !Peelable.
  GlobalVariable *PeelGlobal = nullptr;
  AllocSiteInfo Site;
};

/// Checks whether \p Rec satisfies the peeling conditions in \p M.
PeelabilityInfo analyzePeelability(const Module &M, RecordType *Rec,
                                   const TypeLegality &Legal);

/// Outcome of one peel.
struct PeelResult {
  /// Per plan group: the new single-group record and its global pointer.
  std::vector<RecordType *> GroupRecs;
  std::vector<GlobalVariable *> GroupGlobals;
  /// Old field index -> (group number, index within group record).
  std::map<unsigned, std::pair<unsigned, unsigned>> FieldMap;
};

/// Applies a Peel plan. \p Info must come from analyzePeelability on the
/// same module. The module is verified on exit.
PeelResult applyStructPeel(Module &M, const TypePlan &Plan,
                           const PeelabilityInfo &Info);

} // namespace slo

#endif // SLO_TRANSFORM_STRUCTPEEL_H
