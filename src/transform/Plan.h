//===- transform/Plan.h - Transformation plans -----------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control information the IPA phase hands to the back end ("if types
/// are to be split it emits control information for the BE", paper §2).
/// A TypePlan describes what happens to one record type: splitting with
/// link pointers, peeling into per-field arrays, plus the dead/unused
/// fields to remove and the new field order.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_PLAN_H
#define SLO_TRANSFORM_PLAN_H

#include "ir/Type.h"

#include <string>
#include <vector>

namespace slo {

enum class TransformKind {
  /// Type left untouched.
  None,
  /// Hot part + cold part reachable through a link pointer (Figure 1b).
  /// Also covers pure dead-field-removal/reordering when ColdFields is
  /// empty (no link pointer inserted then).
  Split,
  /// Per-field arrays behind fresh global pointers (Figure 1c).
  Peel,
};

const char *transformKindName(TransformKind K);

/// What to do with one record type.
struct TypePlan {
  RecordType *Rec = nullptr;
  TransformKind Kind = TransformKind::None;

  /// Fields that stay in the root (hot) part, in their new order
  /// (field reordering happens "in the context of structure splitting",
  /// paper §2.4).
  std::vector<unsigned> HotFields;

  /// Fields split out into the cold part, in their new order.
  std::vector<unsigned> ColdFields;

  /// For peeling: the field groups, each becoming its own record/array.
  /// The paper's art example peels one field per group.
  std::vector<std::vector<unsigned>> PeelGroups;

  /// Fields with stores but no loads: removed, stores deleted.
  std::vector<unsigned> DeadFields;

  /// Fields never referenced at all: removed silently.
  std::vector<unsigned> UnusedFields;

  /// Human-readable planning rationale (also used by the advisor).
  std::string Reason;

  bool isNoop() const { return Kind == TransformKind::None; }

  /// Total fields removed or split out (the paper's Table 3 "S/D"
  /// column).
  unsigned splitOrDeadCount() const {
    return static_cast<unsigned>(ColdFields.size() + DeadFields.size() +
                                 UnusedFields.size());
  }
};

} // namespace slo

#endif // SLO_TRANSFORM_PLAN_H
