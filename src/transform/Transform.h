//===- transform/Transform.h - BE transformation driver --------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back-end phase: applies the IPA-decided plans to the module
/// ("the actual transformations are performed in the BE", paper §2).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_TRANSFORM_H
#define SLO_TRANSFORM_TRANSFORM_H

#include "analysis/Legality.h"
#include "transform/Plan.h"
#include "transform/StructPeel.h"
#include "transform/StructSplit.h"

#include <string>
#include <vector>

namespace slo {

/// What happened to one type.
struct AppliedTransform {
  TypePlan Plan;
  SplitResult Split; // Valid when Plan.Kind == Split.
  PeelResult Peel;   // Valid when Plan.Kind == Peel.
};

/// Aggregate outcome of the BE phase.
struct TransformSummary {
  /// Number of types actually rewritten (Table 3 "Tt" column).
  unsigned TypesTransformed = 0;
  /// Total split-out plus dead/unused fields (Table 3 "S/D" column).
  unsigned FieldsSplitOrDead = 0;
  std::vector<AppliedTransform> Applied;
  /// Per-type one-line log, for the harnesses.
  std::vector<std::string> Log;
};

/// Applies every non-noop plan to \p M. \p Legal must have been computed
/// on the same (pre-transformation) module. Verifies the module after
/// each transformation.
TransformSummary applyPlans(Module &M, const std::vector<TypePlan> &Plans,
                            const LegalityResult &Legal);

} // namespace slo

#endif // SLO_TRANSFORM_TRANSFORM_H
