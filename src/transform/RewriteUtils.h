//===- transform/RewriteUtils.h - Shared rewriting helpers -----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR surgery shared by the splitting and peeling transformations:
/// whole-module retyping from one record to another, tagged sizeof
/// constant rewriting, and block splitting for the link-pointer
/// initialization loops.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_TRANSFORM_REWRITEUTILS_H
#define SLO_TRANSFORM_REWRITEUTILS_H

#include "ir/Module.h"

namespace slo {

/// Recursively rewrites \p Ty, substituting \p From with \p To under
/// pointers, arrays, and function types. Returns \p Ty unchanged when
/// \p From does not occur.
Type *remapType(TypeContext &Types, Type *Ty, RecordType *From,
                RecordType *To);

/// Retypes every value of the module whose type involves \p From so it
/// involves \p To instead: globals, allocas, arguments, function
/// signatures, instruction results, and null-pointer constant operands.
/// FieldAddr instructions keep their record/index (callers rewrite those
/// explicitly afterwards).
void retypeModuleForRecord(Module &M, RecordType *From, RecordType *To);

/// Replaces every operand that is the attributed constant sizeof(From)
/// with the attributed constant sizeof(To). This implements the paper's
/// attributed-constant answer to the sizeof() problem (§2.2).
void rewriteSizeofConstants(Module &M, RecordType *From, RecordType *To);

/// Splits \p BB after \p Pos: instructions following \p Pos (including
/// the terminator) move into a new block inserted after \p BB, and \p BB
/// is NOT given a terminator (the caller wires up the control flow).
/// Returns the new tail block.
BasicBlock *splitBlockAfter(BasicBlock *BB, Instruction *Pos,
                            const std::string &TailName);

} // namespace slo

#endif // SLO_TRANSFORM_REWRITEUTILS_H
