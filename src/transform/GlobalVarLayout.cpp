//===- transform/GlobalVarLayout.cpp - GVL phase --------------------------===//

#include "transform/GlobalVarLayout.h"

#include "support/Casting.h"

#include <algorithm>
#include <map>

using namespace slo;

std::vector<std::pair<const GlobalVariable *, double>>
slo::computeGlobalWeights(const Module &M, const WeightSource &WS) {
  std::map<const GlobalVariable *, double> Weight;
  for (const auto &G : M.globals())
    Weight[G.get()] = 0.0;

  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      double W = WS.blockWeight(BB.get());
      if (W <= 0.0)
        continue;
      for (const auto &I : BB->instructions()) {
        // Count direct loads/stores through the global. (Accesses through
        // derived pointers belong to the pointed-to object, not the
        // global's own cache line.)
        const Value *Ptr = nullptr;
        if (const auto *Ld = dyn_cast<LoadInst>(I.get()))
          Ptr = Ld->getPointer();
        else if (const auto *St = dyn_cast<StoreInst>(I.get()))
          Ptr = St->getPointer();
        if (!Ptr)
          continue;
        if (const auto *G = dyn_cast<GlobalVariable>(Ptr))
          Weight[G] += W;
      }
    }
  }

  std::vector<std::pair<const GlobalVariable *, double>> Out(
      Weight.begin(), Weight.end());
  return Out;
}

GvlResult slo::applyGlobalVariableLayout(Module &M, const WeightSource &WS) {
  auto Weights = computeGlobalWeights(M, WS);
  std::map<const GlobalVariable *, double> WeightOf(Weights.begin(),
                                                    Weights.end());

  // Desired order: scalars/pointers by weight desc, then aggregates by
  // weight desc; stable within ties (original module order).
  std::vector<GlobalVariable *> Order;
  for (const auto &G : M.globals())
    Order.push_back(G.get());
  auto IsAggregate = [](const GlobalVariable *G) {
    return G->getValueType()->isArray() || G->getValueType()->isRecord();
  };
  std::stable_sort(Order.begin(), Order.end(),
                   [&](const GlobalVariable *A, const GlobalVariable *B) {
                     bool AggA = IsAggregate(A), AggB = IsAggregate(B);
                     if (AggA != AggB)
                       return !AggA; // Scalars first.
                     return WeightOf[A] > WeightOf[B];
                   });

  GvlResult Result;
  for (size_t I = 0; I < Order.size(); ++I) {
    Result.NewOrder.push_back(Order[I]);
    Result.Weights.push_back(WeightOf[Order[I]]);
    Result.Changed |= Order[I] != M.globals()[I].get();
  }
  if (Result.Changed)
    M.reorderGlobals(Order);
  return Result;
}
