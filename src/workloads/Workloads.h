//===- workloads/Workloads.h - Benchmark workloads -------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twelve benchmarks of the paper's Table 1 as MiniC programs. The
/// three benchmarks with significant reported gains (181.mcf, 179.art,
/// moldyn) are hand-written kernels that reproduce the hot record types'
/// field-access shape; the other nine are emitted by the deterministic
/// type-population generator with the paper's per-benchmark type census
/// (total / legal / relax-legal counts). See DESIGN.md for the
/// substitution rationale.
///
/// Workloads parameterize their problem size through "param_*" globals,
/// which is how training vs reference inputs are expressed (paper §2.3:
/// PBO uses the training set, "perfect PBO" the reference set).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_WORKLOADS_WORKLOADS_H
#define SLO_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace slo {

/// Reference values from the paper for one benchmark (NaN/-1 = not
/// reported).
struct PaperReference {
  unsigned Types = 0;
  unsigned Legal = 0;
  unsigned Relax = 0;
  /// Table 3 performance impact in percent; the paper reports two rows
  /// for mcf and moldyn (with and without PBO).
  double PerfNoPbo = 0.0;
  double PerfPbo = 0.0;
  bool PerfKnown = false;
};

/// One benchmark program.
struct Workload {
  std::string Name;
  std::vector<std::string> Sources; // MiniC translation units.
  std::map<std::string, int64_t> TrainParams;
  std::map<std::string, int64_t> RefParams;
  PaperReference Paper;
};

/// All twelve benchmarks in the paper's Table 1 order.
const std::vector<Workload> &allWorkloads();

/// Finds a benchmark by name; returns nullptr when unknown.
const Workload *findWorkload(const std::string &Name);

/// The hand-written benchmark sources (exposed for tests and examples).
const char *mcfSource();
const char *artSource();
const char *moldynSource();

/// §3.4 case studies: the SPEC2006 C++ benchmark with four hot fields
/// scattered over a >cache-line struct, and the C benchmark dominated by
/// three loops over a two-field record.
const Workload &caseStudyHotStruct();
const Workload &caseStudyTwoField();

} // namespace slo

#endif // SLO_WORKLOADS_WORKLOADS_H
