//===- workloads/HandwrittenSources.cpp - mcf / art / moldyn kernels ------===//
//
// Hand-written MiniC versions of the three benchmarks with significant
// reported gains. They reproduce the *shape* that drives the paper's
// results: 181.mcf's node type carries the exact 15 fields of Table 2
// with a pointer-chasing network-simplex-like kernel; 179.art is one
// global array of all-floating-point neurons scanned field-by-field
// (peelable); moldyn's force loop reads positions and accumulates forces
// while velocities stay cold. Each program also contains the decoy types
// that give the paper's Table 1 census (legal / relax-legal counts).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace slo;

const char *slo::mcfSource() {
  return R"MINIC(
// 181.mcf-like network simplex kernel.
extern void print_i64(long v);
extern void report_net(struct network *nt);   // LIBC escape: network
extern void dump_stats(struct stats *st);     // LIBC escape: stats

struct node {
  long number;                 // cold: init + audit only
  long ident;                  // unused (the paper's Figure 2 shows it)
  struct node *pred;           // hot: tree walks
  struct node *child;          // hot
  struct node *sibling;        // hot
  struct node *sibling_prev;   // cold
  long depth;                  // lukewarm (audit)
  long orientation;            // hot-ish
  struct arc *basic_arc;       // hot-ish
  struct arc *firstout;        // cold
  struct arc *firstin;         // cold
  long potential;              // hottest field (like the paper)
  long flow;                   // low
  long mark;                   // medium
  long time;                   // medium
};

struct arc {
  long cost;
  struct node *tail;
  struct node *head;
  long ident;
  struct arc *nextout;
  struct arc *nextin;
  long flow;
  long org_cost;
};

struct network {
  long n;
  long m;
  struct node *nodes;
  struct arc *arcs;
  long iterations;
  long feasible;
};

struct basket {        // invalid: CSTT (allocated through a wrapper)
  struct arc *a;
  long cost;
  long abs_cost;
};

struct stats {         // invalid: LIBC (escapes to dump_stats)
  long refreshes;
  long scans;
  long updates;
};

struct network net;
struct stats run_stats;
struct basket *perm;
long *atkn_probe;      // makes arc ATKN (address of a field stored)

long param_nodes;
long param_arcs;
long param_iters;
long never;

void *alloc_raw(long bytes) { return malloc(bytes); }

void build_graph() {
  long n = param_nodes;
  long m = param_arcs;
  net.n = n;
  net.m = m;
  net.nodes = (struct node *) malloc(n * sizeof(struct node));
  net.arcs = (struct arc *) malloc(m * sizeof(struct arc));
  perm = (struct basket *) alloc_raw(64 * sizeof(struct basket));

  struct node *nodes = net.nodes;
  struct arc *arcs = net.arcs;

  for (long j = 0; j < m; j++) {
    arcs[j].cost = (j * 37) % 200 - 100;
    arcs[j].org_cost = arcs[j].cost;
    arcs[j].ident = j;
    arcs[j].flow = 0;
    arcs[j].tail = &nodes[j % n];
    arcs[j].head = &nodes[(j * 7 + 1) % n];
    arcs[j].nextout = 0;
    arcs[j].nextin = 0;
  }
  for (long i = 0; i < n; i++) {
    nodes[i].number = i;
    nodes[i].depth = 0;
    nodes[i].orientation = i % 2;
    nodes[i].potential = (i % 97) + 1;
    nodes[i].flow = 0;
    nodes[i].mark = 0;
    nodes[i].time = 0;
    nodes[i].basic_arc = &arcs[i % m];
    nodes[i].firstout = &arcs[i % m];
    nodes[i].firstin = &arcs[(i * 3 + 1) % m];
    nodes[i].pred = 0;
    nodes[i].child = 0;
    nodes[i].sibling = 0;
    nodes[i].sibling_prev = 0;
  }
  // Heap-shaped basis tree: pred(i) = (i-1)/2.
  for (long i = 1; i < n; i++) {
    long p = (i - 1) / 2;
    nodes[i].pred = &nodes[p];
    nodes[i].depth = nodes[p].depth + 1;
    if (i % 2 == 1) {
      nodes[p].child = &nodes[i];
    } else {
      nodes[i].sibling_prev = &nodes[i - 1];
      nodes[i - 1].sibling = &nodes[i];
    }
  }
  for (long k = 0; k < 64; k++) {
    perm[k].a = &arcs[k % m];
    perm[k].cost = k;
    perm[k].abs_cost = k;
  }
  atkn_probe = &arcs[3].cost;
}

// The mcf refresh_potential analogue: DFS over the basis tree updating
// potentials from the parent through the basic arc.
long refresh_potential() {
  struct node *nodes = net.nodes;
  struct node *root = nodes;
  long count = 0;
  struct node *nd = root->child;
  while (nd != 0) {
    // Two damped passes per node (idempotent recompute), which also
    // deepens the loop nest for the static estimator.
    for (long pass = 0; pass < 2; pass++) {
      if (nd->orientation == 1) {
        nd->potential = nd->basic_arc->cost + nd->pred->potential;
      } else {
        nd->potential = nd->pred->potential - nd->basic_arc->cost;
      }
    }
    count++;
    if (nd->child != 0) {
      nd = nd->child;
    } else {
      while (nd != 0 && nd->sibling == 0) {
        nd = nd->pred;
        if (nd == root) { nd = 0; }
      }
      if (nd != 0) { nd = nd->sibling; }
    }
  }
  run_stats.refreshes++;
  return count;
}

// The reduced cost of one arc. Straight-line code in a helper: a purely
// local static estimator (SPBO) weights these accesses like any entry
// block, while the inter-procedural propagation (ISPBO) knows this is
// called from the hottest loop of the program -- the paper's foo()/bar()
// example.
long red_cost(struct arc *a) {
  return a->cost - a->tail->potential + a->head->potential;
}

void note_pricing_hit(struct arc *a, long red) {
  a->flow = a->flow + 1;
  a->tail->mark = a->tail->mark + 1;
  a->tail->time = a->tail->time + (red % 17);
}

// The primal_bea_mpp analogue: scan all arcs (in baskets of 64, like
// mcf's basket groups) for negative reduced cost.
long price_scan() {
  struct arc *arcs = net.arcs;
  long m = net.m;
  long found = 0;
  for (long c = 0; c < m; c = c + 64) {
    long hi = c + 64;
    if (hi > m) { hi = m; }
    for (long j = c; j < hi; j++) {
      long red = red_cost(&arcs[j]);
      if (red < 0) {
        found++;
        note_pricing_hit(&arcs[j], red);
      }
    }
  }
  run_stats.scans++;
  return found;
}

void flow_update() {
  struct node *nodes = net.nodes;
  long n = net.n;
  for (long i = 0; i < n; i++) {
    nodes[i].flow = nodes[i].flow + nodes[i].mark % 3;
    nodes[i].time = nodes[i].time / 2;
  }
  run_stats.updates++;
}

long audit() {
  struct node *nodes = net.nodes;
  long n = net.n;
  long s = 0;
  for (long i = 0; i < n; i++) {
    s += nodes[i].number;
    if (nodes[i].sibling_prev != 0) { s += nodes[i].depth; }
    if (nodes[i].firstout != 0) { s += 1; }
    if (nodes[i].firstin != 0) { s += 1; }
  }
  return s;
}

int main() {
  build_graph();
  long total = 0;
  for (long it = 0; it < param_iters; it++) {
    total += refresh_potential();
    total += price_scan();
    // Rare maintenance passes; the double guards keep the static
    // estimator's probability estimates low for these paths.
    if (it % 16 == 9) {
      if (param_iters > 0) { flow_update(); }
    }
    if (it % 32 == 17) {
      if (param_iters > 0) { total += audit(); }
    }
  }
  long check = 0;
  struct node *nodes = net.nodes;
  for (long i = 0; i < net.n; i++) {
    check += nodes[i].potential + nodes[i].flow + nodes[i].mark;
  }
  long pcost = 0;
  for (long k = 0; k < 64; k++) { pcost += perm[k].cost; }
  total += *atkn_probe;
  print_i64(total);
  print_i64(check);
  print_i64(pcost);
  if (never == 1) { report_net(&net); dump_stats(&run_stats); }
  free(net.nodes);
  free(net.arcs);
  free(perm);
  return 0;
}
)MINIC";
}

const char *slo::artSource() {
  return R"MINIC(
// 179.art-like adaptive resonance kernel: one global array of
// all-floating-point neurons, scanned one field at a time (peelable).
extern void print_f64(double v);
extern void log_match(struct match_data *md);  // LIBC escape

struct f1_neuron {
  double i_val;
  double w;
  double x;
  double v;
  double u;
  double p;
  double q;
  double r;
};

struct f2_neuron {   // legal, but escapes to compute_y: not peelable
  double y;
  double tsum;
};

struct match_data {  // invalid: LIBC
  long wins;
  long trials;
};

struct f1_neuron *f1;
struct f2_neuron *f2;
struct match_data md_global;
long param_neurons;
long param_f2;
long param_iters;
long never;

void compute_y(struct f2_neuron *f2p, long count, double bus) {
  for (long j = 0; j < count; j++) {
    f2p[j].y = f2p[j].tsum * bus + f2p[j].y * 0.5;
  }
}

int main() {
  long n = param_neurons;
  f1 = (struct f1_neuron *) malloc(n * sizeof(struct f1_neuron));
  f2 = (struct f2_neuron *) malloc(param_f2 * sizeof(struct f2_neuron));
  for (long i = 0; i < n; i++) {
    f1[i].i_val = (double)(i % 13) * 0.1;
    f1[i].w = (double)(i % 7) * 0.25 + 0.1;
    f1[i].x = 0.0;
    f1[i].v = 1.0;
    f1[i].u = 0.5;
    f1[i].p = (double)(i % 5) * 0.2;
    f1[i].q = 0.0;
    f1[i].r = 0.25;
  }
  for (long j = 0; j < param_f2; j++) {
    f2[j].y = 0.0;
    f2[j].tsum = (double) j * 0.01;
  }

  double total = 0.0;
  for (long it = 0; it < param_iters; it++) {
    // Match phase: w only (1/8th of each struct), with the L2-norm
    // style division real art performs.
    double tnorm = 0.0;
    for (long i = 0; i < n; i++) {
      tnorm += f1[i].w / (1.0 + tnorm * 0.000001);
    }
    // Compare phase: p and q, normalized.
    double tsum2 = 0.0;
    for (long i = 0; i < n; i++) {
      f1[i].q = f1[i].p / (tnorm + 3.0);
      tsum2 += f1[i].q;
    }
    // Update phase: x only, damped.
    for (long i = 0; i < n; i++) {
      f1[i].x = f1[i].x / 2.0 + tnorm * 0.001;
    }
    compute_y(f2, param_f2, tsum2 * 0.0001);
    total += tnorm + tsum2;
  }

  double check = 0.0;
  for (long i = 0; i < n; i++) {
    check += f1[i].i_val + f1[i].w + f1[i].x + f1[i].v
           + f1[i].u + f1[i].p + f1[i].q + f1[i].r;
  }
  for (long j = 0; j < param_f2; j++) { check += f2[j].y; }
  print_f64(total);
  print_f64(check);
  md_global.wins = 1;
  md_global.trials = param_iters;
  if (never == 1) { log_match(&md_global); }
  free(f1);
  free(f2);
  return 0;
}
)MINIC";
}

const char *slo::moldynSource() {
  return R"MINIC(
// moldyn-like molecular dynamics kernel: the force loop reads positions
// of pseudo-neighbors and accumulates forces; velocities and mass are
// touched only by the (rare) integration step and become cold.
extern void print_f64(double v);

struct particle {
  double x;
  double y;
  double z;
  double fx;
  double fy;
  double fz;
  double vx;     // cold
  double vy;     // cold
  double vz;     // cold
  double mass;   // cold
};

struct neighbor_rec {  // invalid: ATKN (a field address is stored)
  long from;
  long to;
};

struct cell_rec {      // invalid: CSTT (allocated through a wrapper)
  long start;
  long count;
};

struct sim_params {    // invalid: CSTF (cast to a double*)
  double dt;
  double cutoff;
};

struct particle *parts;
struct neighbor_rec *nbrs;
struct cell_rec *cells;
struct sim_params *sim;
long *atkn_slot;
long param_parts;
long param_iters;
long param_nbr;
long never;

void *raw_alloc(long bytes) { return malloc(bytes); }

void compute_forces(struct particle *p, long n, long k, double eps) {
  for (long i = 0; i < n; i++) {
    double fx = 0.0;
    double fy = 0.0;
    double fz = 0.0;
    for (long d = 1; d <= k; d++) {
      long j = i + d * 17;
      while (j >= n) { j = j - n; }
      double dx = p[i].x - p[j].x;
      double dy = p[i].y - p[j].y;
      double dz = p[i].z - p[j].z;
      double r2 = dx * dx + dy * dy + dz * dz + 1.0;
      double inv = 1.0 / r2;
      fx += dx * inv;
      fy += dy * inv;
      fz += dz * inv;
    }
    p[i].fx = fx;
    p[i].fy = fy;
    p[i].fz = fz;
    // Steepest-descent position update right in the hot loop.
    p[i].x = p[i].x + fx * eps;
    p[i].y = p[i].y + fy * eps;
    p[i].z = p[i].z + fz * eps;
  }
}

// Rare velocity rescale: the only consumer of vx/vy/vz/mass, making them
// cold like moldyn's integrate-phase-only fields.
void thermostat(struct particle *p, long n, double dt) {
  for (long i = 0; i < n; i++) {
    double im = 1.0 / p[i].mass;
    p[i].vx = p[i].vx * 0.9 + p[i].fx * dt * im;
    p[i].vy = p[i].vy * 0.9 + p[i].fy * dt * im;
    p[i].vz = p[i].vz * 0.9 + p[i].fz * dt * im;
  }
}

int main() {
  long n = param_parts;
  parts = (struct particle *) malloc(n * sizeof(struct particle));
  nbrs = (struct neighbor_rec *) malloc(128 * sizeof(struct neighbor_rec));
  cells = (struct cell_rec *) raw_alloc(32 * sizeof(struct cell_rec));
  sim = (struct sim_params *) malloc(4 * sizeof(struct sim_params));

  for (long i = 0; i < n; i++) {
    parts[i].x = (double)(i % 100) * 0.5;
    parts[i].y = (double)(i % 31) * 0.25;
    parts[i].z = (double)(i % 17) * 0.125;
    parts[i].fx = 0.0;
    parts[i].fy = 0.0;
    parts[i].fz = 0.0;
  }
  for (long i = 0; i < n; i++) {
    parts[i].vx = 0.0;
    parts[i].vy = 0.0;
    parts[i].vz = 0.0;
    parts[i].mass = 1.0 + (double)(i % 3);
  }
  for (long q = 0; q < 128; q++) { nbrs[q].from = q; nbrs[q].to = q + 1; }
  for (long c = 0; c < 32; c++) { cells[c].start = c; cells[c].count = 4; }
  sim[0].dt = 0.001;
  sim[0].cutoff = 2.5;
  atkn_slot = &nbrs[0].from;                  // ATKN on neighbor_rec
  double *praw = (double *) sim;              // CSTF on sim_params
  double leak = praw[0];

  for (long it = 0; it < param_iters; it++) {
    compute_forces(parts, n, param_nbr, 0.0001);
    if (it % 64 == 3) {
      if (param_iters > 0) { thermostat(parts, n, sim[0].dt); }
    }
  }

  double check = leak;
  for (long i = 0; i < n; i++) {
    check += parts[i].x + parts[i].fx;
  }
  for (long i = 0; i < n; i++) {
    check += parts[i].vx + parts[i].vy + parts[i].vz + parts[i].mass;
  }
  check += (double) *atkn_slot;
  print_f64(check);
  free(parts);
  free(nbrs);
  free(cells);
  free(sim);
  return 0;
}
)MINIC";
}
