//===- workloads/Generator.h - Synthetic benchmark generator ---*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates MiniC benchmark programs with a configured record-type
/// census: so many types in total, so many passing the practical
/// legality tests, so many that become legal when CSTT/CSTF/ATKN are
/// relaxed. This reproduces the *population* of the paper's Table 1 for
/// the nine open-source benchmarks whose sources are not available;
/// the legality DETECTORS are what is under test (unit tests exercise
/// each one on hand-written inputs), the generator supplies realistic
/// volume. Everything is seeded and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_WORKLOADS_GENERATOR_H
#define SLO_WORKLOADS_GENERATOR_H

#include <cstdint>
#include <string>

namespace slo {

/// Census and workload parameters of one generated benchmark.
struct GeneratorConfig {
  std::string Name;
  uint64_t Seed = 1;
  /// Table 1 census.
  unsigned TotalTypes = 10;
  unsigned LegalTypes = 2;
  /// Types whose only violations are CSTT/CSTF/ATKN (the "Relax" column
  /// equals LegalTypes + RelaxOnlyTypes).
  unsigned RelaxOnlyTypes = 3;
  /// Of the legal types, how many are hot heap types the planner should
  /// find transformable (split candidates with cold fields).
  unsigned TransformCandidates = 1;
  /// Loop scale for the hot kernels (elements per array).
  unsigned HotElements = 6000;
  unsigned HotIterations = 6;
};

/// Emits one MiniC translation unit implementing the census.
std::string generateBenchmarkSource(const GeneratorConfig &Config);

} // namespace slo

#endif // SLO_WORKLOADS_GENERATOR_H
