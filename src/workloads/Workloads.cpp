//===- workloads/Workloads.cpp - Benchmark registry -----------------------===//

#include "workloads/Workloads.h"

#include "workloads/Generator.h"

using namespace slo;

namespace {

Workload makeHandwritten(const std::string &Name, const char *Source,
                         std::map<std::string, int64_t> Train,
                         std::map<std::string, int64_t> Ref,
                         PaperReference Paper) {
  Workload W;
  W.Name = Name;
  W.Sources = {Source};
  W.TrainParams = std::move(Train);
  W.RefParams = std::move(Ref);
  W.Paper = Paper;
  return W;
}

Workload makeGenerated(GeneratorConfig Config, PaperReference Paper,
                       unsigned Candidates) {
  Config.TransformCandidates = Candidates;
  Workload W;
  W.Name = Config.Name;
  W.Sources = {generateBenchmarkSource(Config)};
  W.Paper = Paper;
  return W;
}

std::vector<Workload> buildAll() {
  std::vector<Workload> All;

  // 181.mcf: Table 1 row (5 types, 1 legal, 3 relax); Table 3 gains
  // 16.7% (no PBO) / 17.3% (PBO).
  All.push_back(makeHandwritten(
      "181.mcf", mcfSource(),
      {{"param_nodes", 1500}, {"param_arcs", 4500}, {"param_iters", 64}},
      {{"param_nodes", 5000}, {"param_arcs", 15000}, {"param_iters", 64}},
      {5, 1, 3, 16.7, 17.3, true}));

  // 179.art: 3 types, 2 legal, 2 relax; +78.2%.
  All.push_back(makeHandwritten(
      "179.art", artSource(),
      {{"param_neurons", 8000},
       {"param_f2", 512},
       {"param_iters", 3}},
      {{"param_neurons", 14000},
       {"param_f2", 2048},
       {"param_iters", 2}},
      {3, 2, 2, 78.2, 78.2, true}));

  // milc: 20 types, 5 legal, 12 relax.
  All.push_back(makeGenerated({"milc", 0x9e11c, 20, 5, 7, 0, 6000, 6},
                              {20, 5, 12, 0, 0, false}, 2));

  // cactusADM: 116 types, 13 legal, 68 relax.
  All.push_back(makeGenerated({"cactusADM", 0xcac7, 116, 13, 55, 0, 3000, 4},
                              {116, 13, 68, 0, 0, false}, 2));

  // gobmk: 59 types, 9 legal, 45 relax.
  All.push_back(makeGenerated({"gobmk", 0x90b3, 59, 9, 36, 0, 4000, 5},
                              {59, 9, 45, 0, 0, false}, 1));

  // povray: 275 types, 14 legal, 207 relax.
  All.push_back(makeGenerated({"povray", 0x70f2a, 275, 14, 193, 0, 2000, 4},
                              {275, 14, 207, 0, 0, false}, 2));

  // calculix: 41 types, 3 legal, 3 relax (relax buys nothing here).
  All.push_back(makeGenerated({"calculix", 0xca1c, 41, 3, 0, 0, 4000, 5},
                              {41, 3, 3, 0, 0, false}, 1));

  // h264avc: 42 types, 3 legal, 25 relax.
  All.push_back(makeGenerated({"h264avc", 0x4264, 42, 3, 22, 0, 4000, 5},
                              {42, 3, 25, 0, 0, false}, 1));

  // moldyn: 4 types, 1 legal, 4 relax; +21.8% / +30.9%.
  All.push_back(makeHandwritten(
      "moldyn", moldynSource(),
      {{"param_parts", 3000}, {"param_iters", 48}, {"param_nbr", 1}},
      {{"param_parts", 12000}, {"param_iters", 48}, {"param_nbr", 1}},
      {4, 1, 4, 21.8, 30.9, true}));

  // lucille: 97 types, 17 legal, 86 relax.
  All.push_back(makeGenerated({"lucille", 0x10c111e, 97, 17, 69, 0, 5000, 5},
                              {97, 17, 86, 0, 0, false}, 3));

  // sphinx: 64 types, 4 legal, 52 relax.
  All.push_back(makeGenerated({"sphinx", 0x5f18, 64, 4, 48, 0, 5000, 5},
                              {64, 4, 52, 0, 0, false}, 1));

  // ssearch: 10 types, 4 legal, 5 relax.
  All.push_back(makeGenerated({"ssearch", 0x55ea, 10, 4, 1, 0, 8000, 8},
                              {10, 4, 5, 0, 0, false}, 2));

  return All;
}

} // namespace

const std::vector<Workload> &slo::allWorkloads() {
  static const std::vector<Workload> All = buildAll();
  return All;
}

const Workload *slo::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// §3.4 case studies
//===----------------------------------------------------------------------===//

/// A C++-benchmark-like hot structure larger than an L2 cache line
/// (128 B on Itanium) whose four hot fields are scattered across the
/// definition; grouping them is worth a few percent (paper: +2.5%).
static const char *HotStructSource = R"MINIC(
extern void print_i64(long v);
struct big {
  long pad0; long pad1;
  long hot_a;                    // hot (index 2)
  long pad2; long pad3; long pad4;
  long hot_b;                    // hot (index 6)
  long pad5; long pad6; long pad7; long pad8;
  long hot_c;                    // hot (index 11)
  long pad9; long pad10; long pad11; long pad12; long pad13; long pad14;
  long hot_d;                    // hot (index 18)
  long pad15;
};
struct big *arr;
long param_n;
long param_iters;
void pin(struct big *p) { }
int main() {
  long n = param_n;
  arr = (struct big*) malloc(n * sizeof(struct big));
  pin(arr);
  for (long i = 0; i < n; i++) {
    arr[i].pad0 = i; arr[i].pad1 = i; arr[i].pad2 = i; arr[i].pad3 = i;
    arr[i].pad4 = i; arr[i].pad5 = i; arr[i].pad6 = i; arr[i].pad7 = i;
    arr[i].pad8 = i; arr[i].pad9 = i; arr[i].pad10 = i; arr[i].pad11 = i;
    arr[i].pad12 = i; arr[i].pad13 = i; arr[i].pad14 = i; arr[i].pad15 = i;
    arr[i].hot_a = i; arr[i].hot_b = 2 * i; arr[i].hot_c = 3 * i;
    arr[i].hot_d = 4 * i;
  }
  long s = 0;
  for (long r = 0; r < 2; r++)
    for (long k = 0; k < param_iters; k++)
      for (long i = 0; i < n; i++)
        s += arr[i].hot_a + arr[i].hot_b + arr[i].hot_c + arr[i].hot_d;
  for (long i = 0; i < n; i++) {
    s += arr[i].pad0 + arr[i].pad7 + arr[i].pad15;
  }
  print_i64(s);
  free(arr);
  return 0;
}
)MINIC";

/// The C benchmark dominated by three loops over a two-field record
/// (paper: peeling gave almost 40%, more with other optimizations).
static const char *TwoFieldSource = R"MINIC(
extern void print_i64(long v);
extern void print_f64(double v);
struct pairrec {
  double weight;
  long key;
};
struct pairrec *data;
long param_n;
long param_iters;
int main() {
  long n = param_n;
  data = (struct pairrec*) malloc(n * sizeof(struct pairrec));
  for (long i = 0; i < n; i++) {
    data[i].weight = (double) i * 0.5;
    data[i].key = i * 3 + 1;
  }
  long s = 0;
  for (long it = 0; it < param_iters; it++) {
    // Three integer loops over the key field only.
    for (long i = 0; i < n; i++) s += data[i].key & 7;
    for (long i = 0; i < n; i++) s += data[i].key >> 3;
    for (long i = 0; i < n; i++) s += data[i].key % 5;
  }
  double w = 0.0;
  for (long i = 0; i < n; i++) w += data[i].weight;
  print_i64(s);
  print_f64(w);
  free(data);
  return 0;
}
)MINIC";

const Workload &slo::caseStudyHotStruct() {
  static const Workload W = [] {
    Workload X;
    X.Name = "spec2006_cpp_hotstruct";
    X.Sources = {HotStructSource};
    X.TrainParams = {{"param_n", 20000}, {"param_iters", 6}};
    X.RefParams = {{"param_n", 40000}, {"param_iters", 10}};
    X.Paper.PerfNoPbo = 2.5;
    X.Paper.PerfPbo = 2.5;
    X.Paper.PerfKnown = true;
    return X;
  }();
  return W;
}

const Workload &slo::caseStudyTwoField() {
  static const Workload W = [] {
    Workload X;
    X.Name = "spec2006_c_twofield";
    X.Sources = {TwoFieldSource};
    X.TrainParams = {{"param_n", 50000}, {"param_iters", 6}};
    X.RefParams = {{"param_n", 200000}, {"param_iters", 10}};
    X.Paper.PerfNoPbo = 40.0;
    X.Paper.PerfPbo = 40.0;
    X.Paper.PerfKnown = true;
    return X;
  }();
  return W;
}
