//===- workloads/Generator.cpp - Synthetic benchmark generator ------------===//

#include "workloads/Generator.h"

#include "support/Format.h"
#include "support/Random.h"

#include <sstream>
#include <vector>

using namespace slo;

namespace {

/// Builds the program text incrementally: struct declarations, globals,
/// per-type use functions, and a main that calls everything.
class SourceBuilder {
public:
  SourceBuilder(const GeneratorConfig &Config) : Config(Config), R(Config.Seed) {}

  std::string build() {
    Decls << "// Generated benchmark '" << Config.Name << "' (seed "
          << Config.Seed << ").\n";
    Decls << "extern void print_i64(long v);\n";
    Decls << "long gen_never;\n";
    Decls << "void *wrap_alloc(long bytes) { return malloc(bytes); }\n";
    Decls << "void gen_pin_sink(long v) { if (v == 123456789) { gen_never = v; } }\n";

    unsigned TypeId = 0;
    unsigned Candidates = Config.TransformCandidates;
    for (unsigned I = 0; I < Config.LegalTypes; ++I, ++TypeId) {
      if (Candidates > 0) {
        emitHotCandidate(TypeId);
        --Candidates;
      } else {
        emitLegalGlobalOnly(TypeId);
      }
    }
    static const char *RelaxKinds[] = {"cstt", "cstf", "atkn"};
    for (unsigned I = 0; I < Config.RelaxOnlyTypes; ++I, ++TypeId)
      emitRelaxOnly(TypeId, RelaxKinds[I % 3]);

    unsigned Hard = Config.TotalTypes - Config.LegalTypes -
                    Config.RelaxOnlyTypes;
    static const char *HardKinds[] = {"libc", "ind",  "smal",
                                      "mset", "unsz", "nest"};
    unsigned HardKindIdx = 0;
    while (Hard > 0) {
      const char *Kind = HardKinds[HardKindIdx++ % 6];
      if (std::string(Kind) == "nest") {
        if (Hard < 2)
          continue; // A NEST pair needs two type slots.
        emitNestPair(TypeId);
        TypeId += 2;
        Hard -= 2;
        continue;
      }
      emitHard(TypeId, Kind);
      ++TypeId;
      --Hard;
    }

    std::ostringstream Out;
    Out << Decls.str() << "\n" << Funcs.str() << "\n";
    Out << "int main() {\n  long acc = 0;\n";
    for (const std::string &Call : MainCalls)
      Out << "  acc += " << Call << ";\n";
    Out << "  print_i64(acc);\n  return 0;\n}\n";
    return Out.str();
  }

private:
  std::string typeName(unsigned Id) {
    return formatString("t%u_%s", Id, Config.Name.c_str());
  }

  /// Emits a struct with 3..8 fields named f0..fN; returns the count.
  unsigned emitStruct(const std::string &Name, unsigned MinFields = 3) {
    unsigned NumFields =
        MinFields + static_cast<unsigned>(R.nextBelow(9 - MinFields));
    Decls << "struct " << Name << " {";
    for (unsigned F = 0; F < NumFields; ++F) {
      const char *Ty = (R.nextBelow(3) == 0) ? "double" : "long";
      Decls << " " << Ty << " f" << F << ";";
    }
    Decls << " };\n";
    return NumFields;
  }

  void registerCall(const std::string &FnName) {
    MainCalls.push_back(FnName + "()");
  }

  /// A hot split candidate: heap array, deeply nested hot loop over the
  /// first two fields, shallow cold pass over the rest, pointer escaping
  /// to a defined helper (blocks peeling, keeps splitting predictable).
  void emitHotCandidate(unsigned Id) {
    std::string T = typeName(Id);
    unsigned NumFields = 4 + static_cast<unsigned>(R.nextBelow(4));
    Decls << "struct " << T << " {";
    for (unsigned F = 0; F < NumFields; ++F)
      Decls << " long f" << F << ";";
    Decls << " };\n";
    Decls << "struct " << T << " *gp_" << Id << ";\n";
    Funcs << "void pin_" << Id << "(struct " << T << " *p) { }\n";
    Funcs << "long use_" << Id << "() {\n";
    Funcs << "  long n = " << Config.HotElements << ";\n";
    Funcs << "  gp_" << Id << " = (struct " << T << "*) malloc(n * sizeof(struct " << T << "));\n";
    Funcs << "  struct " << T << " *p = gp_" << Id << ";\n";
    Funcs << "  pin_" << Id << "(p);\n";
    Funcs << "  for (long i = 0; i < n; i++) {\n";
    for (unsigned F = 0; F < NumFields; ++F)
      Funcs << "    p[i].f" << F << " = i + " << F << ";\n";
    Funcs << "  }\n";
    Funcs << "  long s = 0;\n";
    // Four levels of nesting so the static estimator (whose per-loop
    // weight is depth-based, not trip-count-based) sees the contrast.
    Funcs << "  for (long r = 0; r < 2; r++)\n";
    Funcs << "    for (long k = 0; k < " << Config.HotIterations << "; k++)\n";
    Funcs << "      for (long m = 0; m < 2; m++)\n";
    Funcs << "        for (long i = 0; i < n; i++)\n";
    Funcs << "          s += p[i].f0 + p[i].f1;\n";
    Funcs << "  for (long i = 0; i < n; i++) {\n";
    for (unsigned F = 2; F < NumFields; ++F)
      Funcs << "    s += p[i].f" << F << ";\n";
    Funcs << "  }\n";
    Funcs << "  free(p);\n  return s % 1000003;\n}\n";
    registerCall("use_" + std::to_string(Id));
  }

  /// Legal but untransformable: only a global instance exists.
  void emitLegalGlobalOnly(unsigned Id) {
    std::string T = typeName(Id);
    unsigned NumFields = emitStruct(T);
    Decls << "struct " << T << " g_" << Id << ";\n";
    Funcs << "long use_" << Id << "() {\n  long s = 0;\n";
    Funcs << "  for (long i = 0; i < 16; i++) {\n";
    for (unsigned F = 0; F < NumFields; ++F)
      Funcs << "    g_" << Id << ".f" << F << " = (long) g_" << Id << ".f"
            << F << " + i;\n";
    Funcs << "  }\n";
    Funcs << "  s = (long) g_" << Id << ".f0 + (long) g_" << Id << ".f"
          << (NumFields - 1) << ";\n";
    Funcs << "  return s;\n}\n";
    registerCall("use_" + std::to_string(Id));
  }

  /// Violations tolerated by the relaxed (points-to) analysis.
  void emitRelaxOnly(unsigned Id, const std::string &Kind) {
    std::string T = typeName(Id);
    unsigned NumFields = emitStruct(T);
    (void)NumFields;
    Funcs << "long use_" << Id << "() {\n";
    if (Kind == "cstt") {
      Funcs << "  struct " << T << " *p = (struct " << T
            << "*) wrap_alloc(8 * sizeof(struct " << T << "));\n";
    } else {
      Funcs << "  struct " << T << " *p = (struct " << T
            << "*) malloc(8 * sizeof(struct " << T << "));\n";
    }
    Funcs << "  for (long i = 0; i < 8; i++) { p[i].f0 = i; p[i].f1 = 2 * i; }\n";
    Funcs << "  long s = 0;\n";
    if (Kind == "cstf") {
      Funcs << "  long *raw = (long*) p;\n";
      Funcs << "  s += raw[0];\n";
    } else if (Kind == "atkn") {
      Decls << "long *atkn_" << Id << ";\n";
      Funcs << "  atkn_" << Id << " = &p[2].f1;\n";
      Funcs << "  s += *atkn_" << Id << ";\n";
    }
    Funcs << "  for (long i = 0; i < 8; i++) { s += p[i].f0 + p[i].f1; }\n";
    Funcs << "  free(p);\n  return s;\n}\n";
    registerCall("use_" + std::to_string(Id));
  }

  /// Violations that even the relaxed analysis cannot tolerate.
  void emitHard(unsigned Id, const std::string &Kind) {
    std::string T = typeName(Id);
    emitStruct(T);
    Funcs << "long use_" << Id << "() {\n";
    if (Kind == "smal") {
      Funcs << "  struct " << T << " *p = (struct " << T
            << "*) malloc(sizeof(struct " << T << "));\n";
      Funcs << "  p->f0 = 7;\n  long s = p->f0;\n  free(p);\n";
      Funcs << "  return s;\n}\n";
    } else if (Kind == "unsz") {
      Funcs << "  struct " << T << " *p = (struct " << T
            << "*) malloc(8 * sizeof(struct " << T << ") + 8);\n";
      Funcs << "  p[1].f0 = 5;\n  long s = p[1].f0;\n  free(p);\n";
      Funcs << "  return s;\n}\n";
    } else if (Kind == "mset") {
      Funcs << "  struct " << T << " *p = (struct " << T
            << "*) malloc(8 * sizeof(struct " << T << "));\n";
      Funcs << "  memset(p, 0, 8 * sizeof(struct " << T << "));\n";
      Funcs << "  long s = p[3].f0;\n  free(p);\n  return s;\n}\n";
    } else if (Kind == "libc") {
      Decls << "extern void lib_sink_" << Id << "(struct " << T << " *p);\n";
      Funcs << "  struct " << T << " *p = (struct " << T
            << "*) malloc(8 * sizeof(struct " << T << "));\n";
      Funcs << "  p->f1 = 3;\n";
      Funcs << "  if (gen_never == 1) { lib_sink_" << Id << "(p); }\n";
      Funcs << "  long s = p->f1;\n  free(p);\n  return s;\n}\n";
    } else { // ind
      Funcs << "  struct " << T << " *p = (struct " << T
            << "*) malloc(8 * sizeof(struct " << T << "));\n";
      Funcs << "  long (*fn)(struct " << T << "*);\n";
      Funcs << "  fn = taker_" << Id << ";\n";
      Funcs << "  long s = fn(p);\n  free(p);\n  return s;\n}\n";
      Funcs << "long taker_" << Id << "(struct " << T
            << " *q) { q->f0 = 9; return q->f0; }\n";
    }
    registerCall("use_" + std::to_string(Id));
  }

  /// Two mutually nested types (both NEST-invalid).
  void emitNestPair(unsigned Id) {
    std::string Inner = typeName(Id);
    std::string Outer = typeName(Id + 1);
    Decls << "struct " << Inner << " { long a; long b; };\n";
    Decls << "struct " << Outer << " { struct " << Inner
          << " in; long tag; };\n";
    Funcs << "long use_" << Id << "() {\n";
    Funcs << "  struct " << Outer << " o;\n";
    Funcs << "  o.in.a = 1;\n  o.in.b = 2;\n  o.tag = 3;\n";
    Funcs << "  return o.in.a + o.in.b + o.tag;\n}\n";
    registerCall("use_" + std::to_string(Id));
  }

  const GeneratorConfig &Config;
  Rng R;
  std::ostringstream Decls;
  std::ostringstream Funcs;
  std::vector<std::string> MainCalls;
};

} // namespace

std::string slo::generateBenchmarkSource(const GeneratorConfig &Config) {
  return SourceBuilder(Config).build();
}
