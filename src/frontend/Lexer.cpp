//===- frontend/Lexer.cpp - MiniC lexer -----------------------------------===//

#include "frontend/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace slo;

const char *slo::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::FloatLiteral:
    return "float literal";
  case TokKind::KwStruct:
    return "'struct'";
  case TokKind::KwExtern:
    return "'extern'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwLong:
    return "'long'";
  case TokKind::KwChar:
    return "'char'";
  case TokKind::KwShort:
    return "'short'";
  case TokKind::KwFloat:
    return "'float'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwSizeof:
    return "'sizeof'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  case TokKind::SlashAssign:
    return "'/='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Colon:
    return "':'";
  }
  return "<unknown token>";
}

Lexer::Lexer(std::string Source) : Src(std::move(Source)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

Token Lexer::make(TokKind K) const {
  Token T;
  T.Kind = K;
  T.Line = TokLine;
  T.Col = TokCol;
  return T;
}

void Lexer::skipWhitespaceAndComments(std::string &Error) {
  while (Pos < Src.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Src.size()) {
        Error = formatString("line %u: unterminated block comment", Line);
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

static const std::map<std::string, TokKind> &keywordMap() {
  static const std::map<std::string, TokKind> Keywords = {
      {"struct", TokKind::KwStruct},   {"extern", TokKind::KwExtern},
      {"int", TokKind::KwInt},         {"long", TokKind::KwLong},
      {"char", TokKind::KwChar},       {"short", TokKind::KwShort},
      {"float", TokKind::KwFloat},     {"double", TokKind::KwDouble},
      {"void", TokKind::KwVoid},       {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},         {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},     {"continue", TokKind::KwContinue},
      {"sizeof", TokKind::KwSizeof},
  };
  return Keywords;
}

Token Lexer::next(std::string &Error) {
  skipWhitespaceAndComments(Error);
  if (!Error.empty())
    return make(TokKind::Eof);
  TokLine = Line;
  TokCol = Col;
  if (Pos >= Src.size())
    return make(TokKind::Eof);

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Ident(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Ident += advance();
    auto It = keywordMap().find(Ident);
    if (It != keywordMap().end())
      return make(It->second);
    Token T = make(TokKind::Identifier);
    T.Text = std::move(Ident);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Num(1, C);
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      Num += advance();
      while (std::isxdigit(static_cast<unsigned char>(peek())))
        Num += advance();
      Token T = make(TokKind::IntLiteral);
      T.IntValue = static_cast<int64_t>(std::strtoull(Num.c_str(), nullptr, 16));
      return T;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Num += advance();
    bool IsFloat = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Num += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Num += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Sign = peek(1);
      if (std::isdigit(static_cast<unsigned char>(Sign)) ||
          ((Sign == '+' || Sign == '-') &&
           std::isdigit(static_cast<unsigned char>(peek(2))))) {
        IsFloat = true;
        Num += advance();
        if (peek() == '+' || peek() == '-')
          Num += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Num += advance();
      }
    }
    if (IsFloat) {
      Token T = make(TokKind::FloatLiteral);
      T.FloatValue = std::strtod(Num.c_str(), nullptr);
      return T;
    }
    Token T = make(TokKind::IntLiteral);
    T.IntValue = static_cast<int64_t>(std::strtoull(Num.c_str(), nullptr, 10));
    return T;
  }

  switch (C) {
  case '(':
    return make(TokKind::LParen);
  case ')':
    return make(TokKind::RParen);
  case '{':
    return make(TokKind::LBrace);
  case '}':
    return make(TokKind::RBrace);
  case '[':
    return make(TokKind::LBracket);
  case ']':
    return make(TokKind::RBracket);
  case ';':
    return make(TokKind::Semi);
  case ',':
    return make(TokKind::Comma);
  case '.':
    return make(TokKind::Dot);
  case '+':
    if (match('+'))
      return make(TokKind::PlusPlus);
    if (match('='))
      return make(TokKind::PlusAssign);
    return make(TokKind::Plus);
  case '-':
    if (match('>'))
      return make(TokKind::Arrow);
    if (match('-'))
      return make(TokKind::MinusMinus);
    if (match('='))
      return make(TokKind::MinusAssign);
    return make(TokKind::Minus);
  case '*':
    if (match('='))
      return make(TokKind::StarAssign);
    return make(TokKind::Star);
  case '/':
    if (match('='))
      return make(TokKind::SlashAssign);
    return make(TokKind::Slash);
  case '%':
    return make(TokKind::Percent);
  case '&':
    if (match('&'))
      return make(TokKind::AmpAmp);
    return make(TokKind::Amp);
  case '|':
    if (match('|'))
      return make(TokKind::PipePipe);
    return make(TokKind::Pipe);
  case '^':
    return make(TokKind::Caret);
  case '~':
    return make(TokKind::Tilde);
  case '!':
    if (match('='))
      return make(TokKind::NotEq);
    return make(TokKind::Bang);
  case '=':
    if (match('='))
      return make(TokKind::EqEq);
    return make(TokKind::Assign);
  case '<':
    if (match('='))
      return make(TokKind::LessEq);
    if (match('<'))
      return make(TokKind::Shl);
    return make(TokKind::Less);
  case '>':
    if (match('='))
      return make(TokKind::GreaterEq);
    if (match('>'))
      return make(TokKind::Shr);
    return make(TokKind::Greater);
  case '?':
    return make(TokKind::Question);
  case ':':
    return make(TokKind::Colon);
  default:
    Error = formatString("line %u: unexpected character '%c'", TokLine, C);
    return make(TokKind::Eof);
  }
}

std::vector<Token> Lexer::lexAll(std::string &Error) {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next(Error);
    Tokens.push_back(T);
    if (T.is(TokKind::Eof) || !Error.empty())
      break;
  }
  if (Tokens.empty() || !Tokens.back().is(TokKind::Eof)) {
    Token T;
    T.Kind = TokKind::Eof;
    T.Line = Line;
    Tokens.push_back(T);
  }
  return Tokens;
}
