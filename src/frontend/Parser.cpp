//===- frontend/Parser.cpp - MiniC parser ---------------------------------===//

#include "frontend/Parser.h"

#include "support/Format.h"

using namespace slo;

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // The stream is always Eof-terminated.
  return Tokens[I];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (match(K))
    return true;
  error(formatString("expected %s %s, found %s", tokKindName(K), Context,
                     tokKindName(peek().Kind)));
  return false;
}

void Parser::error(const std::string &Msg) {
  HadError = true;
  Diags.push_back(formatString("line %u: %s", peek().Line, Msg.c_str()));
}

void Parser::synchronizeTopLevel() {
  // Skip to something that plausibly starts a new top-level declaration.
  while (!check(TokKind::Eof)) {
    if (match(TokKind::Semi))
      return;
    if (check(TokKind::KwStruct) || check(TokKind::KwExtern) || atTypeStart())
      return;
    advance();
  }
}

bool Parser::atTypeStart() const {
  switch (peek().Kind) {
  case TokKind::KwInt:
  case TokKind::KwLong:
  case TokKind::KwChar:
  case TokKind::KwShort:
  case TokKind::KwFloat:
  case TokKind::KwDouble:
  case TokKind::KwVoid:
  case TokKind::KwStruct:
    return true;
  default:
    return false;
  }
}

std::unique_ptr<TranslationUnit> Parser::parse() {
  auto TU = std::make_unique<TranslationUnit>();
  while (!check(TokKind::Eof)) {
    size_t Before = Pos;
    parseTopLevel(*TU);
    if (Pos == Before) {
      // Safety net: never loop without consuming.
      error(formatString("unexpected %s at top level",
                         tokKindName(peek().Kind)));
      advance();
    }
  }
  if (HadError)
    return nullptr;
  return TU;
}

void Parser::parseTopLevel(TranslationUnit &TU) {
  unsigned Line = peek().Line;

  // 'struct Name { ... };' is a type declaration; 'struct Name ident'
  // begins a function or global declaration.
  if (check(TokKind::KwStruct) && peek(1).is(TokKind::Identifier) &&
      peek(2).is(TokKind::LBrace)) {
    parseStructDecl(TU);
    return;
  }

  bool IsExtern = match(TokKind::KwExtern);
  if (!atTypeStart()) {
    error(formatString("expected a declaration, found %s",
                       tokKindName(peek().Kind)));
    synchronizeTopLevel();
    return;
  }

  TypeSpec Ty = parseTypeSpec();

  // Function-pointer global: type (*name)(params);
  if (check(TokKind::LParen)) {
    auto Proto = std::make_shared<FnProto>();
    Proto->Ret = Ty;
    advance(); // (
    expect(TokKind::Star, "in function pointer declarator");
    std::string Name = peek().Text;
    expect(TokKind::Identifier, "in function pointer declarator");
    expect(TokKind::RParen, "after function pointer name");
    expect(TokKind::LParen, "in function pointer declarator");
    if (!check(TokKind::RParen)) {
      do {
        Proto->Params.push_back(parseTypeSpec());
      } while (match(TokKind::Comma));
    }
    expect(TokKind::RParen, "after function pointer parameters");
    expect(TokKind::Semi, "after global declaration");
    GlobalDecl G;
    G.Ty.Base = TypeSpec::BK_FnPtr;
    G.Ty.Proto = Proto;
    G.Name = std::move(Name);
    G.Line = Line;
    TU.Order.push_back({2, TU.Globals.size()});
    TU.Globals.push_back(std::move(G));
    return;
  }

  std::string Name = peek().Text;
  if (!expect(TokKind::Identifier, "in declaration")) {
    synchronizeTopLevel();
    return;
  }

  if (check(TokKind::LParen)) {
    parseFuncRest(TU, std::move(Ty), std::move(Name), IsExtern, Line);
    return;
  }

  // Global variable.
  GlobalDecl G;
  G.Ty = std::move(Ty);
  G.Name = std::move(Name);
  G.Line = Line;
  if (match(TokKind::LBracket)) {
    if (check(TokKind::IntLiteral)) {
      G.ArraySize = static_cast<uint64_t>(peek().IntValue);
      advance();
    } else {
      error("global array size must be an integer literal");
    }
    expect(TokKind::RBracket, "after array size");
  }
  if (match(TokKind::Assign)) {
    bool Neg = match(TokKind::Minus);
    if (check(TokKind::IntLiteral)) {
      G.HasInit = true;
      G.InitValue = Neg ? -peek().IntValue : peek().IntValue;
      advance();
    } else {
      error("global initializer must be an integer literal");
    }
  }
  expect(TokKind::Semi, "after global declaration");
  TU.Order.push_back({2, TU.Globals.size()});
  TU.Globals.push_back(std::move(G));
}

void Parser::parseStructDecl(TranslationUnit &TU) {
  StructDecl S;
  S.Line = peek().Line;
  advance(); // struct
  S.Name = peek().Text;
  expect(TokKind::Identifier, "after 'struct'");
  expect(TokKind::LBrace, "in struct declaration");
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    TypeSpec FieldTy = parseTypeSpec();
    // One or more declarators sharing the base type.
    do {
      StructFieldDecl F;
      F.Ty = FieldTy;
      // Per-declarator extra pointers: "struct t *a, b;"
      while (match(TokKind::Star))
        ++F.Ty.PtrDepth;
      // Function-pointer field: ret (*name)(params)
      if (check(TokKind::LParen)) {
        auto Proto = std::make_shared<FnProto>();
        Proto->Ret = F.Ty;
        advance();
        expect(TokKind::Star, "in function pointer field");
        F.Name = peek().Text;
        expect(TokKind::Identifier, "in function pointer field");
        expect(TokKind::RParen, "after function pointer field name");
        expect(TokKind::LParen, "in function pointer field");
        if (!check(TokKind::RParen)) {
          do {
            Proto->Params.push_back(parseTypeSpec());
          } while (match(TokKind::Comma));
        }
        expect(TokKind::RParen, "after function pointer field parameters");
        F.Ty = TypeSpec();
        F.Ty.Base = TypeSpec::BK_FnPtr;
        F.Ty.Proto = Proto;
      } else {
        F.Name = peek().Text;
        expect(TokKind::Identifier, "in field declaration");
        if (match(TokKind::LBracket)) {
          if (check(TokKind::IntLiteral)) {
            F.ArraySize = static_cast<uint64_t>(peek().IntValue);
            advance();
          } else {
            error("field array size must be an integer literal");
          }
          expect(TokKind::RBracket, "after field array size");
        }
      }
      S.Fields.push_back(std::move(F));
    } while (match(TokKind::Comma));
    expect(TokKind::Semi, "after field declaration");
  }
  expect(TokKind::RBrace, "at end of struct declaration");
  expect(TokKind::Semi, "after struct declaration");
  TU.Order.push_back({0, TU.Structs.size()});
  TU.Structs.push_back(std::move(S));
}

TypeSpec Parser::parseBaseType() {
  TypeSpec Ty;
  switch (peek().Kind) {
  case TokKind::KwVoid:
    Ty.Base = TypeSpec::BK_Void;
    break;
  case TokKind::KwChar:
    Ty.Base = TypeSpec::BK_Char;
    break;
  case TokKind::KwShort:
    Ty.Base = TypeSpec::BK_Short;
    break;
  case TokKind::KwInt:
    Ty.Base = TypeSpec::BK_Int;
    break;
  case TokKind::KwLong:
    Ty.Base = TypeSpec::BK_Long;
    break;
  case TokKind::KwFloat:
    Ty.Base = TypeSpec::BK_Float;
    break;
  case TokKind::KwDouble:
    Ty.Base = TypeSpec::BK_Double;
    break;
  case TokKind::KwStruct:
    Ty.Base = TypeSpec::BK_Struct;
    advance();
    Ty.StructName = peek().Text;
    expect(TokKind::Identifier, "after 'struct'");
    return Ty;
  default:
    error(formatString("expected a type, found %s",
                       tokKindName(peek().Kind)));
    return Ty;
  }
  advance();
  return Ty;
}

TypeSpec Parser::parseTypeSpec() {
  TypeSpec Ty = parseBaseType();
  while (match(TokKind::Star))
    ++Ty.PtrDepth;
  return Ty;
}

void Parser::parseFuncRest(TranslationUnit &TU, TypeSpec Ret,
                           std::string Name, bool IsExtern, unsigned Line) {
  FuncDecl F;
  F.Ret = std::move(Ret);
  F.Name = std::move(Name);
  F.IsExtern = IsExtern;
  F.Line = Line;
  expect(TokKind::LParen, "in function declaration");
  if (!check(TokKind::RParen)) {
    do {
      ParamDecl P;
      P.Ty = parseTypeSpec();
      if (check(TokKind::Identifier)) {
        P.Name = peek().Text;
        advance();
      }
      F.Params.push_back(std::move(P));
    } while (match(TokKind::Comma));
  }
  expect(TokKind::RParen, "after parameters");
  if (match(TokKind::Semi)) {
    TU.Order.push_back({1, TU.Functions.size()});
    TU.Functions.push_back(std::move(F));
    return;
  }
  F.Body = parseBlock();
  TU.Order.push_back({1, TU.Functions.size()});
  TU.Functions.push_back(std::move(F));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  unsigned Line = peek().Line;
  expect(TokKind::LBrace, "to open a block");
  auto B = std::make_unique<BlockStmt>(Line);
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    size_t Before = Pos;
    B->Stmts.push_back(parseStmt());
    if (Pos == Before)
      advance(); // Never loop without consuming.
  }
  expect(TokKind::RBrace, "to close a block");
  return B;
}

StmtPtr Parser::parseVarDecl() {
  unsigned Line = peek().Line;
  TypeSpec Ty = parseTypeSpec();

  // Function-pointer local: ret (*name)(params);
  if (check(TokKind::LParen)) {
    auto Proto = std::make_shared<FnProto>();
    Proto->Ret = Ty;
    advance();
    expect(TokKind::Star, "in function pointer declarator");
    std::string Name = peek().Text;
    expect(TokKind::Identifier, "in function pointer declarator");
    expect(TokKind::RParen, "after function pointer name");
    expect(TokKind::LParen, "in function pointer declarator");
    if (!check(TokKind::RParen)) {
      do {
        Proto->Params.push_back(parseTypeSpec());
      } while (match(TokKind::Comma));
    }
    expect(TokKind::RParen, "after function pointer parameters");
    TypeSpec FpTy;
    FpTy.Base = TypeSpec::BK_FnPtr;
    FpTy.Proto = Proto;
    auto D = std::make_unique<VarDeclStmt>(std::move(FpTy), std::move(Name),
                                           Line);
    if (match(TokKind::Assign))
      D->Init = parseAssignment();
    expect(TokKind::Semi, "after declaration");
    return D;
  }

  std::string Name = peek().Text;
  expect(TokKind::Identifier, "in declaration");
  auto D = std::make_unique<VarDeclStmt>(std::move(Ty), std::move(Name), Line);
  if (match(TokKind::LBracket)) {
    if (check(TokKind::IntLiteral)) {
      D->ArraySize = static_cast<uint64_t>(peek().IntValue);
      advance();
    } else {
      error("local array size must be an integer literal");
    }
    expect(TokKind::RBracket, "after array size");
  }
  if (match(TokKind::Assign))
    D->Init = parseAssignment();
  expect(TokKind::Semi, "after declaration");
  return D;
}

StmtPtr Parser::parseIf() {
  unsigned Line = peek().Line;
  advance(); // if
  expect(TokKind::LParen, "after 'if'");
  ExprPtr C = parseExpr();
  expect(TokKind::RParen, "after condition");
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (match(TokKind::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(std::move(C), std::move(Then),
                                  std::move(Else), Line);
}

StmtPtr Parser::parseWhile() {
  unsigned Line = peek().Line;
  advance(); // while
  expect(TokKind::LParen, "after 'while'");
  ExprPtr C = parseExpr();
  expect(TokKind::RParen, "after condition");
  StmtPtr Body = parseStmt();
  return std::make_unique<WhileStmt>(std::move(C), std::move(Body), Line);
}

StmtPtr Parser::parseFor() {
  unsigned Line = peek().Line;
  advance(); // for
  expect(TokKind::LParen, "after 'for'");
  auto F = std::make_unique<ForStmt>(Line);
  if (!check(TokKind::Semi)) {
    if (atTypeStart()) {
      F->Init = parseVarDecl(); // Consumes the ';'.
    } else {
      ExprPtr E = parseExpr();
      F->Init = std::make_unique<ExprStmt>(std::move(E), Line);
      expect(TokKind::Semi, "after for-init");
    }
  } else {
    advance();
  }
  if (!check(TokKind::Semi))
    F->Cond = parseExpr();
  expect(TokKind::Semi, "after for-condition");
  if (!check(TokKind::RParen))
    F->Step = parseExpr();
  expect(TokKind::RParen, "after for-step");
  F->Body = parseStmt();
  return F;
}

StmtPtr Parser::parseStmt() {
  unsigned Line = peek().Line;
  switch (peek().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwReturn: {
    advance();
    ExprPtr E;
    if (!check(TokKind::Semi))
      E = parseExpr();
    expect(TokKind::Semi, "after 'return'");
    return std::make_unique<ReturnStmt>(std::move(E), Line);
  }
  case TokKind::KwBreak:
    advance();
    expect(TokKind::Semi, "after 'break'");
    return std::make_unique<BreakStmt>(Line);
  case TokKind::KwContinue:
    advance();
    expect(TokKind::Semi, "after 'continue'");
    return std::make_unique<ContinueStmt>(Line);
  case TokKind::Semi:
    advance();
    return std::make_unique<EmptyStmt>(Line);
  default:
    if (atTypeStart())
      return parseVarDecl();
    ExprPtr E = parseExpr();
    expect(TokKind::Semi, "after expression");
    return std::make_unique<ExprStmt>(std::move(E), Line);
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr LHS = parseConditional();
  unsigned Line = peek().Line;
  AssignExpr::AssignOp Op;
  switch (peek().Kind) {
  case TokKind::Assign:
    Op = AssignExpr::AO_Assign;
    break;
  case TokKind::PlusAssign:
    Op = AssignExpr::AO_Add;
    break;
  case TokKind::MinusAssign:
    Op = AssignExpr::AO_Sub;
    break;
  case TokKind::StarAssign:
    Op = AssignExpr::AO_Mul;
    break;
  case TokKind::SlashAssign:
    Op = AssignExpr::AO_Div;
    break;
  default:
    return LHS;
  }
  advance();
  ExprPtr RHS = parseAssignment(); // Right-associative.
  return std::make_unique<AssignExpr>(Op, std::move(LHS), std::move(RHS),
                                      Line);
}

ExprPtr Parser::parseConditional() {
  ExprPtr C = parseBinaryRHS(0, parseUnary());
  if (!check(TokKind::Question))
    return C;
  unsigned Line = peek().Line;
  advance();
  ExprPtr T = parseAssignment();
  expect(TokKind::Colon, "in conditional expression");
  ExprPtr F = parseConditional();
  return std::make_unique<CondExpr>(std::move(C), std::move(T), std::move(F),
                                    Line);
}

namespace {
struct BinOpInfo {
  BinaryExpr::BinOp Op;
  int Prec;
};
} // namespace

static bool getBinOp(TokKind K, BinOpInfo &Info) {
  switch (K) {
  case TokKind::PipePipe:
    Info = {BinaryExpr::BO_LOr, 1};
    return true;
  case TokKind::AmpAmp:
    Info = {BinaryExpr::BO_LAnd, 2};
    return true;
  case TokKind::Pipe:
    Info = {BinaryExpr::BO_Or, 3};
    return true;
  case TokKind::Caret:
    Info = {BinaryExpr::BO_Xor, 4};
    return true;
  case TokKind::Amp:
    Info = {BinaryExpr::BO_And, 5};
    return true;
  case TokKind::EqEq:
    Info = {BinaryExpr::BO_EQ, 6};
    return true;
  case TokKind::NotEq:
    Info = {BinaryExpr::BO_NE, 6};
    return true;
  case TokKind::Less:
    Info = {BinaryExpr::BO_LT, 7};
    return true;
  case TokKind::LessEq:
    Info = {BinaryExpr::BO_LE, 7};
    return true;
  case TokKind::Greater:
    Info = {BinaryExpr::BO_GT, 7};
    return true;
  case TokKind::GreaterEq:
    Info = {BinaryExpr::BO_GE, 7};
    return true;
  case TokKind::Shl:
    Info = {BinaryExpr::BO_Shl, 8};
    return true;
  case TokKind::Shr:
    Info = {BinaryExpr::BO_Shr, 8};
    return true;
  case TokKind::Plus:
    Info = {BinaryExpr::BO_Add, 9};
    return true;
  case TokKind::Minus:
    Info = {BinaryExpr::BO_Sub, 9};
    return true;
  case TokKind::Star:
    Info = {BinaryExpr::BO_Mul, 10};
    return true;
  case TokKind::Slash:
    Info = {BinaryExpr::BO_Div, 10};
    return true;
  case TokKind::Percent:
    Info = {BinaryExpr::BO_Rem, 10};
    return true;
  default:
    return false;
  }
}

ExprPtr Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  while (true) {
    BinOpInfo Info;
    if (!getBinOp(peek().Kind, Info) || Info.Prec < MinPrec)
      return LHS;
    unsigned Line = peek().Line;
    advance();
    ExprPtr RHS = parseUnary();
    BinOpInfo Next;
    while (getBinOp(peek().Kind, Next) && Next.Prec > Info.Prec)
      RHS = parseBinaryRHS(Next.Prec, std::move(RHS));
    LHS = std::make_unique<BinaryExpr>(Info.Op, std::move(LHS),
                                       std::move(RHS), Line);
  }
}

ExprPtr Parser::parseUnary() {
  unsigned Line = peek().Line;
  switch (peek().Kind) {
  case TokKind::Minus:
    advance();
    return std::make_unique<UnaryExpr>(UnaryExpr::UO_Neg, parseUnary(), Line);
  case TokKind::Bang:
    advance();
    return std::make_unique<UnaryExpr>(UnaryExpr::UO_LogicalNot, parseUnary(),
                                       Line);
  case TokKind::Tilde:
    advance();
    return std::make_unique<UnaryExpr>(UnaryExpr::UO_BitNot, parseUnary(),
                                       Line);
  case TokKind::Star:
    advance();
    return std::make_unique<UnaryExpr>(UnaryExpr::UO_Deref, parseUnary(),
                                       Line);
  case TokKind::Amp:
    advance();
    return std::make_unique<UnaryExpr>(UnaryExpr::UO_AddrOf, parseUnary(),
                                       Line);
  case TokKind::PlusPlus:
    advance();
    return std::make_unique<IncDecExpr>(/*IsInc=*/true, /*IsPrefix=*/true,
                                        parseUnary(), Line);
  case TokKind::MinusMinus:
    advance();
    return std::make_unique<IncDecExpr>(/*IsInc=*/false, /*IsPrefix=*/true,
                                        parseUnary(), Line);
  case TokKind::KwSizeof: {
    advance();
    expect(TokKind::LParen, "after 'sizeof'");
    TypeSpec Ty = parseTypeSpec();
    expect(TokKind::RParen, "after sizeof type");
    return std::make_unique<SizeofTypeExpr>(std::move(Ty), Line);
  }
  case TokKind::LParen:
    // Cast: '(' type ')' unary. MiniC types always start with a keyword.
    if (peek(1).is(TokKind::KwStruct) || peek(1).is(TokKind::KwInt) ||
        peek(1).is(TokKind::KwLong) || peek(1).is(TokKind::KwChar) ||
        peek(1).is(TokKind::KwShort) || peek(1).is(TokKind::KwFloat) ||
        peek(1).is(TokKind::KwDouble) || peek(1).is(TokKind::KwVoid)) {
      advance();
      TypeSpec Ty = parseTypeSpec();
      expect(TokKind::RParen, "after cast type");
      return std::make_unique<CastExpr>(std::move(Ty), parseUnary(), Line);
    }
    return parsePostfix();
  default:
    return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (true) {
    unsigned Line = peek().Line;
    if (match(TokKind::LBracket)) {
      ExprPtr Idx = parseExpr();
      expect(TokKind::RBracket, "after index");
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Idx), Line);
      continue;
    }
    if (match(TokKind::Dot)) {
      std::string Name = peek().Text;
      expect(TokKind::Identifier, "after '.'");
      E = std::make_unique<MemberExpr>(std::move(E), std::move(Name),
                                       /*IsArrow=*/false, Line);
      continue;
    }
    if (match(TokKind::Arrow)) {
      std::string Name = peek().Text;
      expect(TokKind::Identifier, "after '->'");
      E = std::make_unique<MemberExpr>(std::move(E), std::move(Name),
                                       /*IsArrow=*/true, Line);
      continue;
    }
    if (match(TokKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokKind::RParen)) {
        do {
          Args.push_back(parseAssignment());
        } while (match(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      E = std::make_unique<CallExpr>(std::move(E), std::move(Args), Line);
      continue;
    }
    if (match(TokKind::PlusPlus)) {
      E = std::make_unique<IncDecExpr>(/*IsInc=*/true, /*IsPrefix=*/false,
                                       std::move(E), Line);
      continue;
    }
    if (match(TokKind::MinusMinus)) {
      E = std::make_unique<IncDecExpr>(/*IsInc=*/false, /*IsPrefix=*/false,
                                       std::move(E), Line);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  unsigned Line = peek().Line;
  switch (peek().Kind) {
  case TokKind::IntLiteral: {
    int64_t V = peek().IntValue;
    advance();
    return std::make_unique<IntLitExpr>(V, Line);
  }
  case TokKind::FloatLiteral: {
    double V = peek().FloatValue;
    advance();
    return std::make_unique<FloatLitExpr>(V, Line);
  }
  case TokKind::Identifier: {
    std::string Name = peek().Text;
    advance();
    return std::make_unique<VarRefExpr>(std::move(Name), Line);
  }
  case TokKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "after parenthesized expression");
    return E;
  }
  default:
    error(formatString("expected an expression, found %s",
                       tokKindName(peek().Kind)));
    advance();
    return std::make_unique<IntLitExpr>(0, Line);
  }
}
