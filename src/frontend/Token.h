//===- frontend/Token.h - MiniC tokens -------------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions for MiniC, the C subset the workload programs are
/// written in.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FRONTEND_TOKEN_H
#define SLO_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace slo {

enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,

  // Keywords.
  KwStruct,
  KwExtern,
  KwInt,
  KwLong,
  KwChar,
  KwShort,
  KwFloat,
  KwDouble,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PlusPlus,
  MinusMinus,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Shl,
  Shr,
  AmpAmp,
  PipePipe,
  Question,
  Colon,
};

/// Returns a human-readable spelling for diagnostics.
const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;     // Identifier spelling.
  int64_t IntValue = 0; // For IntLiteral.
  double FloatValue = 0;
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace slo

#endif // SLO_FRONTEND_TOKEN_H
