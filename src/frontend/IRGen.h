//===- frontend/IRGen.h - AST to IR lowering -------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a MiniC TranslationUnit into an ir::Module. Notable lowering
/// decisions that feed the paper's analyses:
///
///  - malloc/calloc return i8* and the assignment to a typed pointer emits
///    an explicit Bitcast, so the CSTT malloc-tolerance logic is exercised
///    exactly as in C.
///  - sizeof(struct T) lowers to an attributed ConstantInt carrying the
///    record, implementing the paper's proposed fix for the sizeof
///    problem.
///  - Array-to-pointer decay emits a Bitcast from [N x T]* to T*, which
///    the legality analysis recognizes structurally as benign.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FRONTEND_IRGEN_H
#define SLO_FRONTEND_IRGEN_H

#include "frontend/Ast.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace slo {

/// Lowers one TranslationUnit into a Module sharing the program's
/// IRContext.
class IRGenerator {
public:
  IRGenerator(IRContext &Ctx, std::vector<std::string> &Diags)
      : Ctx(Ctx), B(Ctx), Diags(Diags) {}

  /// Returns the generated module, or null when any diagnostic was
  /// emitted.
  std::unique_ptr<Module> run(const TranslationUnit &TU,
                              const std::string &ModuleName);

private:
  struct VarInfo {
    Value *Addr = nullptr; // Alloca or global; type is ValueTy*.
    Type *ValueTy = nullptr;
  };

  // Diagnostics; returns a harmless poison value so lowering can continue.
  Value *error(unsigned Line, const std::string &Msg);
  void errorNoValue(unsigned Line, const std::string &Msg);

  // Declarations.
  void declareStruct(const StructDecl &S);
  void declareFunction(const FuncDecl &F);
  void declareGlobal(const GlobalDecl &G);
  void generateFunctionBody(const FuncDecl &F);

  // Types.
  Type *resolveType(const TypeSpec &TS, unsigned Line);
  FunctionType *resolveProto(const FnProto &P, unsigned Line);

  // Scope management.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  VarInfo *lookupVar(const std::string &Name);

  // Statements.
  void genStmt(const Stmt &S);
  void genBlock(const BlockStmt &S);
  void genVarDecl(const VarDeclStmt &S);
  void genIf(const IfStmt &S);
  void genWhile(const WhileStmt &S);
  void genFor(const ForStmt &S);
  void genReturn(const ReturnStmt &S);

  // Expressions.
  Value *genExpr(const Expr &E);
  Value *genAddr(const Expr &E); // Lvalue address, or null + diagnostic.
  Value *genCall(const CallExpr &E);
  Value *genBuiltinCall(const CallExpr &E, const std::string &Name);
  Value *genBinary(const BinaryExpr &E);
  Value *genShortCircuit(const BinaryExpr &E);
  Value *genAssign(const AssignExpr &E);
  Value *genIncDec(const IncDecExpr &E);
  Value *genCond(const CondExpr &E);

  // Conversions.
  Value *convert(Value *V, Type *DestTy, unsigned Line);
  Value *toBool(Value *V, unsigned Line);
  Type *commonType(Type *A, Type *B);
  Value *decayIfArray(Value *Addr, unsigned Line);

  // Control-flow helpers.
  BasicBlock *newBlock(const std::string &Name);
  void startBlock(BasicBlock *BB);
  bool blockTerminated() const;
  void finalizeFunction();

  IRContext &Ctx;
  IRBuilder B;
  std::vector<std::string> &Diags;
  bool HadError = false;

  Module *M = nullptr;
  Function *CurFn = nullptr;
  std::vector<std::map<std::string, VarInfo>> Scopes;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
  unsigned BlockCounter = 0;
};

} // namespace slo

#endif // SLO_FRONTEND_IRGEN_H
