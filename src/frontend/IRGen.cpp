//===- frontend/IRGen.cpp - AST to IR lowering ----------------------------===//

#include "frontend/IRGen.h"

#include "support/Casting.h"
#include "support/Error.h"
#include "support/Format.h"

using namespace slo;

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

Value *IRGenerator::error(unsigned Line, const std::string &Msg) {
  errorNoValue(Line, Msg);
  return Ctx.getInt64(0);
}

void IRGenerator::errorNoValue(unsigned Line, const std::string &Msg) {
  HadError = true;
  Diags.push_back(formatString("line %u: %s", Line, Msg.c_str()));
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> IRGenerator::run(const TranslationUnit &TU,
                                         const std::string &ModuleName) {
  auto Mod = std::make_unique<Module>(Ctx, ModuleName);
  M = Mod.get();

  for (const StructDecl &S : TU.Structs)
    declareStruct(S);
  for (const FuncDecl &F : TU.Functions)
    declareFunction(F);
  for (const GlobalDecl &G : TU.Globals)
    declareGlobal(G);
  for (const FuncDecl &F : TU.Functions)
    if (F.Body)
      generateFunctionBody(F);

  if (HadError)
    return nullptr;
  return Mod;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

FunctionType *IRGenerator::resolveProto(const FnProto &P, unsigned Line) {
  Type *Ret = resolveType(P.Ret, Line);
  std::vector<Type *> Params;
  for (const TypeSpec &TS : P.Params)
    Params.push_back(resolveType(TS, Line));
  return Ctx.getTypes().getFunctionType(Ret, std::move(Params));
}

Type *IRGenerator::resolveType(const TypeSpec &TS, unsigned Line) {
  TypeContext &T = Ctx.getTypes();
  Type *Base = nullptr;
  switch (TS.Base) {
  case TypeSpec::BK_Void:
    if (TS.PtrDepth == 0)
      return T.getVoidType();
    // void* is spelled i8* in the IR.
    Base = T.getI8();
    break;
  case TypeSpec::BK_Char:
    Base = T.getI8();
    break;
  case TypeSpec::BK_Short:
    Base = T.getI16();
    break;
  case TypeSpec::BK_Int:
    Base = T.getI32();
    break;
  case TypeSpec::BK_Long:
    Base = T.getI64();
    break;
  case TypeSpec::BK_Float:
    Base = T.getF32();
    break;
  case TypeSpec::BK_Double:
    Base = T.getF64();
    break;
  case TypeSpec::BK_Struct:
    Base = T.getOrCreateRecord(TS.StructName);
    if (TS.PtrDepth == 0 && cast<RecordType>(Base)->isOpaque())
      errorNoValue(Line, "use of incomplete type 'struct " + TS.StructName +
                             "'");
    break;
  case TypeSpec::BK_FnPtr:
    return T.getPointerType(resolveProto(*TS.Proto, Line));
  }
  for (unsigned I = 0; I < TS.PtrDepth; ++I)
    Base = T.getPointerType(Base);
  return Base;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void IRGenerator::declareStruct(const StructDecl &S) {
  RecordType *Rec = Ctx.getTypes().getOrCreateRecord(S.Name);
  std::vector<Field> Fields;
  for (const StructFieldDecl &FD : S.Fields) {
    Field F;
    F.Name = FD.Name;
    F.Ty = resolveType(FD.Ty, S.Line);
    if (FD.ArraySize > 0)
      F.Ty = Ctx.getTypes().getArrayType(F.Ty, FD.ArraySize);
    if (F.Ty->isVoid()) {
      errorNoValue(S.Line, "field '" + FD.Name + "' has void type");
      F.Ty = Ctx.getTypes().getI32();
    }
    Fields.push_back(std::move(F));
  }
  if (!Rec->isOpaque()) {
    // Same struct declared in another translation unit: layouts must agree
    // (the shared TypeContext is the type-unified IPA symbol table).
    bool Same = Rec->getNumFields() == Fields.size();
    for (unsigned I = 0; Same && I < Fields.size(); ++I)
      Same = Rec->getField(I).Name == Fields[I].Name &&
             Rec->getField(I).Ty == Fields[I].Ty;
    if (!Same)
      errorNoValue(S.Line, "conflicting redefinition of 'struct " + S.Name +
                               "' across translation units");
    return;
  }
  Rec->setFields(std::move(Fields));
}

void IRGenerator::declareFunction(const FuncDecl &F) {
  Type *Ret = resolveType(F.Ret, F.Line);
  std::vector<Type *> Params;
  for (const ParamDecl &P : F.Params)
    Params.push_back(resolveType(P.Ty, F.Line));
  FunctionType *FnTy =
      Ctx.getTypes().getFunctionType(Ret, std::move(Params));

  if (Function *Existing = M->lookupFunction(F.Name)) {
    if (Existing->getFunctionType() != FnTy) {
      errorNoValue(F.Line, "conflicting declaration of function '" + F.Name +
                               "'");
    }
    return;
  }
  Function *Fn = M->createFunction(FnTy, F.Name, /*IsLib=*/F.IsExtern);
  for (unsigned I = 0; I < F.Params.size(); ++I)
    if (!F.Params[I].Name.empty())
      Fn->getArg(I)->setName(F.Params[I].Name);
}

void IRGenerator::declareGlobal(const GlobalDecl &G) {
  Type *Ty = resolveType(G.Ty, G.Line);
  if (Ty->isVoid()) {
    errorNoValue(G.Line, "global '" + G.Name + "' has void type");
    return;
  }
  if (G.ArraySize > 0)
    Ty = Ctx.getTypes().getArrayType(Ty, G.ArraySize);
  if (M->lookupGlobal(G.Name)) {
    errorNoValue(G.Line, "redefinition of global '" + G.Name + "'");
    return;
  }
  GlobalVariable *GV = M->createGlobal(Ty, G.Name);
  if (G.HasInit)
    GV->setIntInit(G.InitValue);
}

//===----------------------------------------------------------------------===//
// Control-flow helpers
//===----------------------------------------------------------------------===//

BasicBlock *IRGenerator::newBlock(const std::string &Name) {
  return CurFn->createBlock(Name + "." + std::to_string(BlockCounter++));
}

void IRGenerator::startBlock(BasicBlock *BB) { B.setInsertPoint(BB); }

bool IRGenerator::blockTerminated() const {
  BasicBlock *BB = B.getInsertBlock();
  return BB && BB->getTerminator();
}

void IRGenerator::finalizeFunction() {
  // Any block left without a terminator (including empty blocks created
  // for dead code) gets a default return.
  for (const auto &BB : CurFn->blocks()) {
    if (BB->getTerminator())
      continue;
    B.setInsertPoint(BB.get());
    Type *Ret = CurFn->getReturnType();
    if (Ret->isVoid())
      B.createRet();
    else if (Ret->isFloat())
      B.createRet(Ctx.getConstantFloat(cast<FloatType>(Ret), 0.0));
    else if (Ret->isPointer())
      B.createRet(Ctx.getNullPtr(cast<PointerType>(Ret)));
    else
      B.createRet(Ctx.getConstantInt(cast<IntType>(Ret), 0));
  }
}

//===----------------------------------------------------------------------===//
// Function bodies
//===----------------------------------------------------------------------===//

void IRGenerator::generateFunctionBody(const FuncDecl &F) {
  CurFn = M->lookupFunction(F.Name);
  assert(CurFn && "body for an undeclared function");
  if (!CurFn->blocks().empty()) {
    errorNoValue(F.Line, "redefinition of function '" + F.Name + "'");
    return;
  }
  BlockCounter = 0;
  BasicBlock *Entry = CurFn->createBlock("entry");
  startBlock(Entry);
  pushScope();

  // Spill parameters into allocas so that parameters are addressable like
  // any other local.
  for (unsigned I = 0; I < F.Params.size(); ++I) {
    Argument *A = CurFn->getArg(I);
    AllocaInst *Slot = B.createAlloca(A->getType(), A->getName() + ".addr");
    B.createStore(A, Slot);
    VarInfo Info;
    Info.Addr = Slot;
    Info.ValueTy = A->getType();
    if (!F.Params[I].Name.empty())
      Scopes.back()[F.Params[I].Name] = Info;
  }

  genStmt(*F.Body);
  popScope();
  finalizeFunction();
  CurFn = nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void IRGenerator::genStmt(const Stmt &S) {
  switch (S.Kind) {
  case Stmt::SK_Block:
    genBlock(*cast<BlockStmt>(&S));
    return;
  case Stmt::SK_Expr:
    genExpr(*cast<ExprStmt>(&S)->E);
    return;
  case Stmt::SK_VarDecl:
    genVarDecl(*cast<VarDeclStmt>(&S));
    return;
  case Stmt::SK_If:
    genIf(*cast<IfStmt>(&S));
    return;
  case Stmt::SK_While:
    genWhile(*cast<WhileStmt>(&S));
    return;
  case Stmt::SK_For:
    genFor(*cast<ForStmt>(&S));
    return;
  case Stmt::SK_Return:
    genReturn(*cast<ReturnStmt>(&S));
    return;
  case Stmt::SK_Break:
    if (BreakTargets.empty()) {
      errorNoValue(S.Line, "'break' outside of a loop");
      return;
    }
    B.createBr(BreakTargets.back());
    startBlock(newBlock("dead"));
    return;
  case Stmt::SK_Continue:
    if (ContinueTargets.empty()) {
      errorNoValue(S.Line, "'continue' outside of a loop");
      return;
    }
    B.createBr(ContinueTargets.back());
    startBlock(newBlock("dead"));
    return;
  case Stmt::SK_Empty:
    return;
  }
}

void IRGenerator::genBlock(const BlockStmt &S) {
  pushScope();
  for (const StmtPtr &Child : S.Stmts)
    genStmt(*Child);
  popScope();
}

void IRGenerator::genVarDecl(const VarDeclStmt &S) {
  Type *Ty = resolveType(S.Ty, S.Line);
  if (Ty->isVoid()) {
    errorNoValue(S.Line, "variable '" + S.Name + "' has void type");
    return;
  }
  if (S.ArraySize > 0)
    Ty = Ctx.getTypes().getArrayType(Ty, S.ArraySize);
  AllocaInst *Slot = B.createAlloca(Ty, S.Name);
  VarInfo Info;
  Info.Addr = Slot;
  Info.ValueTy = Ty;
  Scopes.back()[S.Name] = Info;
  if (S.Init) {
    Value *V = genExpr(*S.Init);
    B.createStore(convert(V, Ty, S.Line), Slot);
  }
}

void IRGenerator::genIf(const IfStmt &S) {
  Value *Cond = toBool(genExpr(*S.Cond), S.Line);
  BasicBlock *ThenBB = newBlock("if.then");
  BasicBlock *EndBB = newBlock("if.end");
  BasicBlock *ElseBB = S.Else ? newBlock("if.else") : EndBB;
  B.createCondBr(Cond, ThenBB, ElseBB);

  startBlock(ThenBB);
  genStmt(*S.Then);
  if (!blockTerminated())
    B.createBr(EndBB);

  if (S.Else) {
    startBlock(ElseBB);
    genStmt(*S.Else);
    if (!blockTerminated())
      B.createBr(EndBB);
  }
  startBlock(EndBB);
}

void IRGenerator::genWhile(const WhileStmt &S) {
  BasicBlock *CondBB = newBlock("while.cond");
  BasicBlock *BodyBB = newBlock("while.body");
  BasicBlock *EndBB = newBlock("while.end");
  B.createBr(CondBB);

  startBlock(CondBB);
  Value *Cond = toBool(genExpr(*S.Cond), S.Line);
  B.createCondBr(Cond, BodyBB, EndBB);

  BreakTargets.push_back(EndBB);
  ContinueTargets.push_back(CondBB);
  startBlock(BodyBB);
  genStmt(*S.Body);
  if (!blockTerminated())
    B.createBr(CondBB);
  BreakTargets.pop_back();
  ContinueTargets.pop_back();

  startBlock(EndBB);
}

void IRGenerator::genFor(const ForStmt &S) {
  pushScope();
  if (S.Init)
    genStmt(*S.Init);
  BasicBlock *CondBB = newBlock("for.cond");
  BasicBlock *BodyBB = newBlock("for.body");
  BasicBlock *StepBB = newBlock("for.step");
  BasicBlock *EndBB = newBlock("for.end");
  B.createBr(CondBB);

  startBlock(CondBB);
  if (S.Cond) {
    Value *Cond = toBool(genExpr(*S.Cond), S.Line);
    B.createCondBr(Cond, BodyBB, EndBB);
  } else {
    B.createBr(BodyBB);
  }

  BreakTargets.push_back(EndBB);
  ContinueTargets.push_back(StepBB);
  startBlock(BodyBB);
  genStmt(*S.Body);
  if (!blockTerminated())
    B.createBr(StepBB);
  BreakTargets.pop_back();
  ContinueTargets.pop_back();

  startBlock(StepBB);
  if (S.Step)
    genExpr(*S.Step);
  B.createBr(CondBB);

  startBlock(EndBB);
  popScope();
}

void IRGenerator::genReturn(const ReturnStmt &S) {
  Type *Ret = CurFn->getReturnType();
  if (S.E) {
    if (Ret->isVoid()) {
      errorNoValue(S.Line, "returning a value from a void function");
      B.createRet();
    } else {
      Value *V = genExpr(*S.E);
      B.createRet(convert(V, Ret, S.Line));
    }
  } else {
    if (!Ret->isVoid())
      errorNoValue(S.Line, "missing return value");
    B.createRet();
  }
  startBlock(newBlock("dead"));
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

Value *IRGenerator::decayIfArray(Value *Addr, unsigned Line) {
  (void)Line;
  auto *PT = cast<PointerType>(Addr->getType());
  if (auto *AT = dyn_cast<ArrayType>(PT->getPointee()))
    return B.createCast(
        Instruction::OpBitcast, Addr,
        Ctx.getTypes().getPointerType(AT->getElementType()), "decay");
  return Addr;
}

Value *IRGenerator::convert(Value *V, Type *DestTy, unsigned Line) {
  Type *SrcTy = V->getType();
  if (SrcTy == DestTy)
    return V;

  TypeContext &T = Ctx.getTypes();

  // Constant folding keeps malloc size expressions analyzable and avoids
  // conversion instructions on literals. Note binary expressions are never
  // folded, so attributed sizeof constants survive inside N * sizeof(T).
  if (auto *CI = dyn_cast<ConstantInt>(V)) {
    if (auto *DI = dyn_cast<IntType>(DestTy)) {
      int64_t Val = CI->getValue();
      if (DI->getBits() < 64) {
        uint64_t Mask = (1ULL << DI->getBits()) - 1;
        uint64_t U = static_cast<uint64_t>(Val) & Mask;
        // Sign extend back.
        if (U & (1ULL << (DI->getBits() - 1)))
          U |= ~Mask;
        Val = static_cast<int64_t>(U);
      }
      return Ctx.getConstantInt(DI, Val, CI->getSizeOfRecord());
    }
    if (auto *DF = dyn_cast<FloatType>(DestTy))
      return Ctx.getConstantFloat(DF, static_cast<double>(CI->getValue()));
    if (auto *DP = dyn_cast<PointerType>(DestTy)) {
      if (CI->getValue() == 0)
        return Ctx.getNullPtr(DP);
    }
  }
  if (auto *CF = dyn_cast<ConstantFloat>(V)) {
    if (auto *DF = dyn_cast<FloatType>(DestTy))
      return Ctx.getConstantFloat(DF, CF->getValue());
    if (auto *DI = dyn_cast<IntType>(DestTy))
      return Ctx.getConstantInt(DI, static_cast<int64_t>(CF->getValue()));
  }
  if (isa<ConstantNull>(V) && DestTy->isPointer())
    return Ctx.getNullPtr(cast<PointerType>(DestTy));

  if (SrcTy->isInt() && DestTy->isInt()) {
    unsigned SB = cast<IntType>(SrcTy)->getBits();
    unsigned DB = cast<IntType>(DestTy)->getBits();
    if (SB < DB) {
      // Booleans zero-extend (i1 true is 1, not -1); other ints are signed.
      Instruction::Opcode Op =
          SB == 1 ? Instruction::OpZExt : Instruction::OpSExt;
      return B.createCast(Op, V, DestTy);
    }
    return B.createCast(Instruction::OpTrunc, V, DestTy);
  }
  if (SrcTy->isInt() && DestTy->isFloat())
    return B.createCast(Instruction::OpSIToFP, V, DestTy);
  if (SrcTy->isFloat() && DestTy->isInt())
    return B.createCast(Instruction::OpFPToSI, V, DestTy);
  if (SrcTy->isFloat() && DestTy->isFloat()) {
    unsigned SB = cast<FloatType>(SrcTy)->getBits();
    unsigned DB = cast<FloatType>(DestTy)->getBits();
    return B.createCast(SB < DB ? Instruction::OpFPExt
                                : Instruction::OpFPTrunc,
                        V, DestTy);
  }
  if (SrcTy->isPointer() && DestTy->isPointer())
    return B.createCast(Instruction::OpBitcast, V, DestTy);
  if (SrcTy->isPointer() && DestTy->isInt()) {
    Value *I = B.createCast(Instruction::OpPtrToInt, V, T.getI64());
    return convert(I, DestTy, Line);
  }
  if (SrcTy->isInt() && DestTy->isPointer()) {
    Value *I = convert(V, T.getI64(), Line);
    return B.createCast(Instruction::OpIntToPtr, I, DestTy);
  }

  return error(Line, "cannot convert '" + SrcTy->getName() + "' to '" +
                         DestTy->getName() + "'");
}

Value *IRGenerator::toBool(Value *V, unsigned Line) {
  Type *Ty = V->getType();
  if (Ty->isInt()) {
    if (cast<IntType>(Ty)->getBits() == 1)
      return V;
    return B.createCmp(Instruction::OpICmpNE, V,
                       Ctx.getConstantInt(cast<IntType>(Ty), 0));
  }
  if (Ty->isFloat())
    return B.createCmp(Instruction::OpFCmpNE, V,
                       Ctx.getConstantFloat(cast<FloatType>(Ty), 0.0));
  if (Ty->isPointer())
    return B.createCmp(Instruction::OpICmpNE, V,
                       Ctx.getNullPtr(cast<PointerType>(Ty)));
  errorNoValue(Line, "condition is not scalar");
  return Ctx.getBool(false);
}

Type *IRGenerator::commonType(Type *A, Type *B_) {
  TypeContext &T = Ctx.getTypes();
  if (A->isFloat() || B_->isFloat()) {
    unsigned Bits = 32;
    if (A->isFloat())
      Bits = std::max(Bits, cast<FloatType>(A)->getBits());
    if (B_->isFloat())
      Bits = std::max(Bits, cast<FloatType>(B_)->getBits());
    // Mixing an i64 with f32 promotes to f64, like C's usual conversions
    // promote long/float mixes through double on LP64.
    if ((A->isInt() && cast<IntType>(A)->getBits() == 64) ||
        (B_->isInt() && cast<IntType>(B_)->getBits() == 64))
      Bits = 64;
    return T.getFloatType(Bits);
  }
  unsigned Bits = 32; // C integer promotion: at least int.
  if (A->isInt())
    Bits = std::max(Bits, cast<IntType>(A)->getBits());
  if (B_->isInt())
    Bits = std::max(Bits, cast<IntType>(B_)->getBits());
  return T.getIntType(Bits);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

IRGenerator::VarInfo *IRGenerator::lookupVar(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

Value *IRGenerator::genAddr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::EK_VarRef: {
    const auto *V = cast<VarRefExpr>(&E);
    if (VarInfo *Info = lookupVar(V->Name))
      return Info->Addr;
    if (GlobalVariable *G = M->lookupGlobal(V->Name))
      return G;
    errorNoValue(E.Line, "use of undeclared identifier '" + V->Name + "'");
    return nullptr;
  }
  case Expr::EK_Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    if (U->Op == UnaryExpr::UO_Deref) {
      Value *P = genExpr(*U->Sub);
      if (!P->getType()->isPointer()) {
        errorNoValue(E.Line, "cannot dereference a non-pointer");
        return nullptr;
      }
      return P;
    }
    errorNoValue(E.Line, "expression is not assignable");
    return nullptr;
  }
  case Expr::EK_Index: {
    const auto *I = cast<IndexExpr>(&E);
    Value *Base = genExpr(*I->Base); // Decays arrays to pointers.
    if (!Base->getType()->isPointer()) {
      errorNoValue(E.Line, "subscripted value is not a pointer or array");
      return nullptr;
    }
    Value *Idx = convert(genExpr(*I->Idx), Ctx.getTypes().getI64(), E.Line);
    return B.createIndexAddr(Base, Idx);
  }
  case Expr::EK_Member: {
    const auto *Mem = cast<MemberExpr>(&E);
    Value *BaseAddr = nullptr;
    if (Mem->IsArrow) {
      BaseAddr = genExpr(*Mem->Base);
    } else {
      BaseAddr = genAddr(*Mem->Base);
      if (!BaseAddr)
        return nullptr;
    }
    if (!BaseAddr->getType()->isPointer()) {
      errorNoValue(E.Line, "member access on a non-pointer");
      return nullptr;
    }
    Type *Pointee = cast<PointerType>(BaseAddr->getType())->getPointee();
    auto *Rec = dyn_cast<RecordType>(Pointee);
    if (!Rec || Rec->isOpaque()) {
      errorNoValue(E.Line, "member access on a non-struct value");
      return nullptr;
    }
    const Field *F = Rec->findField(Mem->Name);
    if (!F) {
      errorNoValue(E.Line, "no field named '" + Mem->Name + "' in 'struct " +
                               Rec->getRecordName() + "'");
      return nullptr;
    }
    return B.createFieldAddr(BaseAddr, Rec, F->Index, Mem->Name);
  }
  default:
    errorNoValue(E.Line, "expression is not assignable");
    return nullptr;
  }
}

Value *IRGenerator::genExpr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::EK_IntLit: {
    int64_t V = cast<IntLitExpr>(&E)->Value;
    TypeContext &T = Ctx.getTypes();
    if (V >= INT32_MIN && V <= INT32_MAX)
      return Ctx.getConstantInt(T.getI32(), V);
    return Ctx.getInt64(V);
  }
  case Expr::EK_FloatLit:
    return Ctx.getConstantFloat(Ctx.getTypes().getF64(),
                                cast<FloatLitExpr>(&E)->Value);
  case Expr::EK_VarRef: {
    const auto *V = cast<VarRefExpr>(&E);
    if (VarInfo *Info = lookupVar(V->Name)) {
      if (Info->ValueTy->isArray())
        return decayIfArray(Info->Addr, E.Line);
      return B.createLoad(Info->Addr, V->Name);
    }
    if (GlobalVariable *G = M->lookupGlobal(V->Name)) {
      if (G->getValueType()->isArray())
        return decayIfArray(G, E.Line);
      return B.createLoad(G, V->Name);
    }
    if (Function *F = M->lookupFunction(V->Name))
      return F; // Function designators decay to function pointers.
    return error(E.Line, "use of undeclared identifier '" + V->Name + "'");
  }
  case Expr::EK_Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    switch (U->Op) {
    case UnaryExpr::UO_Neg: {
      Value *V = genExpr(*U->Sub);
      if (auto *CI = dyn_cast<ConstantInt>(V))
        return Ctx.getConstantInt(cast<IntType>(CI->getType()),
                                  -CI->getValue());
      if (auto *CF = dyn_cast<ConstantFloat>(V))
        return Ctx.getConstantFloat(cast<FloatType>(CF->getType()),
                                    -CF->getValue());
      if (V->getType()->isFloat())
        return B.createBinary(
            Instruction::OpFSub,
            Ctx.getConstantFloat(cast<FloatType>(V->getType()), 0.0), V);
      if (V->getType()->isInt()) {
        Type *Ty = commonType(V->getType(), V->getType());
        V = convert(V, Ty, E.Line);
        return B.createBinary(Instruction::OpSub,
                              Ctx.getConstantInt(cast<IntType>(Ty), 0), V);
      }
      return error(E.Line, "cannot negate this operand");
    }
    case UnaryExpr::UO_LogicalNot: {
      Value *C = toBool(genExpr(*U->Sub), E.Line);
      return B.createBinary(Instruction::OpXor, C, Ctx.getBool(true));
    }
    case UnaryExpr::UO_BitNot: {
      Value *V = genExpr(*U->Sub);
      if (!V->getType()->isInt())
        return error(E.Line, "'~' requires an integer operand");
      Type *Ty = commonType(V->getType(), V->getType());
      V = convert(V, Ty, E.Line);
      return B.createBinary(Instruction::OpXor, V,
                            Ctx.getConstantInt(cast<IntType>(Ty), -1));
    }
    case UnaryExpr::UO_Deref: {
      Value *P = genExpr(*U->Sub);
      if (!P->getType()->isPointer())
        return error(E.Line, "cannot dereference a non-pointer");
      return B.createLoad(P);
    }
    case UnaryExpr::UO_AddrOf: {
      // &function yields the function pointer directly.
      if (const auto *VR = dyn_cast<VarRefExpr>(U->Sub.get())) {
        if (!lookupVar(VR->Name) && !M->lookupGlobal(VR->Name))
          if (Function *F = M->lookupFunction(VR->Name))
            return F;
      }
      Value *Addr = genAddr(*U->Sub);
      return Addr ? Addr : Ctx.getInt64(0);
    }
    }
    SLO_UNREACHABLE("unary operator not handled");
  }
  case Expr::EK_Binary:
    return genBinary(*cast<BinaryExpr>(&E));
  case Expr::EK_Assign:
    return genAssign(*cast<AssignExpr>(&E));
  case Expr::EK_IncDec:
    return genIncDec(*cast<IncDecExpr>(&E));
  case Expr::EK_Cond:
    return genCond(*cast<CondExpr>(&E));
  case Expr::EK_Call:
    return genCall(*cast<CallExpr>(&E));
  case Expr::EK_Index:
  case Expr::EK_Member: {
    Value *Addr = genAddr(E);
    if (!Addr)
      return Ctx.getInt64(0);
    // An aggregate-typed member (array field) decays rather than loads.
    Type *Pointee = cast<PointerType>(Addr->getType())->getPointee();
    if (Pointee->isArray())
      return decayIfArray(Addr, E.Line);
    if (Pointee->isRecord())
      return error(E.Line, "struct values cannot be used as expressions; "
                           "take a field or an address");
    return B.createLoad(Addr);
  }
  case Expr::EK_Cast: {
    const auto *C = cast<CastExpr>(&E);
    Value *V = genExpr(*C->Sub);
    Type *DestTy = resolveType(C->Ty, E.Line);
    if (DestTy->isVoid())
      return V; // (void)expr discards the value.
    return convert(V, DestTy, E.Line);
  }
  case Expr::EK_SizeofType: {
    const auto *S = cast<SizeofTypeExpr>(&E);
    Type *Ty = resolveType(S->Ty, E.Line);
    if (Ty->isVoid())
      return error(E.Line, "sizeof(void) is invalid");
    if (auto *Rec = dyn_cast<RecordType>(Ty)) {
      if (Rec->isOpaque())
        return error(E.Line, "sizeof of incomplete type 'struct " +
                                 Rec->getRecordName() + "'");
      return Ctx.getSizeOf(Rec); // Attributed constant.
    }
    return Ctx.getInt64(static_cast<int64_t>(Ty->getSize()));
  }
  }
  SLO_UNREACHABLE("expression kind not handled");
}

Value *IRGenerator::genShortCircuit(const BinaryExpr &E) {
  bool IsAnd = E.Op == BinaryExpr::BO_LAnd;
  // Lower with a temporary slot rather than SSA phis (the IR has none).
  AllocaInst *Tmp = nullptr;
  {
    // Put the slot in the entry block so it dominates all uses.
    BasicBlock *Save = B.getInsertBlock();
    BasicBlock *Entry = CurFn->getEntry();
    if (Entry->getTerminator())
      B.setInsertBefore(Entry->getTerminator());
    else
      B.setInsertPoint(Entry);
    Tmp = B.createAlloca(Ctx.getTypes().getI1(), IsAnd ? "and.tmp" : "or.tmp");
    B.setInsertPoint(Save);
  }
  B.createStore(Ctx.getBool(!IsAnd), Tmp);
  Value *C1 = toBool(genExpr(*E.LHS), E.Line);
  BasicBlock *RhsBB = newBlock(IsAnd ? "and.rhs" : "or.rhs");
  BasicBlock *EndBB = newBlock(IsAnd ? "and.end" : "or.end");
  if (IsAnd)
    B.createCondBr(C1, RhsBB, EndBB);
  else
    B.createCondBr(C1, EndBB, RhsBB);
  startBlock(RhsBB);
  Value *C2 = toBool(genExpr(*E.RHS), E.Line);
  B.createStore(C2, Tmp);
  B.createBr(EndBB);
  startBlock(EndBB);
  return B.createLoad(Tmp);
}

Value *IRGenerator::genBinary(const BinaryExpr &E) {
  if (E.Op == BinaryExpr::BO_LAnd || E.Op == BinaryExpr::BO_LOr)
    return genShortCircuit(E);

  Value *L = genExpr(*E.LHS);
  Value *R = genExpr(*E.RHS);

  // Pointer arithmetic and pointer comparisons.
  if (L->getType()->isPointer() || R->getType()->isPointer()) {
    bool LPtr = L->getType()->isPointer();
    bool RPtr = R->getType()->isPointer();
    switch (E.Op) {
    case BinaryExpr::BO_Add:
    case BinaryExpr::BO_Sub: {
      if (LPtr && !RPtr) {
        Value *Idx = convert(R, Ctx.getTypes().getI64(), E.Line);
        if (E.Op == BinaryExpr::BO_Sub)
          Idx = B.createBinary(Instruction::OpSub, Ctx.getInt64(0), Idx);
        return B.createIndexAddr(L, Idx);
      }
      if (!LPtr && RPtr && E.Op == BinaryExpr::BO_Add) {
        Value *Idx = convert(L, Ctx.getTypes().getI64(), E.Line);
        return B.createIndexAddr(R, Idx);
      }
      return error(E.Line, "unsupported pointer arithmetic");
    }
    case BinaryExpr::BO_EQ:
    case BinaryExpr::BO_NE:
    case BinaryExpr::BO_LT:
    case BinaryExpr::BO_LE:
    case BinaryExpr::BO_GT:
    case BinaryExpr::BO_GE: {
      // Compare as addresses; coerce integer 0 to null.
      if (!LPtr)
        L = convert(L, R->getType(), E.Line);
      if (!RPtr)
        R = convert(R, L->getType(), E.Line);
      if (L->getType() != R->getType())
        R = convert(R, L->getType(), E.Line);
      Instruction::Opcode Op;
      switch (E.Op) {
      case BinaryExpr::BO_EQ:
        Op = Instruction::OpICmpEQ;
        break;
      case BinaryExpr::BO_NE:
        Op = Instruction::OpICmpNE;
        break;
      case BinaryExpr::BO_LT:
        Op = Instruction::OpICmpSLT;
        break;
      case BinaryExpr::BO_LE:
        Op = Instruction::OpICmpSLE;
        break;
      case BinaryExpr::BO_GT:
        Op = Instruction::OpICmpSGT;
        break;
      default:
        Op = Instruction::OpICmpSGE;
        break;
      }
      return B.createCmp(Op, L, R);
    }
    default:
      return error(E.Line, "invalid operands to binary operator");
    }
  }

  Type *Common = commonType(L->getType(), R->getType());
  L = convert(L, Common, E.Line);
  R = convert(R, Common, E.Line);
  bool IsFloat = Common->isFloat();

  switch (E.Op) {
  case BinaryExpr::BO_Add:
    return B.createBinary(IsFloat ? Instruction::OpFAdd : Instruction::OpAdd,
                          L, R);
  case BinaryExpr::BO_Sub:
    return B.createBinary(IsFloat ? Instruction::OpFSub : Instruction::OpSub,
                          L, R);
  case BinaryExpr::BO_Mul:
    return B.createBinary(IsFloat ? Instruction::OpFMul : Instruction::OpMul,
                          L, R);
  case BinaryExpr::BO_Div:
    return B.createBinary(IsFloat ? Instruction::OpFDiv : Instruction::OpSDiv,
                          L, R);
  case BinaryExpr::BO_Rem:
    if (IsFloat)
      return error(E.Line, "'%' requires integer operands");
    return B.createBinary(Instruction::OpSRem, L, R);
  case BinaryExpr::BO_And:
  case BinaryExpr::BO_Or:
  case BinaryExpr::BO_Xor:
  case BinaryExpr::BO_Shl:
  case BinaryExpr::BO_Shr: {
    if (IsFloat)
      return error(E.Line, "bitwise operator requires integer operands");
    Instruction::Opcode Op;
    switch (E.Op) {
    case BinaryExpr::BO_And:
      Op = Instruction::OpAnd;
      break;
    case BinaryExpr::BO_Or:
      Op = Instruction::OpOr;
      break;
    case BinaryExpr::BO_Xor:
      Op = Instruction::OpXor;
      break;
    case BinaryExpr::BO_Shl:
      Op = Instruction::OpShl;
      break;
    default:
      Op = Instruction::OpAShr;
      break;
    }
    return B.createBinary(Op, L, R);
  }
  case BinaryExpr::BO_EQ:
  case BinaryExpr::BO_NE:
  case BinaryExpr::BO_LT:
  case BinaryExpr::BO_LE:
  case BinaryExpr::BO_GT:
  case BinaryExpr::BO_GE: {
    Instruction::Opcode Op;
    switch (E.Op) {
    case BinaryExpr::BO_EQ:
      Op = IsFloat ? Instruction::OpFCmpEQ : Instruction::OpICmpEQ;
      break;
    case BinaryExpr::BO_NE:
      Op = IsFloat ? Instruction::OpFCmpNE : Instruction::OpICmpNE;
      break;
    case BinaryExpr::BO_LT:
      Op = IsFloat ? Instruction::OpFCmpLT : Instruction::OpICmpSLT;
      break;
    case BinaryExpr::BO_LE:
      Op = IsFloat ? Instruction::OpFCmpLE : Instruction::OpICmpSLE;
      break;
    case BinaryExpr::BO_GT:
      Op = IsFloat ? Instruction::OpFCmpGT : Instruction::OpICmpSGT;
      break;
    default:
      Op = IsFloat ? Instruction::OpFCmpGE : Instruction::OpICmpSGE;
      break;
    }
    return B.createCmp(Op, L, R);
  }
  case BinaryExpr::BO_LAnd:
  case BinaryExpr::BO_LOr:
    break;
  }
  SLO_UNREACHABLE("binary operator not handled");
}

Value *IRGenerator::genAssign(const AssignExpr &E) {
  Value *Addr = genAddr(*E.LHS);
  if (!Addr)
    return Ctx.getInt64(0);
  Type *ValueTy = cast<PointerType>(Addr->getType())->getPointee();
  Value *RHS = genExpr(*E.RHS);

  if (E.Op != AssignExpr::AO_Assign) {
    Value *Old = B.createLoad(Addr);
    if (Old->getType()->isPointer()) {
      // p += n / p -= n.
      Value *Idx = convert(RHS, Ctx.getTypes().getI64(), E.Line);
      if (E.Op == AssignExpr::AO_Sub)
        Idx = B.createBinary(Instruction::OpSub, Ctx.getInt64(0), Idx);
      else if (E.Op != AssignExpr::AO_Add)
        return error(E.Line, "invalid compound assignment to a pointer");
      RHS = B.createIndexAddr(Old, Idx);
    } else {
      Type *Common = commonType(Old->getType(), RHS->getType());
      Value *L = convert(Old, Common, E.Line);
      Value *R = convert(RHS, Common, E.Line);
      bool IsFloat = Common->isFloat();
      Instruction::Opcode Op;
      switch (E.Op) {
      case AssignExpr::AO_Add:
        Op = IsFloat ? Instruction::OpFAdd : Instruction::OpAdd;
        break;
      case AssignExpr::AO_Sub:
        Op = IsFloat ? Instruction::OpFSub : Instruction::OpSub;
        break;
      case AssignExpr::AO_Mul:
        Op = IsFloat ? Instruction::OpFMul : Instruction::OpMul;
        break;
      default:
        Op = IsFloat ? Instruction::OpFDiv : Instruction::OpSDiv;
        break;
      }
      RHS = B.createBinary(Op, L, R);
    }
  }

  Value *Converted = convert(RHS, ValueTy, E.Line);
  B.createStore(Converted, Addr);
  return Converted;
}

Value *IRGenerator::genIncDec(const IncDecExpr &E) {
  Value *Addr = genAddr(*E.Sub);
  if (!Addr)
    return Ctx.getInt64(0);
  Value *Old = B.createLoad(Addr);
  Value *New = nullptr;
  if (Old->getType()->isPointer()) {
    New = B.createIndexAddr(Old, Ctx.getInt64(E.IsInc ? 1 : -1));
  } else if (Old->getType()->isFloat()) {
    auto *FT = cast<FloatType>(Old->getType());
    New = B.createBinary(E.IsInc ? Instruction::OpFAdd : Instruction::OpFSub,
                         Old, Ctx.getConstantFloat(FT, 1.0));
  } else {
    auto *IT = cast<IntType>(Old->getType());
    New = B.createBinary(E.IsInc ? Instruction::OpAdd : Instruction::OpSub,
                         Old, Ctx.getConstantInt(IT, 1));
  }
  B.createStore(New, Addr);
  return E.IsPrefix ? New : Old;
}

Value *IRGenerator::genCond(const CondExpr &E) {
  Value *C = toBool(genExpr(*E.Cond), E.Line);
  BasicBlock *TrueBB = newBlock("sel.true");
  BasicBlock *FalseBB = newBlock("sel.false");
  BasicBlock *EndBB = newBlock("sel.end");
  B.createCondBr(C, TrueBB, FalseBB);

  // Evaluate both arms into a temporary slot (no phis in this IR). The
  // result type is computed by a first pass over the arm types; to keep
  // things simple we require both arms to be scalars.
  startBlock(TrueBB);
  Value *TV = genExpr(*E.TrueE);
  BasicBlock *TrueEnd = B.getInsertBlock();

  startBlock(FalseBB);
  Value *FV = genExpr(*E.FalseE);
  BasicBlock *FalseEnd = B.getInsertBlock();

  Type *ResultTy = nullptr;
  if (TV->getType()->isPointer() && FV->getType()->isPointer())
    ResultTy = TV->getType();
  else if (TV->getType()->isPointer() || FV->getType()->isPointer())
    ResultTy = TV->getType()->isPointer() ? TV->getType() : FV->getType();
  else
    ResultTy = commonType(TV->getType(), FV->getType());

  AllocaInst *Tmp = nullptr;
  {
    BasicBlock *Save = B.getInsertBlock();
    BasicBlock *Entry = CurFn->getEntry();
    if (Entry->getTerminator())
      B.setInsertBefore(Entry->getTerminator());
    else
      B.setInsertPoint(Entry);
    Tmp = B.createAlloca(ResultTy, "sel.tmp");
    B.setInsertPoint(Save);
  }

  B.setInsertPoint(TrueEnd);
  B.createStore(convert(TV, ResultTy, E.Line), Tmp);
  B.createBr(EndBB);
  B.setInsertPoint(FalseEnd);
  B.createStore(convert(FV, ResultTy, E.Line), Tmp);
  B.createBr(EndBB);

  startBlock(EndBB);
  return B.createLoad(Tmp);
}

Value *IRGenerator::genBuiltinCall(const CallExpr &E,
                                   const std::string &Name) {
  TypeContext &T = Ctx.getTypes();
  auto Arg = [&](size_t I) { return genExpr(*E.Args[I]); };
  auto ArgI64 = [&](size_t I) {
    return convert(Arg(I), T.getI64(), E.Line);
  };
  auto ArgPtr = [&](size_t I) {
    Value *V = Arg(I);
    if (!V->getType()->isPointer())
      return static_cast<Value *>(nullptr);
    return V;
  };
  auto WrongArgs = [&](const char *Expected) {
    return error(E.Line,
                 formatString("'%s' expects %s", Name.c_str(), Expected));
  };

  if (Name == "malloc") {
    if (E.Args.size() != 1)
      return WrongArgs("1 argument");
    return B.createMalloc(ArgI64(0), "m");
  }
  if (Name == "calloc") {
    if (E.Args.size() != 2)
      return WrongArgs("2 arguments");
    Value *N = ArgI64(0);
    return B.createCalloc(N, ArgI64(1), "c");
  }
  if (Name == "realloc") {
    if (E.Args.size() != 2)
      return WrongArgs("2 arguments");
    Value *P = ArgPtr(0);
    if (!P)
      return WrongArgs("a pointer first argument");
    return B.createRealloc(P, ArgI64(1), "r");
  }
  if (Name == "free") {
    if (E.Args.size() != 1)
      return WrongArgs("1 argument");
    Value *P = ArgPtr(0);
    if (!P)
      return WrongArgs("a pointer argument");
    B.createFree(P);
    return Ctx.getInt64(0);
  }
  if (Name == "memset") {
    if (E.Args.size() != 3)
      return WrongArgs("3 arguments");
    Value *P = ArgPtr(0);
    if (!P)
      return WrongArgs("a pointer first argument");
    Value *V = ArgI64(1);
    B.createMemset(P, V, ArgI64(2));
    return Ctx.getInt64(0);
  }
  if (Name == "memcpy") {
    if (E.Args.size() != 3)
      return WrongArgs("3 arguments");
    Value *D = ArgPtr(0);
    Value *S = ArgPtr(1);
    if (!D || !S)
      return WrongArgs("pointer arguments");
    B.createMemcpy(D, S, ArgI64(2));
    return Ctx.getInt64(0);
  }
  SLO_UNREACHABLE("not a builtin");
}

static bool isBuiltinName(const std::string &Name) {
  return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
         Name == "free" || Name == "memset" || Name == "memcpy";
}

Value *IRGenerator::genCall(const CallExpr &E) {
  // Direct calls and builtins are recognized through the callee name when
  // it is not shadowed by a variable.
  if (const auto *VR = dyn_cast<VarRefExpr>(E.Callee.get())) {
    if (!lookupVar(VR->Name)) {
      if (isBuiltinName(VR->Name))
        return genBuiltinCall(E, VR->Name);
      if (Function *F = M->lookupFunction(VR->Name)) {
        FunctionType *FnTy = F->getFunctionType();
        if (E.Args.size() != FnTy->getNumParams())
          return error(E.Line, "wrong number of arguments to '" + VR->Name +
                                   "'");
        std::vector<Value *> Args;
        for (size_t I = 0; I < E.Args.size(); ++I)
          Args.push_back(convert(genExpr(*E.Args[I]),
                                 FnTy->getParamType(static_cast<unsigned>(I)),
                                 E.Line));
        Value *Result = B.createCall(F, Args, VR->Name + ".res");
        return Result->getType()->isVoid() ? Ctx.getInt64(0) : Result;
      }
      if (!M->lookupGlobal(VR->Name))
        return error(E.Line, "call to undeclared function '" + VR->Name +
                                 "'");
    }
  }

  // Indirect call through a function-pointer value.
  Value *Callee = genExpr(*E.Callee);
  auto *PT = dyn_cast<PointerType>(Callee->getType());
  if (!PT || !PT->getPointee()->isFunction())
    return error(E.Line, "called object is not a function pointer");
  auto *FnTy = cast<FunctionType>(PT->getPointee());
  if (E.Args.size() != FnTy->getNumParams())
    return error(E.Line, "wrong number of arguments in indirect call");
  std::vector<Value *> Args;
  for (size_t I = 0; I < E.Args.size(); ++I)
    Args.push_back(convert(genExpr(*E.Args[I]),
                           FnTy->getParamType(static_cast<unsigned>(I)),
                           E.Line));
  Value *Result = B.createIndirectCall(Callee, Args, "icall.res");
  return Result->getType()->isVoid() ? Ctx.getInt64(0) : Result;
}
