//===- frontend/Frontend.h - MiniC compilation entry points ----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call entry points: source text in, IR module out. The multi-source
/// variant mirrors the paper's -ipo flow (per-TU front end, then link).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FRONTEND_FRONTEND_H
#define SLO_FRONTEND_FRONTEND_H

#include <memory>
#include <string>
#include <vector>

namespace slo {

class IRContext;
class Module;

/// Compiles one MiniC translation unit. Returns null on error, with
/// diagnostics appended to \p Diags.
std::unique_ptr<Module> compileMiniC(IRContext &Ctx,
                                     const std::string &ModuleName,
                                     const std::string &Source,
                                     std::vector<std::string> &Diags);

/// Compiles each source as a translation unit and links the results into
/// one whole-program module. Returns null on any error.
std::unique_ptr<Module>
compileProgram(IRContext &Ctx, const std::string &ProgramName,
               const std::vector<std::string> &Sources,
               std::vector<std::string> &Diags);

/// Like compileProgram, but aborts with the first diagnostic. Convenience
/// for tests and benchmark harnesses compiling known-good workloads.
std::unique_ptr<Module>
compileProgramOrDie(IRContext &Ctx, const std::string &ProgramName,
                    const std::vector<std::string> &Sources);

} // namespace slo

#endif // SLO_FRONTEND_FRONTEND_H
