//===- frontend/Parser.h - MiniC parser ------------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC producing a TranslationUnit AST.
/// MiniC has no typedefs, so the usual C ambiguity between casts and
/// parenthesized expressions is resolved with one token of lookahead
/// (types always start with a type keyword).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FRONTEND_PARSER_H
#define SLO_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace slo {

/// Parses one translation unit.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<std::string> &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  /// Parses the whole token stream. Returns null when any diagnostic was
  /// emitted.
  std::unique_ptr<TranslationUnit> parse();

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokKind K) const { return peek().is(K); }
  bool match(TokKind K);
  bool expect(TokKind K, const char *Context);
  void error(const std::string &Msg);
  void synchronizeTopLevel();

  bool atTypeStart() const;

  // Grammar productions.
  void parseTopLevel(TranslationUnit &TU);
  void parseStructDecl(TranslationUnit &TU);
  TypeSpec parseTypeSpec();
  TypeSpec parseBaseType();
  void parseFuncRest(TranslationUnit &TU, TypeSpec Ret, std::string Name,
                     bool IsExtern, unsigned Line);

  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();

  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinaryRHS(int MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  std::vector<std::string> &Diags;
  size_t Pos = 0;
  bool HadError = false;
};

} // namespace slo

#endif // SLO_FRONTEND_PARSER_H
