//===- frontend/Lexer.h - MiniC lexer --------------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Supports //- and /**/-style comments,
/// decimal and hexadecimal integers, and floating point literals.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FRONTEND_LEXER_H
#define SLO_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string>
#include <vector>

namespace slo {

/// Tokenizes one translation unit.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Tokenizes the whole input. On a lexical error, \p Error is set and an
  /// Eof-terminated prefix is returned.
  std::vector<Token> lexAll(std::string &Error);

private:
  Token next(std::string &Error);
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  void skipWhitespaceAndComments(std::string &Error);

  Token make(TokKind K) const;

  std::string Src;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  unsigned TokLine = 1;
  unsigned TokCol = 1;
};

} // namespace slo

#endif // SLO_FRONTEND_LEXER_H
