//===- frontend/Ast.h - MiniC abstract syntax tree -------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for MiniC. The AST is deliberately small: the
/// language only has to be rich enough to express the paper's workloads
/// (pointer-chasing kernels over dynamically allocated arrays of structs,
/// with the full zoo of legality-relevant constructs: casts, address-of,
/// library calls, indirect calls, memset/memcpy, nested records).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FRONTEND_AST_H
#define SLO_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace slo {

struct TypeSpec;

/// Function-pointer prototype used inside TypeSpec.
struct FnProto;

/// A parsed type: a base kind, an optional struct name, and a pointer
/// depth. Function-pointer types carry a prototype.
struct TypeSpec {
  enum BaseKind {
    BK_Void,
    BK_Char,
    BK_Short,
    BK_Int,
    BK_Long,
    BK_Float,
    BK_Double,
    BK_Struct,
    BK_FnPtr,
  };

  BaseKind Base = BK_Int;
  std::string StructName; // For BK_Struct.
  unsigned PtrDepth = 0;
  std::shared_ptr<FnProto> Proto; // For BK_FnPtr.
};

struct FnProto {
  TypeSpec Ret;
  std::vector<TypeSpec> Params;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr {
  enum ExprKind {
    EK_IntLit,
    EK_FloatLit,
    EK_VarRef,
    EK_Unary,
    EK_Binary,
    EK_Assign,
    EK_IncDec,
    EK_Cond,
    EK_Call,
    EK_Index,
    EK_Member,
    EK_Cast,
    EK_SizeofType,
  };

  explicit Expr(ExprKind K, unsigned Line) : Kind(K), Line(Line) {}
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }

  ExprKind Kind;
  unsigned Line;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr(int64_t V, unsigned Line) : Expr(EK_IntLit, Line), Value(V) {}
  int64_t Value;
  static bool classof(const Expr *E) { return E->Kind == EK_IntLit; }
};

struct FloatLitExpr : Expr {
  FloatLitExpr(double V, unsigned Line) : Expr(EK_FloatLit, Line), Value(V) {}
  double Value;
  static bool classof(const Expr *E) { return E->Kind == EK_FloatLit; }
};

struct VarRefExpr : Expr {
  VarRefExpr(std::string Name, unsigned Line)
      : Expr(EK_VarRef, Line), Name(std::move(Name)) {}
  std::string Name;
  static bool classof(const Expr *E) { return E->Kind == EK_VarRef; }
};

struct UnaryExpr : Expr {
  enum UnaryOp { UO_Neg, UO_LogicalNot, UO_BitNot, UO_Deref, UO_AddrOf };
  UnaryExpr(UnaryOp Op, ExprPtr Sub, unsigned Line)
      : Expr(EK_Unary, Line), Op(Op), Sub(std::move(Sub)) {}
  UnaryOp Op;
  ExprPtr Sub;
  static bool classof(const Expr *E) { return E->Kind == EK_Unary; }
};

struct BinaryExpr : Expr {
  enum BinOp {
    BO_Add,
    BO_Sub,
    BO_Mul,
    BO_Div,
    BO_Rem,
    BO_And,
    BO_Or,
    BO_Xor,
    BO_Shl,
    BO_Shr,
    BO_EQ,
    BO_NE,
    BO_LT,
    BO_LE,
    BO_GT,
    BO_GE,
    BO_LAnd,
    BO_LOr,
  };
  BinaryExpr(BinOp Op, ExprPtr L, ExprPtr R, unsigned Line)
      : Expr(EK_Binary, Line), Op(Op), LHS(std::move(L)), RHS(std::move(R)) {}
  BinOp Op;
  ExprPtr LHS, RHS;
  static bool classof(const Expr *E) { return E->Kind == EK_Binary; }
};

struct AssignExpr : Expr {
  enum AssignOp { AO_Assign, AO_Add, AO_Sub, AO_Mul, AO_Div };
  AssignExpr(AssignOp Op, ExprPtr L, ExprPtr R, unsigned Line)
      : Expr(EK_Assign, Line), Op(Op), LHS(std::move(L)), RHS(std::move(R)) {}
  AssignOp Op;
  ExprPtr LHS, RHS;
  static bool classof(const Expr *E) { return E->Kind == EK_Assign; }
};

struct IncDecExpr : Expr {
  IncDecExpr(bool IsInc, bool IsPrefix, ExprPtr Sub, unsigned Line)
      : Expr(EK_IncDec, Line), IsInc(IsInc), IsPrefix(IsPrefix),
        Sub(std::move(Sub)) {}
  bool IsInc;
  bool IsPrefix;
  ExprPtr Sub;
  static bool classof(const Expr *E) { return E->Kind == EK_IncDec; }
};

struct CondExpr : Expr {
  CondExpr(ExprPtr C, ExprPtr T, ExprPtr F, unsigned Line)
      : Expr(EK_Cond, Line), Cond(std::move(C)), TrueE(std::move(T)),
        FalseE(std::move(F)) {}
  ExprPtr Cond, TrueE, FalseE;
  static bool classof(const Expr *E) { return E->Kind == EK_Cond; }
};

struct CallExpr : Expr {
  CallExpr(ExprPtr Callee, std::vector<ExprPtr> Args, unsigned Line)
      : Expr(EK_Call, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
  static bool classof(const Expr *E) { return E->Kind == EK_Call; }
};

struct IndexExpr : Expr {
  IndexExpr(ExprPtr Base, ExprPtr Idx, unsigned Line)
      : Expr(EK_Index, Line), Base(std::move(Base)), Idx(std::move(Idx)) {}
  ExprPtr Base, Idx;
  static bool classof(const Expr *E) { return E->Kind == EK_Index; }
};

struct MemberExpr : Expr {
  MemberExpr(ExprPtr Base, std::string Name, bool IsArrow, unsigned Line)
      : Expr(EK_Member, Line), Base(std::move(Base)), Name(std::move(Name)),
        IsArrow(IsArrow) {}
  ExprPtr Base;
  std::string Name;
  bool IsArrow;
  static bool classof(const Expr *E) { return E->Kind == EK_Member; }
};

struct CastExpr : Expr {
  CastExpr(TypeSpec Ty, ExprPtr Sub, unsigned Line)
      : Expr(EK_Cast, Line), Ty(std::move(Ty)), Sub(std::move(Sub)) {}
  TypeSpec Ty;
  ExprPtr Sub;
  static bool classof(const Expr *E) { return E->Kind == EK_Cast; }
};

struct SizeofTypeExpr : Expr {
  SizeofTypeExpr(TypeSpec Ty, unsigned Line)
      : Expr(EK_SizeofType, Line), Ty(std::move(Ty)) {}
  TypeSpec Ty;
  static bool classof(const Expr *E) { return E->Kind == EK_SizeofType; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt {
  enum StmtKind {
    SK_Block,
    SK_Expr,
    SK_VarDecl,
    SK_If,
    SK_While,
    SK_For,
    SK_Return,
    SK_Break,
    SK_Continue,
    SK_Empty,
  };

  explicit Stmt(StmtKind K, unsigned Line) : Kind(K), Line(Line) {}
  virtual ~Stmt() = default;

  StmtKind Kind;
  unsigned Line;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  explicit BlockStmt(unsigned Line) : Stmt(SK_Block, Line) {}
  std::vector<StmtPtr> Stmts;
  static bool classof(const Stmt *S) { return S->Kind == SK_Block; }
};

struct ExprStmt : Stmt {
  ExprStmt(ExprPtr E, unsigned Line) : Stmt(SK_Expr, Line), E(std::move(E)) {}
  ExprPtr E;
  static bool classof(const Stmt *S) { return S->Kind == SK_Expr; }
};

struct VarDeclStmt : Stmt {
  VarDeclStmt(TypeSpec Ty, std::string Name, unsigned Line)
      : Stmt(SK_VarDecl, Line), Ty(std::move(Ty)), Name(std::move(Name)) {}
  TypeSpec Ty;
  std::string Name;
  /// 0 means "not an array".
  uint64_t ArraySize = 0;
  ExprPtr Init; // May be null.
  static bool classof(const Stmt *S) { return S->Kind == SK_VarDecl; }
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr C, StmtPtr T, StmtPtr E, unsigned Line)
      : Stmt(SK_If, Line), Cond(std::move(C)), Then(std::move(T)),
        Else(std::move(E)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
  static bool classof(const Stmt *S) { return S->Kind == SK_If; }
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr C, StmtPtr B, unsigned Line)
      : Stmt(SK_While, Line), Cond(std::move(C)), Body(std::move(B)) {}
  ExprPtr Cond;
  StmtPtr Body;
  static bool classof(const Stmt *S) { return S->Kind == SK_While; }
};

struct ForStmt : Stmt {
  explicit ForStmt(unsigned Line) : Stmt(SK_For, Line) {}
  StmtPtr Init;  // VarDecl or Expr statement; may be null.
  ExprPtr Cond;  // May be null (infinite loop).
  ExprPtr Step;  // May be null.
  StmtPtr Body;
  static bool classof(const Stmt *S) { return S->Kind == SK_For; }
};

struct ReturnStmt : Stmt {
  ReturnStmt(ExprPtr E, unsigned Line)
      : Stmt(SK_Return, Line), E(std::move(E)) {}
  ExprPtr E; // May be null.
  static bool classof(const Stmt *S) { return S->Kind == SK_Return; }
};

struct BreakStmt : Stmt {
  explicit BreakStmt(unsigned Line) : Stmt(SK_Break, Line) {}
  static bool classof(const Stmt *S) { return S->Kind == SK_Break; }
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(unsigned Line) : Stmt(SK_Continue, Line) {}
  static bool classof(const Stmt *S) { return S->Kind == SK_Continue; }
};

struct EmptyStmt : Stmt {
  explicit EmptyStmt(unsigned Line) : Stmt(SK_Empty, Line) {}
  static bool classof(const Stmt *S) { return S->Kind == SK_Empty; }
};

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

struct StructFieldDecl {
  TypeSpec Ty;
  std::string Name;
  uint64_t ArraySize = 0; // 0 means "not an array".
};

struct StructDecl {
  std::string Name;
  std::vector<StructFieldDecl> Fields;
  unsigned Line = 0;
};

struct ParamDecl {
  TypeSpec Ty;
  std::string Name;
};

struct FuncDecl {
  TypeSpec Ret;
  std::string Name;
  std::vector<ParamDecl> Params;
  StmtPtr Body;          // Null for declarations.
  bool IsExtern = false; // 'extern' marks a library function.
  unsigned Line = 0;
};

struct GlobalDecl {
  TypeSpec Ty;
  std::string Name;
  uint64_t ArraySize = 0; // 0 means "not an array".
  bool HasInit = false;
  int64_t InitValue = 0;
  unsigned Line = 0;
};

/// One parsed translation unit.
struct TranslationUnit {
  std::vector<StructDecl> Structs;
  std::vector<FuncDecl> Functions;
  std::vector<GlobalDecl> Globals;
  /// Declaration order across all three kinds, as (kind, index) pairs:
  /// 0=struct, 1=function, 2=global. IRGen processes structs and
  /// signatures first regardless, but keeps this for diagnostics.
  std::vector<std::pair<int, size_t>> Order;
};

} // namespace slo

#endif // SLO_FRONTEND_AST_H
