//===- frontend/Frontend.cpp - MiniC compilation entry points -------------===//

#include "frontend/Frontend.h"

#include "frontend/IRGen.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Linker.h"
#include "ir/Verifier.h"
#include "support/Error.h"

using namespace slo;

std::unique_ptr<Module> slo::compileMiniC(IRContext &Ctx,
                                          const std::string &ModuleName,
                                          const std::string &Source,
                                          std::vector<std::string> &Diags) {
  Lexer Lex(Source);
  std::string LexError;
  std::vector<Token> Tokens = Lex.lexAll(LexError);
  if (!LexError.empty()) {
    Diags.push_back(ModuleName + ": " + LexError);
    return nullptr;
  }

  std::vector<std::string> LocalDiags;
  Parser P(std::move(Tokens), LocalDiags);
  std::unique_ptr<TranslationUnit> TU = P.parse();
  if (!TU) {
    for (const std::string &D : LocalDiags)
      Diags.push_back(ModuleName + ": " + D);
    return nullptr;
  }

  IRGenerator Gen(Ctx, LocalDiags);
  std::unique_ptr<Module> M = Gen.run(*TU, ModuleName);
  if (!M) {
    for (const std::string &D : LocalDiags)
      Diags.push_back(ModuleName + ": " + D);
    return nullptr;
  }

  std::vector<std::string> VerifyErrors;
  if (!verifyModule(*M, VerifyErrors)) {
    for (const std::string &D : VerifyErrors)
      Diags.push_back(ModuleName + ": internal error: " + D);
    return nullptr;
  }
  return M;
}

std::unique_ptr<Module>
slo::compileProgram(IRContext &Ctx, const std::string &ProgramName,
                    const std::vector<std::string> &Sources,
                    std::vector<std::string> &Diags) {
  std::vector<std::unique_ptr<Module>> TUs;
  for (size_t I = 0; I < Sources.size(); ++I) {
    std::string Name = ProgramName + ".tu" + std::to_string(I);
    std::unique_ptr<Module> M = compileMiniC(Ctx, Name, Sources[I], Diags);
    if (!M)
      return nullptr;
    TUs.push_back(std::move(M));
  }
  std::unique_ptr<Module> Linked =
      linkModules(Ctx, std::move(TUs), ProgramName);
  std::vector<std::string> VerifyErrors;
  if (!verifyModule(*Linked, VerifyErrors)) {
    for (const std::string &D : VerifyErrors)
      Diags.push_back(ProgramName + ": internal error after linking: " + D);
    return nullptr;
  }
  return Linked;
}

std::unique_ptr<Module>
slo::compileProgramOrDie(IRContext &Ctx, const std::string &ProgramName,
                         const std::vector<std::string> &Sources) {
  std::vector<std::string> Diags;
  std::unique_ptr<Module> M = compileProgram(Ctx, ProgramName, Sources, Diags);
  if (!M)
    reportFatalError("compilation of '" + ProgramName + "' failed: " +
                     (Diags.empty() ? "unknown error" : Diags.front()));
  return M;
}
