//===- profile/FeedbackIO.h - Feedback file persistence --------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes feedback data to a text format and matches it back against
/// a module, the equivalent of the paper's PBO use phase: "the
/// application's CFG is constructed and matched against the CFG
/// constructed from the data found in the feedback file" (§3.1). Keys
/// are symbolic (function names, block numbers, record/field names), so
/// a feedback file survives process boundaries; matching fails softly —
/// entries whose symbols no longer exist are dropped and counted.
///
/// Format (one record per line):
///   slo-feedback-v1
///   entry <function> <count>
///   edge <function> <from-block#> <to-block#> <count>
///   field <record> <field#> <loads> <stores> <misses> <total-latency>
///
//===----------------------------------------------------------------------===//

#ifndef SLO_PROFILE_FEEDBACKIO_H
#define SLO_PROFILE_FEEDBACKIO_H

#include "profile/FeedbackFile.h"

#include <string>

namespace slo {

/// Serializes \p FB (collected on \p M) to the text format.
std::string serializeFeedback(const Module &M, const FeedbackFile &FB);

/// Result of matching a serialized profile against a module.
struct FeedbackMatchResult {
  bool Ok = false;
  std::string Error;        // Set when !Ok (malformed input).
  unsigned MatchedEntries = 0;
  unsigned DroppedEntries = 0; // Symbols that no longer exist.
};

/// Parses \p Text and populates \p FB with the records that match \p M
/// (the PBO use-phase CFG matching).
FeedbackMatchResult deserializeFeedback(const Module &M,
                                        const std::string &Text,
                                        FeedbackFile &FB);

} // namespace slo

#endif // SLO_PROFILE_FEEDBACKIO_H
