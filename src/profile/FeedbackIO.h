//===- profile/FeedbackIO.h - Feedback file persistence --------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes feedback data to a text format and matches it back against
/// a module, the equivalent of the paper's PBO use phase: "the
/// application's CFG is constructed and matched against the CFG
/// constructed from the data found in the feedback file" (§3.1). Keys
/// are symbolic (function names, block numbers, record/field names), so
/// a feedback file survives process boundaries; matching fails softly —
/// entries whose symbols no longer exist are dropped and counted — while
/// malformed or truncated input is a hard, structured error.
///
/// Format (one record per line, deterministic order: functions in module
/// order, fields sorted by record name then index):
///   slo-feedback-v2
///   entry <function> <count>
///   edge <function> <from-block#> <to-block#> <count>
///   field <record> <field#> <loads> <stores> <misses> <total-latency>
///   end <record-count>
///
/// The trailing "end" line carries the number of data records, so a file
/// truncated on a line boundary — which line-by-line parsing would
/// otherwise accept silently — is detected and rejected. Counts are
/// unsigned decimal; a leading '-' (which istream's unsigned extraction
/// would happily wrap to a huge count) is rejected, as are non-finite or
/// negative latencies.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_PROFILE_FEEDBACKIO_H
#define SLO_PROFILE_FEEDBACKIO_H

#include "profile/FeedbackFile.h"

#include <string>

namespace slo {

class DiagnosticEngine;

/// Serializes \p FB (collected on \p M) to the text format. The output
/// is byte-deterministic for a given (module, feedback) content —
/// independent of pointer values and collection scheduling — so sampled
/// profiles can be compared across runs byte for byte.
std::string serializeFeedback(const Module &M, const FeedbackFile &FB);

/// Result of matching a serialized profile against a module.
struct FeedbackMatchResult {
  bool Ok = false;
  std::string Error;        // Set when !Ok (malformed/truncated input).
  unsigned MatchedEntries = 0;
  unsigned DroppedEntries = 0; // Symbols that no longer exist.
};

/// Parses \p Text and merges the records that match \p M into \p FB
/// (the PBO use-phase CFG matching). The merge is atomic: on any parse
/// error \p FB is left untouched — a corrupt profile folded into an
/// existing multi-run accumulation must not half-apply. When \p Diags
/// is non-null, parse failures are additionally reported as structured
/// "feedback" errors and soft symbol drops as one summarizing warning.
FeedbackMatchResult deserializeFeedback(const Module &M,
                                        const std::string &Text,
                                        FeedbackFile &FB,
                                        DiagnosticEngine *Diags = nullptr);

/// Loads \p Path and matches it against \p M. I/O failures and parse
/// errors are reported into \p Diags as structured "feedback" errors;
/// the returned result's Ok mirrors that. This is the profile load path
/// drivers use — it never asserts on a corrupt file.
FeedbackMatchResult loadFeedbackFile(const Module &M, const std::string &Path,
                                     FeedbackFile &FB,
                                     DiagnosticEngine &Diags);

} // namespace slo

#endif // SLO_PROFILE_FEEDBACKIO_H
