//===- profile/FeedbackIO.cpp - Feedback file persistence -----------------===//

#include "profile/FeedbackIO.h"

#include "support/Format.h"

#include <map>
#include <sstream>

using namespace slo;

std::string slo::serializeFeedback(const Module &M, const FeedbackFile &FB) {
  std::ostringstream OS;
  OS << "slo-feedback-v1\n";
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    if (uint64_t N = FB.getEntryCount(F.get()))
      OS << "entry " << F->getName() << " " << N << "\n";
    for (const auto &BB : F->blocks())
      for (const BasicBlock *Succ : BB->successors())
        if (uint64_t N = FB.getEdgeCount(BB.get(), Succ))
          OS << "edge " << F->getName() << " " << BB->getNumber() << " "
             << Succ->getNumber() << " " << N << "\n";
  }
  for (const auto &[Key, Stats] : FB.allFieldStats()) {
    OS << "field " << Key.first->getRecordName() << " " << Key.second
       << " " << Stats.Loads << " " << Stats.Stores << " " << Stats.Misses
       << " " << formatString("%.6g", Stats.TotalLatency) << "\n";
  }
  return OS.str();
}

FeedbackMatchResult slo::deserializeFeedback(const Module &M,
                                             const std::string &Text,
                                             FeedbackFile &FB) {
  FeedbackMatchResult Result;
  std::istringstream In(Text);
  std::string Header;
  if (!std::getline(In, Header) || Header != "slo-feedback-v1") {
    Result.Error = "missing or unknown feedback header";
    return Result;
  }

  // Index blocks by (function, number) once.
  std::map<std::pair<const Function *, unsigned>, const BasicBlock *>
      Blocks;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      Blocks[{F.get(), BB->getNumber()}] = BB.get();

  std::string Line;
  unsigned LineNo = 1;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Kind;
    LS >> Kind;
    if (Kind == "entry") {
      std::string Fn;
      uint64_t N;
      if (!(LS >> Fn >> N)) {
        Result.Error = formatString("line %u: malformed entry", LineNo);
        return Result;
      }
      const Function *F = M.lookupFunction(Fn);
      if (!F) {
        ++Result.DroppedEntries;
        continue;
      }
      FB.countEntry(F, N);
      ++Result.MatchedEntries;
    } else if (Kind == "edge") {
      std::string Fn;
      unsigned From, To;
      uint64_t N;
      if (!(LS >> Fn >> From >> To >> N)) {
        Result.Error = formatString("line %u: malformed edge", LineNo);
        return Result;
      }
      const Function *F = M.lookupFunction(Fn);
      const BasicBlock *FromBB =
          F ? Blocks.count({F, From}) ? Blocks[{F, From}] : nullptr
            : nullptr;
      const BasicBlock *ToBB =
          F ? Blocks.count({F, To}) ? Blocks[{F, To}] : nullptr : nullptr;
      if (!FromBB || !ToBB) {
        ++Result.DroppedEntries;
        continue;
      }
      FB.countEdge(FromBB, ToBB, N);
      ++Result.MatchedEntries;
    } else if (Kind == "field") {
      std::string Rec;
      unsigned Idx;
      uint64_t Loads, Stores, Misses;
      double Latency;
      if (!(LS >> Rec >> Idx >> Loads >> Stores >> Misses >> Latency)) {
        Result.Error = formatString("line %u: malformed field", LineNo);
        return Result;
      }
      RecordType *R = M.getTypes().lookupRecord(Rec);
      if (!R || R->isOpaque() || Idx >= R->getNumFields()) {
        ++Result.DroppedEntries;
        continue;
      }
      FieldCacheStats &S = FB.fieldStats(R, Idx);
      S.Loads += Loads;
      S.Stores += Stores;
      S.Misses += Misses;
      S.TotalLatency += Latency;
      ++Result.MatchedEntries;
    } else {
      Result.Error =
          formatString("line %u: unknown record '%s'", LineNo,
                       Kind.c_str());
      return Result;
    }
  }
  Result.Ok = true;
  return Result;
}
