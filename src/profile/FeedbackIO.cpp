//===- profile/FeedbackIO.cpp - Feedback file persistence -----------------===//

#include "profile/FeedbackIO.h"

#include "support/Diagnostics.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

using namespace slo;

std::string slo::serializeFeedback(const Module &M, const FeedbackFile &FB) {
  std::ostringstream OS;
  unsigned Records = 0;
  OS << "slo-feedback-v2\n";
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    if (uint64_t N = FB.getEntryCount(F.get())) {
      OS << "entry " << F->getName() << " " << N << "\n";
      ++Records;
    }
    for (const auto &BB : F->blocks())
      for (const BasicBlock *Succ : BB->successors())
        if (uint64_t N = FB.getEdgeCount(BB.get(), Succ)) {
          OS << "edge " << F->getName() << " " << BB->getNumber() << " "
             << Succ->getNumber() << " " << N << "\n";
          ++Records;
        }
  }
  // Field records sorted by (record name, field index): the in-memory
  // map is keyed by RecordType pointers, whose order is an accident of
  // allocation — two collections of identical content must serialize
  // identically.
  std::vector<std::pair<std::pair<std::string, unsigned>, std::string>>
      FieldLines;
  for (const auto &[Key, Stats] : FB.allFieldStats())
    FieldLines.push_back(
        {{Key.first->getRecordName(), Key.second},
         formatString("field %s %u %llu %llu %llu %.6g\n",
                      Key.first->getRecordName().c_str(), Key.second,
                      static_cast<unsigned long long>(Stats.Loads),
                      static_cast<unsigned long long>(Stats.Stores),
                      static_cast<unsigned long long>(Stats.Misses),
                      Stats.TotalLatency)});
  std::sort(FieldLines.begin(), FieldLines.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  for (const auto &[Key, Line] : FieldLines) {
    OS << Line;
    ++Records;
  }
  OS << "end " << Records << "\n";
  return OS.str();
}

namespace {

/// Parse context: accumulates the hard error (if any) and mirrors it
/// into the diagnostic engine.
struct ParseState {
  FeedbackMatchResult Result;
  DiagnosticEngine *Diags = nullptr;

  bool fail(unsigned LineNo, const std::string &What) {
    Result.Error = formatString("line %u: %s", LineNo, What.c_str());
    if (Diags)
      Diags->report(DiagSeverity::Error, "feedback",
                    "feedback file rejected: " + Result.Error);
    return false;
  }
};

/// Strict unsigned decimal: rejects the leading '-' that istream's
/// unsigned extraction silently wraps, and anything non-numeric.
bool parseU64(const std::string &Tok, uint64_t &Out) {
  if (Tok.empty() || Tok.size() > 20)
    return false;
  uint64_t V = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Next = V * 10 + static_cast<uint64_t>(C - '0');
    if (Next < V)
      return false; // Overflow.
    V = Next;
  }
  Out = V;
  return true;
}

bool parseLatency(const std::string &Tok, double &Out) {
  std::istringstream SS(Tok);
  if (!(SS >> Out) || !SS.eof())
    return false;
  return std::isfinite(Out) && Out >= 0.0;
}

/// Splits one record line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream SS(Line);
  std::string T;
  while (SS >> T)
    Toks.push_back(T);
  return Toks;
}

} // namespace

FeedbackMatchResult slo::deserializeFeedback(const Module &M,
                                             const std::string &Text,
                                             FeedbackFile &FB,
                                             DiagnosticEngine *Diags) {
  ParseState PS;
  PS.Diags = Diags;
  std::istringstream In(Text);
  std::string Header;
  if (!std::getline(In, Header) || Header != "slo-feedback-v2") {
    PS.fail(1, "missing or unknown feedback header");
    return PS.Result;
  }

  // Index blocks by (function, number) once.
  std::map<std::pair<const Function *, unsigned>, const BasicBlock *>
      Blocks;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      Blocks[{F.get(), BB->getNumber()}] = BB.get();

  // Records are staged into a scratch file and only folded into \p FB
  // once the whole text (trailer included) has been validated: a merge
  // of a corrupt or truncated profile must not half-apply.
  FeedbackFile Staged;
  std::string Line;
  unsigned LineNo = 1;
  unsigned Records = 0;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    if (SawEnd) {
      PS.fail(LineNo, "record after end marker");
      return PS.Result;
    }
    std::vector<std::string> Toks = tokenize(Line);
    const std::string &Kind = Toks.empty() ? Line : Toks[0];
    if (Kind == "entry") {
      uint64_t N;
      if (Toks.size() != 3 || !parseU64(Toks[2], N)) {
        PS.fail(LineNo, "malformed entry record");
        return PS.Result;
      }
      ++Records;
      const Function *F = M.lookupFunction(Toks[1]);
      if (!F) {
        ++PS.Result.DroppedEntries;
        continue;
      }
      Staged.countEntry(F, N);
      ++PS.Result.MatchedEntries;
    } else if (Kind == "edge") {
      uint64_t From, To, N;
      if (Toks.size() != 5 || !parseU64(Toks[2], From) ||
          !parseU64(Toks[3], To) || !parseU64(Toks[4], N)) {
        PS.fail(LineNo, "malformed edge record");
        return PS.Result;
      }
      ++Records;
      const Function *F = M.lookupFunction(Toks[1]);
      const BasicBlock *FromBB = nullptr, *ToBB = nullptr;
      if (F) {
        auto FromIt = Blocks.find({F, static_cast<unsigned>(From)});
        auto ToIt = Blocks.find({F, static_cast<unsigned>(To)});
        FromBB = FromIt == Blocks.end() ? nullptr : FromIt->second;
        ToBB = ToIt == Blocks.end() ? nullptr : ToIt->second;
      }
      if (!FromBB || !ToBB) {
        ++PS.Result.DroppedEntries;
        continue;
      }
      Staged.countEdge(FromBB, ToBB, N);
      ++PS.Result.MatchedEntries;
    } else if (Kind == "field") {
      uint64_t Idx, Loads, Stores, Misses;
      double Latency;
      if (Toks.size() != 7 || !parseU64(Toks[2], Idx) ||
          !parseU64(Toks[3], Loads) || !parseU64(Toks[4], Stores) ||
          !parseU64(Toks[5], Misses) || !parseLatency(Toks[6], Latency)) {
        PS.fail(LineNo, "malformed field record");
        return PS.Result;
      }
      ++Records;
      RecordType *R = M.getTypes().lookupRecord(Toks[1]);
      if (!R || R->isOpaque() || Idx >= R->getNumFields()) {
        ++PS.Result.DroppedEntries;
        continue;
      }
      FieldCacheStats &S = Staged.fieldStats(R, static_cast<unsigned>(Idx));
      S.Loads += Loads;
      S.Stores += Stores;
      S.Misses += Misses;
      S.TotalLatency += Latency;
      ++PS.Result.MatchedEntries;
    } else if (Kind == "end") {
      uint64_t Declared;
      if (Toks.size() != 2 || !parseU64(Toks[1], Declared)) {
        PS.fail(LineNo, "malformed end record");
        return PS.Result;
      }
      if (Declared != Records) {
        PS.fail(LineNo,
                formatString("record count mismatch: end declares %llu, "
                             "file carries %u (truncated or spliced file)",
                             static_cast<unsigned long long>(Declared),
                             Records));
        return PS.Result;
      }
      SawEnd = true;
    } else {
      PS.fail(LineNo, "unknown record '" + Kind + "'");
      return PS.Result;
    }
  }
  if (!SawEnd) {
    PS.fail(LineNo, "truncated feedback file (missing end marker)");
    return PS.Result;
  }
  if (Diags && PS.Result.DroppedEntries > 0)
    Diags->report(DiagSeverity::Warning, "feedback",
                  formatString("%u profile record(s) no longer match a "
                               "symbol and were dropped",
                               PS.Result.DroppedEntries));
  FB.merge(Staged);
  PS.Result.Ok = true;
  return PS.Result;
}

FeedbackMatchResult slo::loadFeedbackFile(const Module &M,
                                          const std::string &Path,
                                          FeedbackFile &FB,
                                          DiagnosticEngine &Diags) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    FeedbackMatchResult R;
    R.Error = "cannot open feedback file '" + Path + "'";
    Diags.report(DiagSeverity::Error, "feedback", R.Error);
    return R;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad()) {
    FeedbackMatchResult R;
    R.Error = "read error on feedback file '" + Path + "'";
    Diags.report(DiagSeverity::Error, "feedback", R.Error);
    return R;
  }
  return deserializeFeedback(M, SS.str(), FB, &Diags);
}
