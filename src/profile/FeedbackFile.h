//===- profile/FeedbackFile.h - PBO feedback data --------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The feedback file produced by a profile collection run (paper §3.1):
/// CFG edge counts from instrumentation plus d-cache event samples from
/// the performance monitoring unit, attributed to structure fields. In
/// this reproduction the "instrumented binary" is the IR interpreter,
/// and the "PMU" is either the cache simulator directly (exact
/// attribution) or the SampledPmu emulation layered over it (scaled
/// estimates from period sampling with optional skid, like the paper's
/// Caliper collection). Either way the feedback is keyed by the IR
/// objects of the module it was collected on, so CFG matching is
/// trivial; edge counts are always exact — they come from
/// instrumentation, not the PMU.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_PROFILE_FEEDBACKFILE_H
#define SLO_PROFILE_FEEDBACKFILE_H

#include "ir/Module.h"

#include <cstdint>
#include <map>

namespace slo {

/// Per-field d-cache statistics (the paper's DMISS / DLAT inputs).
struct FieldCacheStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  /// Misses at the field's first cache level (L1 for integer data, L2
  /// for floating point on Itanium; paper §3.2).
  uint64_t Misses = 0;
  /// Total load latency in cycles (misses and hits).
  double TotalLatency = 0.0;

  double averageLatency() const {
    uint64_t N = Loads;
    return N ? TotalLatency / static_cast<double>(N) : 0.0;
  }
};

/// Profile feedback for one module: edge counts and field cache events.
class FeedbackFile {
public:
  using Edge = std::pair<const BasicBlock *, const BasicBlock *>;
  using FieldKey = std::pair<const RecordType *, unsigned>;

  // -- Collection interface (used by the interpreter) --
  void countEntry(const Function *F, uint64_t N = 1) { EntryCounts[F] += N; }
  void countEdge(const BasicBlock *From, const BasicBlock *To,
                 uint64_t N = 1) {
    EdgeCounts[{From, To}] += N;
  }
  FieldCacheStats &fieldStats(const RecordType *Rec, unsigned FieldIndex) {
    return FieldCache[{Rec, FieldIndex}];
  }

  /// Stable counter pointers for the bytecode VM's inline caches:
  /// std::map nodes never move, so a pointer taken at the first event
  /// stays valid across later insertions. Calling these interns the key
  /// (at zero) exactly like the counting calls above, so engines that
  /// resolve them lazily — on the first event, never eagerly at compile
  /// time — intern the same key set as the tree walker.
  uint64_t *entryCounter(const Function *F) { return &EntryCounts[F]; }
  uint64_t *edgeCounter(const BasicBlock *From, const BasicBlock *To) {
    return &EdgeCounts[{From, To}];
  }

  // -- Query interface (used by the PBO weighting and the advisor) --
  uint64_t getEntryCount(const Function *F) const {
    auto It = EntryCounts.find(F);
    return It == EntryCounts.end() ? 0 : It->second;
  }
  uint64_t getEdgeCount(const BasicBlock *From, const BasicBlock *To) const {
    auto It = EdgeCounts.find({From, To});
    return It == EdgeCounts.end() ? 0 : It->second;
  }

  /// Execution count of \p BB: entry count for the entry block plus the
  /// sum of incoming edge counts.
  uint64_t getBlockCount(const BasicBlock *BB) const;

  const FieldCacheStats *getFieldStats(const RecordType *Rec,
                                       unsigned FieldIndex) const {
    auto It = FieldCache.find({Rec, FieldIndex});
    return It == FieldCache.end() ? nullptr : &It->second;
  }

  const std::map<FieldKey, FieldCacheStats> &allFieldStats() const {
    return FieldCache;
  }

  /// Accumulates \p Other into this file: entry/edge counts and field
  /// cache events are summed key-wise. This is the paper's multi-run
  /// collection ("data from multiple runs with multiple input sets is
  /// merged"): profile each run into its own file, then fold them
  /// together. Both files must be keyed against the same module; to
  /// merge profiles collected on different compilations, round-trip one
  /// through serializeFeedback/deserializeFeedback first (the symbolic
  /// matching re-keys it).
  void merge(const FeedbackFile &Other);

private:
  std::map<const Function *, uint64_t> EntryCounts;
  std::map<Edge, uint64_t> EdgeCounts;
  std::map<FieldKey, FieldCacheStats> FieldCache;
};

} // namespace slo

#endif // SLO_PROFILE_FEEDBACKFILE_H
