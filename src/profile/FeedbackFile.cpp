//===- profile/FeedbackFile.cpp - PBO feedback data -----------------------===//

#include "profile/FeedbackFile.h"

using namespace slo;

void FeedbackFile::merge(const FeedbackFile &Other) {
  for (const auto &[F, N] : Other.EntryCounts)
    EntryCounts[F] += N;
  for (const auto &[E, N] : Other.EdgeCounts)
    EdgeCounts[E] += N;
  for (const auto &[Key, S] : Other.FieldCache) {
    FieldCacheStats &D = FieldCache[Key];
    D.Loads += S.Loads;
    D.Stores += S.Stores;
    D.Misses += S.Misses;
    D.TotalLatency += S.TotalLatency;
  }
}

uint64_t FeedbackFile::getBlockCount(const BasicBlock *BB) const {
  const Function *F = BB->getParent();
  uint64_t N = 0;
  if (F && F->getEntry() == BB)
    N += getEntryCount(F);
  if (F) {
    for (const auto &Pred : F->blocks())
      for (const BasicBlock *S : Pred->successors())
        if (S == BB)
          N += getEdgeCount(Pred.get(), BB);
  }
  return N;
}
