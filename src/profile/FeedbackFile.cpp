//===- profile/FeedbackFile.cpp - PBO feedback data -----------------------===//

#include "profile/FeedbackFile.h"

using namespace slo;

uint64_t FeedbackFile::getBlockCount(const BasicBlock *BB) const {
  const Function *F = BB->getParent();
  uint64_t N = 0;
  if (F && F->getEntry() == BB)
    N += getEntryCount(F);
  if (F) {
    for (const auto &Pred : F->blocks())
      for (const BasicBlock *S : Pred->successors())
        if (S == BB)
          N += getEdgeCount(Pred.get(), BB);
  }
  return N;
}
