//===- observability/SampledPmu.cpp - Sampled PMU emulation ---------------===//

#include "observability/SampledPmu.h"

#include "observability/CounterRegistry.h"

using namespace slo;

SampledPmu::SampledPmu(const SampledPmuConfig &Config) : Cfg(Config),
    // Two independent streams split off the seed in a fixed order, so a
    // run's samples depend only on (seed, event stream), never on when
    // or where the PMU object was constructed.
    JitterRng(0), SkidRng(0) {
  if (Cfg.Period == 0)
    Cfg.Period = 1;
  Rng Base(Cfg.Seed);
  JitterRng = Base.split();
  SkidRng = Base.split();
  // The untyped pseudo-site is always id 0.
  Sites.emplace_back();
  AccessGap = drawGap();
  MissGap = drawGap();
  LatencyGap = drawGap();
}

SampledPmu::SiteId SampledPmu::registerSite(const void *RecordKey,
                                            unsigned FieldIndex) {
  auto [It, Inserted] = SiteIds.try_emplace({RecordKey, FieldIndex},
                                            static_cast<SiteId>(Sites.size()));
  if (Inserted) {
    Site S;
    S.RecordKey = RecordKey;
    S.FieldIndex = FieldIndex;
    Sites.push_back(S);
  }
  return It->second;
}

void SampledPmu::finishRun() {
  if (Finished)
    return;
  Finished = true;
  if (PendingMiss) {
    PendingMiss = false;
    ++DroppedEndOfRun;
  }
}

std::vector<SampledPmu::SiteEstimate> SampledPmu::estimates() const {
  std::vector<SiteEstimate> Out;
  const double P = static_cast<double>(Cfg.Period);
  for (SiteId Id = 1; Id < Sites.size(); ++Id) {
    const Site &S = Sites[Id];
    if (!S.LoadSamples && !S.StoreSamples && !S.MissSamples &&
        S.LatencySum == 0.0)
      continue;
    SiteEstimate E;
    E.RecordKey = S.RecordKey;
    E.FieldIndex = S.FieldIndex;
    E.Loads = S.LoadSamples * Cfg.Period;
    E.Stores = S.StoreSamples * Cfg.Period;
    E.Misses = S.MissSamples * Cfg.Period;
    E.TotalLatency = S.LatencySum * P;
    Out.push_back(E);
  }
  return Out;
}

void SampledPmu::publishCounters(CounterRegistry &Counters) const {
  Counters.add("profile.samples_events", Events);
  Counters.add("profile.samples_miss_events", MissEvents);
  Counters.add("profile.samples_access", AccessSamplesTaken);
  Counters.add("profile.samples_miss", MissSamplesTaken);
  Counters.add("profile.samples_latency", LatencySamplesTaken);
  Counters.add("profile.samples_skid_displaced", SkidDisplaced);
  Counters.add("profile.samples_dropped_untyped", DroppedUntyped);
  Counters.add("profile.samples_dropped_collision", SkidCollisions);
  Counters.add("profile.samples_dropped_end_of_run", DroppedEndOfRun);
  Counters.add("profile.samples_period", Cfg.Period);
}
