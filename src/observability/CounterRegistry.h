//===- observability/CounterRegistry.h - Sharded counters ------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide-capable counter registry for the pipeline, the
/// interpreter, and the bench harnesses. Counters are registered by name
/// once (interned to a dense id under a lock), then bumped through
/// per-thread shards: each thread owns a private array of relaxed
/// atomics indexed by counter id, so the hot path is one thread-local
/// lookup plus one uncontended fetch_add — no shared cache line is
/// written by two threads. Reporting merges the shards under the
/// registry lock; merge order does not affect the sums, so a report is
/// deterministic no matter how the ThreadPool scheduled the bumps.
///
/// This replaces the ad-hoc tallies that used to live in component
/// result structs only: components now publish their totals into one
/// registry so drivers and benches can render a single machine-readable
/// stats artifact.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_OBSERVABILITY_COUNTERREGISTRY_H
#define SLO_OBSERVABILITY_COUNTERREGISTRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slo {

/// Registry of named monotonically increasing counters with per-thread
/// shard storage.
class CounterRegistry {
public:
  using CounterId = uint32_t;

  /// Upper bound on distinct counters per registry; a shard is one flat
  /// array of this many slots (4 KiB), so registration past the bound is
  /// a programming error and asserts.
  static constexpr uint32_t MaxCounters = 512;

  CounterRegistry();
  ~CounterRegistry();
  CounterRegistry(const CounterRegistry &) = delete;
  CounterRegistry &operator=(const CounterRegistry &) = delete;

  /// Interns \p Name and returns its dense id (stable for the registry's
  /// lifetime). Safe to call from any thread; locks on the first sight
  /// of a name only.
  CounterId id(const std::string &Name);

  /// Adds \p N to the counter, through the calling thread's shard.
  void add(CounterId C, uint64_t N = 1);

  /// Convenience: intern + add. Callers on hot paths should cache the id.
  void add(const std::string &Name, uint64_t N) { add(id(Name), N); }

  /// Merged value of one counter across all shards.
  uint64_t value(CounterId C) const;
  uint64_t value(const std::string &Name) const;

  /// Merged snapshot of every registered counter, sorted by name (the
  /// registration and scheduling order never shows through).
  std::map<std::string, uint64_t> snapshot() const;

  /// "name value" lines, sorted by name.
  std::string renderText() const;
  /// One flat JSON object {"name": value, ...}, sorted by name.
  std::string renderJson() const;

private:
  struct Shard {
    std::atomic<uint64_t> Slots[MaxCounters] = {};
  };

  Shard &localShard();

  mutable std::mutex Mutex;
  std::map<std::string, CounterId> Ids;
  std::vector<std::string> Names;                // indexed by CounterId
  mutable std::vector<std::unique_ptr<Shard>> Shards;
  /// Distinguishes this registry from a destroyed one that happened to
  /// live at the same address, so thread-local shard caches can never be
  /// used against the wrong registry.
  uint64_t Generation;
};

} // namespace slo

#endif // SLO_OBSERVABILITY_COUNTERREGISTRY_H
