//===- observability/FlightRecorder.cpp - Event ring for post-mortems -----===//

#include "observability/FlightRecorder.h"

#include "support/Diagnostics.h" // escapeJson

using namespace slo;

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::vector<Event> Out;
  Out.reserve(Ring.size());
  // Once full, Next is the oldest slot; before that, slot 0 is.
  if (Ring.size() == Capacity && Capacity != 0) {
    for (size_t I = 0; I < Ring.size(); ++I)
      Out.push_back(Ring[(Next + I) % Capacity]);
  } else {
    Out = Ring;
  }
  return Out;
}

std::string FlightRecorder::renderJson(const std::string &Reason,
                                       const std::string &Context,
                                       const DescribeFn &Describe) const {
  std::string Out = "{\"flight_recorder\": {\"reason\": \"" +
                    escapeJson(Reason) + "\"";
  if (!Context.empty())
    Out += ", " + Context;
  uint64_t Dropped = Recorded - Ring.size();
  Out += ", \"capacity\": " + std::to_string(Capacity);
  Out += ", \"recorded\": " + std::to_string(Recorded);
  Out += ", \"dropped\": " + std::to_string(Dropped);
  Out += ", \"events\": [";
  bool First = true;
  for (const Event &E : events()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"t_us\": " + std::to_string(E.TMicros);
    if (Describe) {
      Description D = Describe(E);
      Out += ", \"kind\": \"" + escapeJson(D.Kind) + "\"";
      Out += ", \"code\": \"" + escapeJson(D.Code) + "\"";
    } else {
      Out += ", \"kind\": " + std::to_string(E.Kind);
      Out += ", \"code\": " + std::to_string(E.Code);
    }
    Out += ", \"size\": " + std::to_string(E.Size);
    Out += ", \"dur_us\": " + std::to_string(E.DurMicros);
    Out += "}";
  }
  Out += "]}}";
  return Out;
}
