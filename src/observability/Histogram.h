//===- observability/Histogram.h - Log-bucketed latency histograms *- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Log-bucketed value histograms for service latency telemetry, built on
/// the CounterRegistry sharding pattern: each recording thread owns a
/// private array of relaxed atomics (one slot per bucket plus count, sum
/// and max), so the hot path is one thread-local lookup plus a handful of
/// uncontended fetch_adds — no shared cache line is written by two
/// threads, and recording with telemetry enabled is cheap enough to stay
/// always-on (the GWP model). Reporting merges the shards under the
/// histogram mutex; addition commutes, so a merged snapshot is
/// deterministic no matter how the threads interleaved.
///
/// Bucketing (DESIGN.md §14): values below ExactLimit (32) get one bucket
/// each — sub-microsecond and single-digit-microsecond latencies are
/// exact. Above that, each power-of-two octave is split into 16
/// sub-buckets, bounding the relative rounding error of any reported
/// value at ~6.25%. Quantiles are computed from the merged buckets as the
/// smallest bucket upper bound covering the requested rank — a pure
/// function of the counts, so two snapshots of identical recordings
/// render identical p50/p90/p99 bytes.
///
/// HistogramRegistry interns histograms by dotted name (e.g.
/// "service.latency.PutSource") and renders merged snapshots as JSON and
/// as Prometheus text exposition. Telemetry off is a null
/// Histogram/registry pointer everywhere: call sites guard with one
/// branch and read no clock, same contract as Tracer.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_OBSERVABILITY_HISTOGRAM_H
#define SLO_OBSERVABILITY_HISTOGRAM_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slo {

/// A merged, immutable view of one histogram. Deterministic: depends only
/// on the multiset of recorded values, never on thread scheduling.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0; // Exact maximum recorded value (not bucket-rounded).
  std::vector<uint64_t> Buckets; // Indexed by bucket; trailing zeros trimmed.

  /// Smallest bucket upper bound whose cumulative count reaches
  /// ceil(Q * Count); 0 for an empty histogram. Q in [0, 1].
  uint64_t quantile(double Q) const;
};

/// One named histogram over unsigned 64-bit values (the service records
/// microseconds). record() is wait-free after the first call per thread.
class Histogram {
public:
  /// Values below this get an exact bucket each.
  static constexpr uint64_t ExactLimit = 32;
  /// Sub-buckets per power-of-two octave above ExactLimit.
  static constexpr unsigned SubBuckets = 16;
  /// 32 exact buckets + 16 sub-buckets for each of the 59 octaves
  /// [2^5, 2^6) .. [2^63, 2^64).
  static constexpr unsigned NumBuckets =
      static_cast<unsigned>(ExactLimit) + (64 - 5) * SubBuckets;

  Histogram();
  ~Histogram();
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  /// Bucket index for \p V (total function; saturates at NumBuckets - 1).
  static unsigned bucketFor(uint64_t V);
  /// Largest value mapping to bucket \p B (the reported quantile bound).
  static uint64_t bucketUpperBound(unsigned B);

  /// Adds one observation through the calling thread's shard.
  void record(uint64_t V);

  /// Merged snapshot across all shards.
  HistogramSnapshot snapshot() const;

private:
  struct Shard;
  Shard &localShard();

  mutable std::mutex Mutex;
  mutable std::vector<std::unique_ptr<Shard>> Shards;
  uint64_t Generation; // Guards TLS caches against address reuse.
};

/// Histograms interned by dotted name. Thread-safe; the hot path should
/// cache the Histogram* from get().
class HistogramRegistry {
public:
  HistogramRegistry() = default;
  HistogramRegistry(const HistogramRegistry &) = delete;
  HistogramRegistry &operator=(const HistogramRegistry &) = delete;

  /// Interns \p Name; the returned histogram lives as long as the
  /// registry.
  Histogram &get(const std::string &Name);

  /// Convenience: intern + record.
  void record(const std::string &Name, uint64_t V) { get(Name).record(V); }

  /// Merged snapshots of every histogram, sorted by name.
  std::map<std::string, HistogramSnapshot> snapshotAll() const;

  /// {"name": {"count": N, "sum": S, "max": M, "p50": .., "p90": ..,
  /// "p99": ..}, ...} sorted by name. The shared schema of the daemon's
  /// GetMetrics endpoint and slo_driver --stats-json.
  std::string renderJson() const;

  /// Prometheus text exposition: one histogram metric family per entry
  /// (name mangled to [a-zA-Z0-9_], prefixed "slo_"), cumulative
  /// le-buckets at every non-empty boundary plus +Inf, _sum and _count.
  std::string renderPrometheus() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Shared JSON rendering for one snapshot (used by the registry and by
/// callers embedding snapshots in other artifacts).
std::string renderHistogramSnapshotJson(const HistogramSnapshot &S);

} // namespace slo

#endif // SLO_OBSERVABILITY_HISTOGRAM_H
