//===- observability/MissAttribution.h - Per-field miss sink ---*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standalone reproduction of HP Caliper's data-cache attribution
/// (paper §3.1): every simulated access — and in particular every
/// first-level miss event — is mapped back to (record type, field,
/// access PC). The advisor's one-shot correlation consumed this table
/// and threw it away; this sink keeps it as a first-class, machine-
/// readable artifact that tooling and CI can diff across runs.
///
/// Sites are interned up front (at interpreter decode time) into dense
/// ids, so the per-access hot path is three array bumps; only the miss
/// path touches the per-PC map. Accesses that do not go through a
/// field address (array elements, globals, memset/memcpy traffic) are
/// attributed to reserved pseudo-sites, so the heatmap partitions the
/// simulator's miss total exactly: the sum over all sites equals
/// CacheSim's first-level miss event count, by construction and
/// cross-checked in tests.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_OBSERVABILITY_MISSATTRIBUTION_H
#define SLO_OBSERVABILITY_MISSATTRIBUTION_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace slo {

/// Per-field (or pseudo-site) access and miss statistics.
struct AttributedSiteStats {
  std::string Record; // Record type name, or a "(...)" pseudo-site tag.
  std::string Field;  // Field name, empty for pseudo-sites.
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  /// First-level miss events (the PMU-attributable event: at most one
  /// per access, even when a straddle fills two lines).
  uint64_t Misses = 0;
  /// Sum of access latencies in cycles (loads and stores).
  uint64_t TotalLatency = 0;
  /// Miss events per access PC ("function+codeindex" at registration).
  std::map<std::string, uint64_t> MissesByPc;
};

/// The sink. One per simulated run; not thread-safe (each Interpreter
/// owns its CacheSim and its sink, like the per-run cache state).
class MissAttribution {
public:
  using SiteId = uint32_t;

  /// Pseudo-sites for traffic with no field provenance. Registered at
  /// construction so ids 0..2 are always valid.
  static constexpr SiteId UntypedSite = 0;  // Non-field loads/stores.
  static constexpr SiteId MemsetSite = 1;   // memset line traffic.
  static constexpr SiteId MemcpySite = 2;   // memcpy line traffic.

  MissAttribution();

  /// Interns one (record, field) site; returns a dense id. Repeated
  /// registration of the same pair returns the same id.
  SiteId registerField(const std::string &Record, const std::string &Field);

  /// Interns an access-PC label for \p Pc (an opaque 64-bit token; the
  /// interpreter packs function index and code index). Labels are
  /// resolved lazily on the miss path only.
  void notePcLabel(uint64_t Pc, const std::string &Label);

  /// Records one simulated access at \p Site from \p Pc.
  void recordAccess(SiteId Site, uint64_t Pc, bool IsStore, bool Miss,
                    unsigned Latency) {
    AttributedSiteStats &S = Sites[Site];
    if (IsStore)
      ++S.Stores;
    else
      ++S.Loads;
    S.TotalLatency += Latency;
    if (Miss) {
      ++S.Misses;
      ++TotalMissEvents;
      ++MissesByRawPc[Pc].second;
      MissesByRawPc[Pc].first = Site;
    }
  }

  /// Sum of miss events over every site — must equal the simulator's
  /// first-level miss event count.
  uint64_t totalMisses() const { return TotalMissEvents; }

  /// All sites with any traffic, pseudo-sites included, with the per-PC
  /// miss breakdown folded in (PCs with no label render as "pc:<hex>").
  std::vector<AttributedSiteStats> collect() const;

  /// The per-field miss heatmap as a JSON object:
  /// {"total_misses": N, "sites": [{record, field, loads, stores,
  ///  misses, avg_latency, pcs: {label: misses}}...]} sorted by misses
  /// descending then name, so the artifact is deterministic.
  std::string renderHeatmapJson() const;

private:
  std::vector<AttributedSiteStats> Sites;
  std::map<std::pair<std::string, std::string>, SiteId> FieldIds;
  std::map<uint64_t, std::string> PcLabels;
  /// Pc -> (owning site, miss events). A PC belongs to one DInst and so
  /// to one site.
  std::map<uint64_t, std::pair<SiteId, uint64_t>> MissesByRawPc;
  uint64_t TotalMissEvents = 0;
};

} // namespace slo

#endif // SLO_OBSERVABILITY_MISSATTRIBUTION_H
