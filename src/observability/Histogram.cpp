//===- observability/Histogram.cpp - Log-bucketed latency histograms ------===//

#include "observability/Histogram.h"

#include <algorithm>
#include <cmath>

using namespace slo;

//===----------------------------------------------------------------------===//
// Bucket geometry
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketFor(uint64_t V) {
  if (V < ExactLimit)
    return static_cast<unsigned>(V);
  // Octave = floor(log2(V)) >= 5; the top 4 bits below the leading bit
  // select one of 16 sub-buckets inside the octave.
  unsigned Octave = 63 - static_cast<unsigned>(__builtin_clzll(V));
  unsigned Sub = static_cast<unsigned>((V >> (Octave - 4)) & (SubBuckets - 1));
  unsigned B = static_cast<unsigned>(ExactLimit) + (Octave - 5) * SubBuckets +
               Sub;
  return B < NumBuckets ? B : NumBuckets - 1;
}

uint64_t Histogram::bucketUpperBound(unsigned B) {
  if (B < ExactLimit)
    return B;
  unsigned Octave = 5 + (B - static_cast<unsigned>(ExactLimit)) / SubBuckets;
  unsigned Sub = (B - static_cast<unsigned>(ExactLimit)) % SubBuckets;
  // Sub-bucket Sub of octave O covers [(16+Sub) << (O-4), ((16+Sub+1)
  // << (O-4)) - 1]; the top bucket's bound saturates at UINT64_MAX.
  if (Octave >= 63 && Sub == SubBuckets - 1)
    return UINT64_MAX;
  return ((static_cast<uint64_t>(SubBuckets) + Sub + 1) << (Octave - 4)) - 1;
}

uint64_t HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  if (Rank == 0)
    Rank = 1;
  uint64_t Cum = 0;
  for (unsigned B = 0; B < Buckets.size(); ++B) {
    Cum += Buckets[B];
    if (Cum >= Rank) {
      // Never report a bound above the exact max: the top occupied
      // bucket's upper bound can overshoot the largest recorded value.
      uint64_t Bound = Histogram::bucketUpperBound(B);
      return std::min(Bound, Max);
    }
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// Sharded recording (the CounterRegistry pattern)
//===----------------------------------------------------------------------===//

struct Histogram::Shard {
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

namespace {

struct ShardCacheEntry {
  const void *Histogram = nullptr;
  uint64_t Generation = 0;
  void *Shard = nullptr;
};

thread_local std::vector<ShardCacheEntry> TLSCache;

std::atomic<uint64_t> NextGeneration{1};

} // namespace

Histogram::Histogram()
    : Generation(NextGeneration.fetch_add(1, std::memory_order_relaxed)) {}

Histogram::~Histogram() = default;

Histogram::Shard &Histogram::localShard() {
  for (const ShardCacheEntry &E : TLSCache)
    if (E.Histogram == this && E.Generation == Generation)
      return *static_cast<Shard *>(E.Shard);
  Shard *S;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shards.push_back(std::make_unique<Shard>());
    S = Shards.back().get();
  }
  TLSCache.push_back({this, Generation, S});
  return *S;
}

void Histogram::record(uint64_t V) {
  Shard &S = localShard();
  // Single-writer per shard: relaxed everywhere, the merge orders itself
  // with the histogram mutex.
  S.Count.fetch_add(1, std::memory_order_relaxed);
  S.Sum.fetch_add(V, std::memory_order_relaxed);
  uint64_t Cur = S.Max.load(std::memory_order_relaxed);
  while (V > Cur &&
         !S.Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
  S.Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Out;
  Out.Buckets.assign(NumBuckets, 0);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &S : Shards) {
      Out.Count += S->Count.load(std::memory_order_relaxed);
      Out.Sum += S->Sum.load(std::memory_order_relaxed);
      Out.Max = std::max(Out.Max, S->Max.load(std::memory_order_relaxed));
      for (unsigned B = 0; B < NumBuckets; ++B) {
        uint64_t N = S->Buckets[B].load(std::memory_order_relaxed);
        if (N)
          Out.Buckets[B] += N;
      }
    }
  }
  while (!Out.Buckets.empty() && Out.Buckets.back() == 0)
    Out.Buckets.pop_back();
  return Out;
}

//===----------------------------------------------------------------------===//
// Registry + rendering
//===----------------------------------------------------------------------===//

Histogram &HistogramRegistry::get(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(Name, std::make_unique<Histogram>()).first;
  return *It->second;
}

std::map<std::string, HistogramSnapshot> HistogramRegistry::snapshotAll() const {
  // Pointer snapshot first: Histogram::snapshot() takes the histogram's
  // own mutex and must not run under the registry lock a recording
  // thread may want for get().
  std::vector<std::pair<std::string, const Histogram *>> Entries;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Name, H] : Histograms)
      Entries.emplace_back(Name, H.get());
  }
  std::map<std::string, HistogramSnapshot> Out;
  for (const auto &[Name, H] : Entries)
    Out.emplace(Name, H->snapshot());
  return Out;
}

std::string slo::renderHistogramSnapshotJson(const HistogramSnapshot &S) {
  std::string Out = "{\"count\": " + std::to_string(S.Count);
  Out += ", \"sum\": " + std::to_string(S.Sum);
  Out += ", \"max\": " + std::to_string(S.Max);
  Out += ", \"p50\": " + std::to_string(S.quantile(0.50));
  Out += ", \"p90\": " + std::to_string(S.quantile(0.90));
  Out += ", \"p99\": " + std::to_string(S.quantile(0.99));
  Out += "}";
  return Out;
}

std::string HistogramRegistry::renderJson() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, S] : snapshotAll()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += '"';
    Out += Name; // Histogram names are dotted identifiers; no escaping.
    Out += "\": ";
    Out += renderHistogramSnapshotJson(S);
  }
  Out += "}";
  return Out;
}

namespace {

/// "service.latency.PutSource" -> "slo_service_latency_PutSource":
/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string promName(const std::string &Name) {
  std::string Out = "slo_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9');
    Out.push_back(Ok ? C : '_');
  }
  return Out;
}

} // namespace

std::string HistogramRegistry::renderPrometheus() const {
  std::string Out;
  for (const auto &[Name, S] : snapshotAll()) {
    std::string M = promName(Name);
    Out += "# HELP " + M + " " + Name + " (microseconds)\n";
    Out += "# TYPE " + M + " histogram\n";
    // Cumulative le-buckets at every non-empty boundary: sparse but
    // valid exposition (le values must be increasing, +Inf mandatory).
    uint64_t Cum = 0;
    for (unsigned B = 0; B < S.Buckets.size(); ++B) {
      if (S.Buckets[B] == 0)
        continue;
      Cum += S.Buckets[B];
      Out += M + "_bucket{le=\"" +
             std::to_string(Histogram::bucketUpperBound(B)) + "\"} " +
             std::to_string(Cum) + "\n";
    }
    Out += M + "_bucket{le=\"+Inf\"} " + std::to_string(S.Count) + "\n";
    Out += M + "_sum " + std::to_string(S.Sum) + "\n";
    Out += M + "_count " + std::to_string(S.Count) + "\n";
  }
  return Out;
}
