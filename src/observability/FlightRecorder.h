//===- observability/FlightRecorder.h - Event ring for post-mortems *- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on, fixed-size ring buffer of recent events, dumped as
/// structured JSON when something goes wrong — the black-box model: the
/// recorder is cheap enough to never turn off (a POD store into a
/// preallocated ring, one clock read per event, no allocation, no lock),
/// so a post-mortem of a timeout or a malformed frame does not need a
/// repro.
///
/// The recorder is deliberately domain-blind: an event is four small
/// integers (kind, code, size, duration) plus a timestamp relative to
/// the recorder's epoch. The advisory daemon records one recorder per
/// connection (single-writer, so the ring needs no synchronization) with
/// kind = protocol event class and code = opcode or error code — never
/// payload bytes, so a dump can be shipped without leaking source text.
/// renderJson() takes an optional describe callback mapping (kind, code)
/// to human-readable names.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_OBSERVABILITY_FLIGHTRECORDER_H
#define SLO_OBSERVABILITY_FLIGHTRECORDER_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace slo {

/// Fixed-capacity ring of POD events. Single-writer; readers must
/// externally order against the writer (the daemon dumps from the
/// owning connection thread only).
class FlightRecorder {
public:
  struct Event {
    uint64_t TMicros = 0;   ///< Since the recorder's epoch.
    uint16_t Kind = 0;      ///< Caller-defined event class.
    uint16_t Code = 0;      ///< Caller-defined detail (opcode, errno, ...).
    uint32_t Size = 0;      ///< Associated byte count, if any.
    uint32_t DurMicros = 0; ///< Associated duration, if any (saturated).
  };

  /// Names for one event, produced by the describe callback.
  struct Description {
    std::string Kind;
    std::string Code;
  };
  using DescribeFn = std::function<Description(const Event &)>;

  /// \p Capacity 0 disables the recorder entirely: push() records
  /// nothing and reads no clock (the telemetry-off contract).
  explicit FlightRecorder(size_t Capacity)
      : Capacity(Capacity), Epoch(std::chrono::steady_clock::now()) {
    Ring.reserve(Capacity);
  }

  bool enabled() const { return Capacity != 0; }
  size_t capacity() const { return Capacity; }
  /// Events currently held (<= capacity; older ones were overwritten).
  size_t size() const { return Ring.size(); }
  /// Events pushed over the recorder's lifetime.
  uint64_t recorded() const { return Recorded; }

  /// Records one event, overwriting the oldest once full.
  void push(uint16_t Kind, uint16_t Code, uint32_t Size, uint32_t DurMicros) {
    if (!Capacity)
      return;
    Event E;
    E.TMicros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
    E.Kind = Kind;
    E.Code = Code;
    E.Size = Size;
    E.DurMicros = DurMicros;
    if (Ring.size() < Capacity) {
      Ring.push_back(E);
    } else {
      Ring[Next] = E;
      Next = (Next + 1) % Capacity;
    }
    ++Recorded;
  }

  /// Events oldest-first.
  std::vector<Event> events() const;

  /// {"flight_recorder": {"reason": R, ...context..., "dropped": N,
  /// "events": [...]}}. \p Context is spliced in verbatim as extra
  /// key/value text (may be empty); \p Describe, when set, adds "kind"
  /// and "code" name strings to each event.
  std::string renderJson(const std::string &Reason,
                         const std::string &Context = std::string(),
                         const DescribeFn &Describe = nullptr) const;

private:
  size_t Capacity;
  std::chrono::steady_clock::time_point Epoch;
  std::vector<Event> Ring;
  size_t Next = 0; ///< Overwrite cursor once the ring is full.
  uint64_t Recorded = 0;
};

} // namespace slo

#endif // SLO_OBSERVABILITY_FLIGHTRECORDER_H
