//===- observability/CounterRegistry.cpp - Sharded counters ---------------===//

#include "observability/CounterRegistry.h"

#include <algorithm>
#include <cassert>

using namespace slo;

namespace {

/// Thread-local cache mapping registries to this thread's shard. A
/// generation tag guards against a destroyed registry being reallocated
/// at the same address. Linear scan: a thread touches very few distinct
/// registries, and the common case is a hit on the first entry.
struct ShardCacheEntry {
  const void *Registry = nullptr;
  uint64_t Generation = 0;
  void *Shard = nullptr;
};

thread_local std::vector<ShardCacheEntry> TLSCache;

std::atomic<uint64_t> NextGeneration{1};

} // namespace

CounterRegistry::CounterRegistry()
    : Generation(NextGeneration.fetch_add(1, std::memory_order_relaxed)) {}

CounterRegistry::~CounterRegistry() = default;

CounterRegistry::CounterId CounterRegistry::id(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  assert(Names.size() < MaxCounters && "counter registry is full");
  CounterId C = static_cast<CounterId>(Names.size());
  Names.push_back(Name);
  Ids.emplace(Name, C);
  return C;
}

CounterRegistry::Shard &CounterRegistry::localShard() {
  for (const ShardCacheEntry &E : TLSCache)
    if (E.Registry == this && E.Generation == Generation)
      return *static_cast<Shard *>(E.Shard);
  Shard *S;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shards.push_back(std::make_unique<Shard>());
    S = Shards.back().get();
  }
  TLSCache.push_back({this, Generation, S});
  return *S;
}

void CounterRegistry::add(CounterId C, uint64_t N) {
  assert(C < MaxCounters && "counter id out of range");
  // Single-writer per shard: relaxed is enough, the merge path orders
  // itself with the registry mutex.
  localShard().Slots[C].fetch_add(N, std::memory_order_relaxed);
}

uint64_t CounterRegistry::value(CounterId C) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S->Slots[C].load(std::memory_order_relaxed);
  return Sum;
}

uint64_t CounterRegistry::value(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Ids.find(Name);
  if (It == Ids.end())
    return 0;
  uint64_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S->Slots[It->second].load(std::memory_order_relaxed);
  return Sum;
}

std::map<std::string, uint64_t> CounterRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, C] : Ids) {
    uint64_t Sum = 0;
    for (const auto &S : Shards)
      Sum += S->Slots[C].load(std::memory_order_relaxed);
    Out[Name] = Sum;
  }
  return Out;
}

std::string CounterRegistry::renderText() const {
  std::string Out;
  for (const auto &[Name, V] : snapshot()) {
    Out += Name;
    Out += ' ';
    Out += std::to_string(V);
    Out += '\n';
  }
  return Out;
}

std::string CounterRegistry::renderJson() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, V] : snapshot()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += '"';
    Out += Name; // Counter names are identifiers; no escaping needed.
    Out += "\": ";
    Out += std::to_string(V);
  }
  Out += "}";
  return Out;
}
