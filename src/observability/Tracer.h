//===- observability/Tracer.h - Hierarchical phase tracing -----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records hierarchical phase spans — FE -> IPA -> BE pipeline stages,
/// individual analyses and transforms, and per-workload interpretation —
/// with wall time and a small per-thread id. Spans from ThreadPool
/// workers interleave freely; nesting is per thread (a span opened on a
/// worker closes on that worker), which is exactly the model of the
/// Chrome trace_event viewer the output targets.
///
/// Rendering:
///  - renderChromeJson(): "X" (complete) events in the trace_event JSON
///    schema, loadable in chrome://tracing or https://ui.perfetto.dev;
///  - renderTextSummary(): per-span-name aggregation (count, total and
///    max wall time) sorted by total time, for terminal consumption.
///
/// Tracing off is a null Tracer pointer everywhere: call sites guard
/// with a single branch (TraceSpan on a null tracer reads no clock and
/// takes no lock), so a disabled build path costs nothing measurable.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_OBSERVABILITY_TRACER_H
#define SLO_OBSERVABILITY_TRACER_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace slo {

/// Collects completed spans; thread-safe.
class Tracer {
public:
  using Clock = std::chrono::steady_clock;

  struct Event {
    std::string Name;
    std::string Category;
    uint64_t StartMicros = 0; // Relative to the tracer's epoch.
    uint64_t DurMicros = 0;
    uint32_t ThreadId = 0; // Small dense id, not the OS tid.
  };

  Tracer() : Epoch(Clock::now()) {}

  /// Records one completed span. Called by TraceSpan's destructor.
  void record(std::string Name, std::string Category, Clock::time_point Start,
              Clock::time_point End);

  /// All events recorded so far, in completion order.
  std::vector<Event> events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string renderChromeJson() const;

  /// Per-name aggregation: "count total_ms max_ms name", sorted by
  /// total descending.
  std::string renderTextSummary() const;

  Clock::time_point epoch() const { return Epoch; }

private:
  mutable std::mutex Mutex;
  std::vector<Event> Events;
  Clock::time_point Epoch;
};

/// RAII span. On a null tracer this is fully inert: no clock read, no
/// allocation, no lock — the guarded fast path for tracing-off runs.
class TraceSpan {
public:
  TraceSpan(Tracer *T, const char *Name, const char *Category = "phase")
      : T(T) {
    if (T) {
      this->Name = Name;
      this->Category = Category;
      Start = Tracer::Clock::now();
    }
  }

  /// Spans are scope-bound; moving or copying one would double-record.
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  ~TraceSpan() {
    if (T)
      T->record(std::move(Name), std::move(Category), Start,
                Tracer::Clock::now());
  }

private:
  Tracer *T;
  std::string Name;
  std::string Category;
  Tracer::Clock::time_point Start;
};

} // namespace slo

#endif // SLO_OBSERVABILITY_TRACER_H
