//===- observability/MissAttribution.cpp - Per-field miss sink ------------===//

#include "observability/MissAttribution.h"

#include "support/Diagnostics.h" // escapeJson
#include "support/Format.h"

#include <algorithm>

using namespace slo;

MissAttribution::MissAttribution() {
  // Reserve the pseudo-sites so ids are stable constants.
  Sites.resize(3);
  Sites[UntypedSite].Record = "(untyped)";
  Sites[MemsetSite].Record = "(memset)";
  Sites[MemcpySite].Record = "(memcpy)";
}

MissAttribution::SiteId
MissAttribution::registerField(const std::string &Record,
                               const std::string &Field) {
  auto Key = std::make_pair(Record, Field);
  auto It = FieldIds.find(Key);
  if (It != FieldIds.end())
    return It->second;
  SiteId Id = static_cast<SiteId>(Sites.size());
  Sites.emplace_back();
  Sites.back().Record = Record;
  Sites.back().Field = Field;
  FieldIds.emplace(std::move(Key), Id);
  return Id;
}

void MissAttribution::notePcLabel(uint64_t Pc, const std::string &Label) {
  PcLabels.emplace(Pc, Label);
}

std::vector<AttributedSiteStats> MissAttribution::collect() const {
  std::vector<AttributedSiteStats> Out = Sites;
  for (const auto &[Pc, SiteMisses] : MissesByRawPc) {
    auto It = PcLabels.find(Pc);
    std::string Label = It != PcLabels.end()
                            ? It->second
                            : formatString("pc:%llx",
                                           static_cast<unsigned long long>(
                                               Pc));
    Out[SiteMisses.first].MissesByPc[Label] += SiteMisses.second;
  }
  // Drop sites with no traffic at all (pseudo-sites included when idle).
  Out.erase(std::remove_if(Out.begin(), Out.end(),
                           [](const AttributedSiteStats &S) {
                             return S.Loads == 0 && S.Stores == 0 &&
                                    S.Misses == 0;
                           }),
            Out.end());
  return Out;
}

std::string MissAttribution::renderHeatmapJson() const {
  std::vector<AttributedSiteStats> All = collect();
  std::stable_sort(All.begin(), All.end(),
                   [](const AttributedSiteStats &A,
                      const AttributedSiteStats &B) {
                     if (A.Misses != B.Misses)
                       return A.Misses > B.Misses;
                     if (A.Record != B.Record)
                       return A.Record < B.Record;
                     return A.Field < B.Field;
                   });
  std::string Out = formatString(
      "{\n  \"total_misses\": %llu,\n  \"sites\": [\n",
      static_cast<unsigned long long>(TotalMissEvents));
  for (size_t I = 0; I < All.size(); ++I) {
    const AttributedSiteStats &S = All[I];
    if (I)
      Out += ",\n";
    uint64_t Accesses = S.Loads + S.Stores;
    double AvgLat =
        Accesses ? static_cast<double>(S.TotalLatency) /
                       static_cast<double>(Accesses)
                 : 0.0;
    Out += formatString(
        "    {\"record\": \"%s\", \"field\": \"%s\", \"loads\": %llu, "
        "\"stores\": %llu, \"misses\": %llu, \"avg_latency\": %.3f, "
        "\"pcs\": {",
        escapeJson(S.Record).c_str(), escapeJson(S.Field).c_str(),
        static_cast<unsigned long long>(S.Loads),
        static_cast<unsigned long long>(S.Stores),
        static_cast<unsigned long long>(S.Misses), AvgLat);
    bool FirstPc = true;
    for (const auto &[Label, N] : S.MissesByPc) {
      if (!FirstPc)
        Out += ", ";
      FirstPc = false;
      Out += formatString("\"%s\": %llu", escapeJson(Label).c_str(),
                          static_cast<unsigned long long>(N));
    }
    Out += "}}";
  }
  Out += "\n  ]\n}\n";
  return Out;
}
