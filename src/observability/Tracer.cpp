//===- observability/Tracer.cpp - Hierarchical phase tracing --------------===//

#include "observability/Tracer.h"

#include "support/Diagnostics.h" // escapeJson
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <map>

using namespace slo;

namespace {

/// Small dense thread ids, assigned on first trace from each thread.
/// Stable across tracers so one process's traces line up.
uint32_t localThreadId() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

uint64_t microsBetween(Tracer::Clock::time_point A,
                       Tracer::Clock::time_point B) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(B - A).count());
}

} // namespace

void Tracer::record(std::string Name, std::string Category,
                    Clock::time_point Start, Clock::time_point End) {
  Event E;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.StartMicros = microsBetween(Epoch, Start);
  E.DurMicros = microsBetween(Start, End);
  E.ThreadId = localThreadId();
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back(std::move(E));
}

std::vector<Tracer::Event> Tracer::events() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events;
}

std::string Tracer::renderChromeJson() const {
  std::vector<Event> Evs = events();
  // The viewer sorts by timestamp itself, but a sorted file diffs better
  // across runs.
  std::stable_sort(Evs.begin(), Evs.end(),
                   [](const Event &A, const Event &B) {
                     return A.StartMicros < B.StartMicros;
                   });
  std::string Out = "{\"traceEvents\": [\n";
  for (size_t I = 0; I < Evs.size(); ++I) {
    const Event &E = Evs[I];
    if (I)
      Out += ",\n";
    Out += formatString(
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %u}",
        escapeJson(E.Name).c_str(), escapeJson(E.Category).c_str(),
        static_cast<unsigned long long>(E.StartMicros),
        static_cast<unsigned long long>(E.DurMicros), E.ThreadId);
  }
  Out += "\n]}\n";
  return Out;
}

std::string Tracer::renderTextSummary() const {
  struct Agg {
    uint64_t Count = 0;
    uint64_t TotalMicros = 0;
    uint64_t MaxMicros = 0;
  };
  std::map<std::string, Agg> ByName;
  for (const Event &E : events()) {
    Agg &A = ByName[E.Name];
    ++A.Count;
    A.TotalMicros += E.DurMicros;
    A.MaxMicros = std::max(A.MaxMicros, E.DurMicros);
  }
  std::vector<std::pair<std::string, Agg>> Rows(ByName.begin(), ByName.end());
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const auto &A, const auto &B) {
                     return A.second.TotalMicros > B.second.TotalMicros;
                   });
  std::string Out =
      formatString("%8s %12s %12s  %s\n", "count", "total-ms", "max-ms",
                   "span");
  for (const auto &[Name, A] : Rows)
    Out += formatString("%8llu %12.3f %12.3f  %s\n",
                        static_cast<unsigned long long>(A.Count),
                        static_cast<double>(A.TotalMicros) / 1000.0,
                        static_cast<double>(A.MaxMicros) / 1000.0,
                        Name.c_str());
  return Out;
}
