//===- observability/SampledPmu.h - Sampled PMU emulation ------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HP Caliper stand-in (paper §3.1): a sampling layer over the cache
/// simulator's event stream that produces *estimated* per-field d-cache
/// statistics the way a real PMU collection does — periodic samples, not
/// exact counts. The rest of the repo's exact MissAttribution sink is an
/// oracle no deployment could afford; this layer reproduces the sampled
/// regime the paper actually ran under, so the profile-quality harness
/// can measure how layout advice degrades with the sampling period.
///
/// Three emulated event counters, each firing every ~Period events of its
/// kind (the PMU "counter overflow" interrupt):
///
///   access   every simulated access; a sample adds Period to the site's
///            load or store estimate (and latency, when no DLAT threshold
///            is configured).
///   miss     every first-level miss event; a sample adds Period to the
///            site's miss estimate. With skid, attribution lands on the
///            site of an access up to Skid events *later* — the
///            Itanium-style imprecision where the sampled PC trails the
///            eventing instruction.
///   latency  (DLAT mode, LatencyThreshold > 0) accesses whose latency
///            meets the threshold; a sample adds Latency * Period to the
///            site, emulating EAR-style capture of long-latency loads.
///
/// Inter-sample gaps are jittered — drawn uniformly from [1, 2*Period-1]
/// (mean Period) off deterministic Rng::split() streams — so sampling
/// cannot lock step with a loop's access pattern. Period 1 degenerates
/// to a gap of exactly 1 on every counter: with Skid 0 the estimates
/// reproduce the exact per-field statistics bit for bit, the identity
/// invariant the tests pin on all twelve workloads.
///
/// Sites are interned like MissAttribution's: an opaque record key plus a
/// field index, registered at interpreter decode time, so the hot path is
/// a few countdown decrements. One SampledPmu observes one run; merging
/// across runs happens at the FeedbackFile level (FeedbackFile::merge).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_OBSERVABILITY_SAMPLEDPMU_H
#define SLO_OBSERVABILITY_SAMPLEDPMU_H

#include "support/Random.h"

#include <cstdint>
#include <map>
#include <vector>

namespace slo {

class CounterRegistry;

/// Configuration of the emulated PMU collection.
struct SampledPmuConfig {
  /// Mean events per sample on every counter. 1 = sample everything
  /// (exact); real collections run 1000+.
  uint64_t Period = 1;
  /// Maximum skid of a miss sample, in subsequent access events. The
  /// actual displacement of each sample is drawn from [0, Skid].
  unsigned Skid = 0;
  /// Randomize inter-sample gaps (uniform in [1, 2*Period-1]). Off makes
  /// every gap exactly Period — useful for tests, but susceptible to
  /// lockstep aliasing with loop bodies, which is why real profilers
  /// randomize.
  bool Jitter = true;
  /// Seed of the jitter/skid streams; the two streams are split() off a
  /// generator seeded with this, so a run's samples are a deterministic
  /// function of (seed, event stream).
  uint64_t Seed = 0x510ACA11;
  /// DLAT mode: when nonzero, latency estimates come only from a
  /// dedicated counter over accesses with Latency >= this threshold
  /// (cycles); access samples then carry no latency.
  uint64_t LatencyThreshold = 0;
};

/// One run's sampled PMU state. Not thread-safe: each Interpreter owns
/// its own (like its CacheSim).
class SampledPmu {
public:
  using SiteId = uint32_t;

  /// Traffic with no field provenance (array elements, globals,
  /// memset/memcpy lines). Always registered; samples landing here are
  /// counted but produce no field estimate — exactly the profile mass a
  /// real PMU attributes outside any structure field.
  static constexpr SiteId UntypedSite = 0;

  explicit SampledPmu(const SampledPmuConfig &Config);

  /// Interns one (record key, field) site; repeated registration returns
  /// the same id. The key is opaque to the PMU (the interpreter passes
  /// its RecordType pointer) so this layer stays IR-independent.
  SiteId registerSite(const void *RecordKey, unsigned FieldIndex);

  /// Observes one simulated access. Hot path: a pending-skid test and
  /// three countdown decrements in the common no-sample case.
  void observeAccess(SiteId Site, bool IsStore, bool FirstLevelMiss,
                     unsigned Latency) {
    ++Events;
    if (PendingMiss) {
      if (SkidLeft == 0)
        landMissSample(Site);
      else
        --SkidLeft;
    }
    if (--AccessGap == 0) {
      AccessGap = drawGap();
      takeAccessSample(Site, IsStore, Latency);
    }
    if (Cfg.LatencyThreshold && Latency >= Cfg.LatencyThreshold &&
        --LatencyGap == 0) {
      LatencyGap = drawGap();
      takeLatencySample(Site, IsStore, Latency);
    }
    if (FirstLevelMiss) {
      ++MissEvents;
      if (--MissGap == 0) {
        MissGap = drawGap();
        ++MissSamplesTaken;
        if (Cfg.Skid == 0) {
          PendingOrigin = Site;
          landMissSample(Site);
        } else {
          if (PendingMiss)
            ++SkidCollisions; // Overwritten before landing.
          PendingOrigin = Site;
          uint64_t D = SkidRng.nextBelow(Cfg.Skid + 1);
          if (D == 0) {
            PendingMiss = false;
            landMissSample(Site);
          } else {
            PendingMiss = true;
            SkidLeft = D - 1; // Lands on the D'th following access.
          }
        }
      }
    }
  }

  /// Ends the run: a miss sample still in flight (skid past the last
  /// access) is dropped and counted. Call exactly once.
  void finishRun();

  /// Period-scaled estimate for one field site.
  struct SiteEstimate {
    const void *RecordKey = nullptr;
    unsigned FieldIndex = 0;
    uint64_t Loads = 0;
    uint64_t Stores = 0;
    uint64_t Misses = 0;
    double TotalLatency = 0.0;
  };

  /// All field sites with at least one sample, in registration order
  /// (deterministic). UntypedSite is never included.
  std::vector<SiteEstimate> estimates() const;

  // -- Collection telemetry (the profile.samples_* counters) --
  uint64_t eventsSeen() const { return Events; }
  uint64_t missEventsSeen() const { return MissEvents; }
  uint64_t accessSamples() const { return AccessSamplesTaken; }
  uint64_t missSamples() const { return MissSamplesTaken; }
  uint64_t latencySamples() const { return LatencySamplesTaken; }
  /// Miss samples whose skid displaced them onto a different site than
  /// the eventing access's.
  uint64_t skidDisplaced() const { return SkidDisplaced; }
  /// Miss samples lost to skid: landed on untyped traffic, overwritten
  /// by a newer sample, or still in flight at run end.
  uint64_t samplesDroppedUntyped() const { return DroppedUntyped; }
  uint64_t samplesDroppedCollision() const { return SkidCollisions; }
  uint64_t samplesDroppedEndOfRun() const { return DroppedEndOfRun; }

  /// Publishes the telemetry under "profile.samples_*".
  void publishCounters(CounterRegistry &Counters) const;

  const SampledPmuConfig &config() const { return Cfg; }

private:
  struct Site {
    const void *RecordKey = nullptr;
    unsigned FieldIndex = 0;
    uint64_t LoadSamples = 0;
    uint64_t StoreSamples = 0;
    uint64_t MissSamples = 0;
    double LatencySum = 0.0; // Unscaled sampled latencies.
  };

  uint64_t drawGap() {
    if (Cfg.Period <= 1)
      return 1;
    if (!Cfg.Jitter)
      return Cfg.Period;
    return 1 + JitterRng.nextBelow(2 * Cfg.Period - 1);
  }

  void takeAccessSample(SiteId S, bool IsStore, unsigned Latency) {
    ++AccessSamplesTaken;
    Site &Slot = Sites[S];
    if (IsStore) {
      ++Slot.StoreSamples;
    } else {
      ++Slot.LoadSamples;
      if (!Cfg.LatencyThreshold)
        Slot.LatencySum += static_cast<double>(Latency);
    }
  }

  void takeLatencySample(SiteId S, bool IsStore, unsigned Latency) {
    if (IsStore)
      return; // EAR-style capture records loads.
    ++LatencySamplesTaken;
    Sites[S].LatencySum += static_cast<double>(Latency);
  }

  void landMissSample(SiteId S) {
    PendingMiss = false;
    if (S != PendingOrigin)
      ++SkidDisplaced;
    if (S == UntypedSite) {
      ++DroppedUntyped;
      return;
    }
    ++Sites[S].MissSamples;
  }

  SampledPmuConfig Cfg;
  Rng JitterRng;
  Rng SkidRng;

  std::vector<Site> Sites;
  std::map<std::pair<const void *, unsigned>, SiteId> SiteIds;

  uint64_t AccessGap = 1;
  uint64_t MissGap = 1;
  uint64_t LatencyGap = 1;

  bool PendingMiss = false;
  uint64_t SkidLeft = 0;
  SiteId PendingOrigin = UntypedSite;
  bool Finished = false;

  uint64_t Events = 0;
  uint64_t MissEvents = 0;
  uint64_t AccessSamplesTaken = 0;
  uint64_t MissSamplesTaken = 0;
  uint64_t LatencySamplesTaken = 0;
  uint64_t SkidDisplaced = 0;
  uint64_t SkidCollisions = 0;
  uint64_t DroppedUntyped = 0;
  uint64_t DroppedEndOfRun = 0;
};

} // namespace slo

#endif // SLO_OBSERVABILITY_SAMPLEDPMU_H
