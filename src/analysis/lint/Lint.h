//===- analysis/lint/Lint.h - Layout-hazard lint suite ---------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint suite over the linked module, built on the generic dataflow
/// solver (analysis/Dataflow.h):
///
///   memory safety  a forward must/may analysis per function over local
///                  pointer variables and allocation sites: definite
///                  uninitialized reads, use-after-free, double free,
///                  free of non-heap or interior pointers, dereference
///                  on must-null paths, and definite heap leaks.
///   layout pinning objects viewed as a record type but addressed
///                  through a foreign-typed lens (cast puns) or through
///                  out-of-bounds arithmetic on a field address. These
///                  findings are load-bearing: LegalityRefine demotes
///                  pinned types out of Proven.
///
/// Every finding is a *definite* (must) claim along some path — the
/// checkers stay silent rather than report a maybe — which is what the
/// differential fuzzer's lint oracle certifies: a definite memory
/// finding on a dynamically clean generated program is a checker bug,
/// and a dynamic fault or leak on a lint-clean program (with complete
/// heap coverage) is a missed finding.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_LINT_LINT_H
#define SLO_ANALYSIS_LINT_LINT_H

#include "analysis/LegalityRefine.h"
#include "ir/Module.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace slo {

class CounterRegistry;
class LegalityResult;
class PointsToResult;
class Tracer;

enum class LintKind {
  UninitRead,   // read of memory no path has written
  UseAfterFree, // access through a pointer whose allocation is freed
  DoubleFree,   // free of an already-freed allocation
  InvalidFree,  // free of a non-heap or interior pointer
  NullDeref,    // access through a must-null pointer
  Leak,         // heap allocation provably never freed nor escaping
  LayoutPin,    // record layout observed through a foreign-typed lens
};

const char *lintKindName(LintKind K);

/// One lint finding. Memory-safety findings carry Error severity (they
/// describe behaviour the interpreter would trap on or leak) except
/// leaks, which are warnings; layout pinnings are notes — advisory in
/// the report, load-bearing through LintResult::Pinnings.
struct LintFinding {
  LintKind Kind = LintKind::UninitRead;
  DiagSeverity Severity = DiagSeverity::Error;
  /// Enclosing function ("" for module-level findings).
  std::string Function;
  /// The offending instruction (null for module-level findings).
  const Instruction *Inst = nullptr;
  /// The pinned record for LayoutPin findings, "" otherwise.
  std::string RecordName;
  std::string Message;
  /// Machine-checkable justification ("root=heap 'a'; state=Freed").
  std::string Fact;
};

struct LintOptions {
  /// Observability hooks, both default off: one "lint/<checker>" span
  /// per checker, and lint.* counter totals.
  Tracer *Trace = nullptr;
  CounterRegistry *Counters = nullptr;

  /// Test-only fault injection: lifetime tracking ignores free(), so
  /// dangling uses go unreported. The differential fuzzer's lint oracle
  /// must catch the resulting missed findings on injected-hazard
  /// programs, proving the oracle is not vacuous.
  bool InjectLifetimeBug = false;
};

struct LintResult {
  std::vector<LintFinding> Findings;
  /// Record types pinned by cast-pun / out-of-bounds findings; pass to
  /// refineLegality to demote them out of Proven.
  LayoutPinnings Pinnings;
  /// True when every heap allocation was tracked to a free or a return
  /// without escaping its function: the leak verdict is then complete,
  /// not just sound (the fuzz oracle's missed-leak direction relies on
  /// this flag).
  bool HeapCoverageComplete = true;
  /// Functions whose dataflow hit the visit budget (no findings are
  /// reported for them).
  unsigned BailedFunctions = 0;

  size_t count(LintKind K) const;
  bool has(LintKind K) const { return count(K) > 0; }
  size_t countSeverity(DiagSeverity S) const;
  bool hasErrors() const { return countSeverity(DiagSeverity::Error) > 0; }
};

/// Runs every checker over the linked module. \p PT enables the layout
/// pinning detector (skipped when null); \p Legal refines pinning
/// severities (a pin on an already-illegal type is a note either way).
LintResult runLint(const Module &M, const PointsToResult *PT = nullptr,
                   const LegalityResult *Legal = nullptr,
                   const LintOptions &Opts = LintOptions());

/// Renders \p R into \p Diags, one diagnostic per finding with code
/// "lint.<kind>".
void reportLintFindings(const LintResult &R, DiagnosticEngine &Diags);

} // namespace slo

#endif // SLO_ANALYSIS_LINT_LINT_H
