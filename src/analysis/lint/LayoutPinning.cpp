//===- analysis/lint/LayoutPinning.cpp - Layout-pinning detector ----------===//
//
// Finds record types whose concrete layout is observable from outside
// the type system, which pins the layout against transformation:
//
//   PIN-1  a cast pun, in either direction: an object viewed as record
//          R is also dereferenced through a foreign-typed lens. Either
//          the cast result itself is foreign ("(long*) p" then raw
//          indexed reads), or the cast *created* the record view over a
//          foreign pointer ("(struct r*) q" where the original q keeps
//          feeding raw reads). Reading R's bytes through the foreign
//          lens hard-codes R's field offsets.
//   PIN-2  out-of-bounds field arithmetic: indexing a taken field
//          address with a nonzero constant. `&p->f + k` reaches
//          sibling fields by their layout distance.
//
// The frontend compiles every named pointer variable into a local
// alloca slot, so both detectors flow values through non-escaping
// slots: forward (a value stored into a slot reappears at its loads)
// when looking for dereferences, and backward (a load yields one of
// the slot's stored values) when looking for a value's origin.
//
// Pinned types are demoted out of Proven by refineLegality; the
// findings themselves are notes (the demotion, not the report, is the
// load-bearing part).
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"
#include "analysis/PointsTo.h"
#include "analysis/lint/Checkers.h"
#include "support/Casting.h"

#include <set>
#include <vector>

using namespace slo;

namespace {

/// True when \p A is a local pointer variable whose address never
/// escapes: every user loads from it or stores a value to it. Loads
/// from such an alloca yield exactly the values stored, so the flow
/// walks below can move through it.
bool isLocalPtrSlot(const AllocaInst *A) {
  if (!A->getAllocatedType()->isPointer())
    return false;
  for (const Instruction *U : A->users()) {
    if (isa<LoadInst>(U))
      continue;
    const auto *St = dyn_cast<StoreInst>(U);
    if (St && St->getPointer() == A && St->getStoredValue() != A)
      continue;
    return false;
  }
  return true;
}

/// True when some transitive use of \p I reads or writes memory through
/// it while its static type is not a pointer to \p Blessed. Casting to
/// Blessed (and everything behind that cast) is the legitimate lens and
/// is skipped; with Blessed null every dereference counts. Values
/// escaping into untracked memory count as observed only when
/// \p Blessed is null (the pure "is this dereferenced" question).
bool hasForeignDeref(const Instruction *I, const RecordType *Blessed,
                     std::set<const Instruction *> &Visited) {
  if (!Visited.insert(I).second)
    return false;
  if (Blessed && strippedRecord(I->getType()) == Blessed)
    return false;
  for (const Instruction *U : I->users()) {
    switch (U->getOpcode()) {
    case Instruction::OpLoad:
      if (cast<LoadInst>(U)->getPointer() == I)
        return true;
      break;
    case Instruction::OpMemset:
    case Instruction::OpMemcpy:
      return true;
    case Instruction::OpStore: {
      const auto *St = cast<StoreInst>(U);
      if (St->getPointer() == I)
        return true;
      const auto *A = dyn_cast<AllocaInst>(St->getPointer());
      if (A && isLocalPtrSlot(A)) {
        for (const Instruction *AU : A->users())
          if (isa<LoadInst>(AU) && hasForeignDeref(AU, Blessed, Visited))
            return true;
      } else if (!Blessed) {
        return true; // escapes into untracked memory: assume observed
      }
      break;
    }
    case Instruction::OpFieldAddr:
      // Field arithmetic in a record type: foreign unless blessed (the
      // blessed case was already cut off above by the type check).
      return true;
    case Instruction::OpIndexAddr:
    case Instruction::OpBitcast:
      if (hasForeignDeref(U, Blessed, Visited))
        return true;
      break;
    default:
      break;
    }
  }
  return false;
}

bool hasForeignDeref(const Instruction *I, const RecordType *Blessed) {
  std::set<const Instruction *> Visited;
  return hasForeignDeref(I, Blessed, Visited);
}

/// Collects the origin values of \p V: strips bitcasts and walks loads
/// of local pointer slots back to the values stored into them. The
/// terminals land in \p Out (allocations, field/index addresses,
/// arguments, call results...).
void collectOrigins(const Value *V, std::set<const Value *> &Seen,
                    std::vector<const Value *> &Out) {
  if (!Seen.insert(V).second)
    return;
  if (const auto *C = dyn_cast<CastInst>(V)) {
    if (C->getOpcode() == Instruction::OpBitcast) {
      collectOrigins(C->getCastOperand(), Seen, Out);
      return;
    }
  }
  if (const auto *Ld = dyn_cast<LoadInst>(V)) {
    const auto *A = dyn_cast<AllocaInst>(Ld->getPointer());
    if (A && isLocalPtrSlot(A)) {
      for (const Instruction *AU : A->users())
        if (const auto *St = dyn_cast<StoreInst>(AU))
          collectOrigins(St->getStoredValue(), Seen, Out);
      return;
    }
  }
  Out.push_back(V);
}

std::vector<const Value *> originsOf(const Value *V) {
  std::set<const Value *> Seen;
  std::vector<const Value *> Out;
  collectOrigins(V, Seen, Out);
  return Out;
}

void pin(LintResult &R, const RecordType *Rec, const Instruction *I,
         std::string Message, std::string Fact) {
  LintFinding LF;
  LF.Kind = LintKind::LayoutPin;
  LF.Severity = DiagSeverity::Note;
  LF.Function = I->getParent() && I->getParent()->getParent()
                    ? I->getParent()->getParent()->getName()
                    : "";
  LF.Inst = I;
  LF.RecordName = Rec->getRecordName();
  LF.Message = std::move(Message);
  LF.Fact = std::move(Fact);
  R.Findings.push_back(std::move(LF));
  R.Pinnings.Reasons.emplace(Rec, R.Findings.back().Message);
}

} // namespace

void slo::lint_detail::checkLayoutPinning(const Module &M,
                                          const PointsToResult &PT,
                                          const LegalityResult *Legal,
                                          LintResult &R) {
  (void)Legal;
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        if (I->getOpcode() == Instruction::OpBitcast &&
            I->getType()->isPointer()) {
          const RecordType *DestRec = strippedRecord(I->getType());
          // PIN-1, outbound: the cast result is a foreign lens over an
          // object some record view owns.
          if (hasForeignDeref(I.get(), /*Blessed=*/nullptr)) {
            for (PointsToResult::ObjectID O : PT.pointedObjects(I.get())) {
              for (const RecordType *RV : PT.object(O).Views) {
                if (RV == DestRec || R.Pinnings.isPinned(RV))
                  continue; // one witness per type is enough
                pin(R, RV, I.get(),
                    "layout of 'struct " + RV->getRecordName() +
                        "' is pinned: its object is dereferenced through a "
                        "cast to '" +
                        cast<PointerType>(I->getType())
                            ->getPointee()
                            ->getName() +
                        "*' in '" + F->getName() + "'",
                    "pin=cast-pun; object=" + PT.object(O).describe());
              }
            }
          }
          // PIN-1, inbound: the cast *creates* the record view over a
          // pointer whose origin chain keeps feeding raw (non-record)
          // dereferences elsewhere — the reverse pun.
          if (DestRec && !R.Pinnings.isPinned(DestRec)) {
            for (const Value *Origin :
                 originsOf(cast<CastInst>(I.get())->getCastOperand())) {
              const auto *OI = dyn_cast<Instruction>(Origin);
              if (!OI || isa<FieldAddrInst>(OI))
                continue; // taken field addresses are PIN-2's business
              if (hasForeignDeref(OI, DestRec)) {
                pin(R, DestRec, I.get(),
                    "layout of 'struct " + DestRec->getRecordName() +
                        "' is pinned: its object is also dereferenced "
                        "through the raw '" +
                        cast<PointerType>(OI->getType())
                            ->getPointee()
                            ->getName() +
                        "*' it was cast from in '" + F->getName() + "'",
                    "pin=reverse-pun");
                break;
              }
            }
          }
        }
        // PIN-2: out-of-bounds arithmetic on a taken field address.
        if (const auto *IA = dyn_cast<IndexAddrInst>(I.get())) {
          const auto *Idx = dyn_cast<ConstantInt>(IA->getIndex());
          if (!Idx || Idx->getValue() == 0)
            continue;
          for (const Value *Origin : originsOf(IA->getBase())) {
            const auto *FA = dyn_cast<FieldAddrInst>(Origin);
            if (!FA)
              continue;
            const RecordType *Rec = FA->getRecord();
            if (R.Pinnings.isPinned(Rec))
              continue; // one witness per type is enough
            pin(R, Rec, IA,
                "layout of 'struct " + Rec->getRecordName() +
                    "' is pinned: indexing " +
                    std::to_string(Idx->getValue()) + " past field '" +
                    FA->getField().Name +
                    "' reaches sibling fields by layout distance in '" +
                    F->getName() + "'",
                "pin=field-oob; field=" + FA->getField().Name);
          }
        }
      }
    }
  }
}
