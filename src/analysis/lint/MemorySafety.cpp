//===- analysis/lint/MemorySafety.cpp - Memory-safety dataflow ------------===//
//
// A forward dataflow over each function that tracks, per allocation site
// (alloca / malloc / calloc / realloc), a lifetime lattice and the set of
// byte ranges some path may have initialized, plus the abstract value of
// every non-address-taken local pointer variable ("slot"). Every finding
// is a must-claim: the checkers report only when the hazard holds on all
// paths reaching the instruction, so a finding on a dynamically clean
// program is a checker bug (the property the fuzzer's lint oracle
// enforces). When the analysis cannot tell (a pointer escapes, an offset
// is unknown, a lifetime is only maybe-freed), it goes silent instead.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "analysis/lint/Checkers.h"
#include "support/Casting.h"
#include "support/Format.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace slo;

namespace {

/// Half-open, disjoint byte intervals, normalized so equality is
/// structural.
class IntervalSet {
public:
  bool operator==(const IntervalSet &) const = default;

  void add(uint64_t B, uint64_t E) {
    if (B >= E)
      return;
    // Merge every interval overlapping or adjacent to [B, E).
    auto It = Ivs.upper_bound(B);
    if (It != Ivs.begin()) {
      auto Prev = std::prev(It);
      if (Prev->second >= B)
        It = Prev;
    }
    while (It != Ivs.end() && It->first <= E) {
      B = std::min(B, It->first);
      E = std::max(E, It->second);
      It = Ivs.erase(It);
    }
    Ivs[B] = E;
  }

  bool intersects(uint64_t B, uint64_t E) const {
    if (B >= E)
      return false;
    auto It = Ivs.upper_bound(B);
    if (It != Ivs.begin() && std::prev(It)->second > B)
      return true;
    return It != Ivs.end() && It->first < E;
  }

  void uniteWith(const IntervalSet &O) {
    for (const auto &[B, E] : O.Ivs)
      add(B, E);
  }

private:
  std::map<uint64_t, uint64_t> Ivs;
};

/// What a pointer expression denotes.
struct PtrVal {
  enum Kind : uint8_t {
    Bottom,  // no value on any path yet (uninitialized variable)
    Null,    // the null constant on every path
    Obj,     // into a tracked allocation, at Off (-1 = unknown offset)
    Unknown, // anything else
  };
  Kind K = Bottom;
  unsigned Root = 0;
  int64_t Off = 0;
  bool operator==(const PtrVal &) const = default;

  static PtrVal unknown() { return {Unknown, 0, 0}; }
  static PtrVal null() { return {Null, 0, 0}; }
  static PtrVal obj(unsigned R, int64_t O) { return {Obj, R, O}; }
};

/// Lifetime of one allocation along the paths reaching a point.
/// Untracked absorbs everything: the root escaped (or was never
/// allocated on this path) and no claim about it is valid.
enum class Lifetime : uint8_t { Untracked, Live, Freed, MaybeFreed };

struct RootState {
  Lifetime LS = Lifetime::Untracked;
  /// Every byte may be initialized (escape, memset, unknown-offset
  /// store): suppresses uninitialized-read claims wholesale.
  bool AllInit = false;
  /// Byte ranges some path has stored to.
  IntervalSet MayInit;
  bool operator==(const RootState &) const = default;
};

struct MemState {
  /// Abstract value per pointer slot; a missing key is Bottom.
  std::map<const AllocaInst *, PtrVal> Slots;
  /// Indexed by root id.
  std::vector<RootState> Roots;
  bool operator==(const MemState &) const = default;
};

/// Static facts about one allocation site.
struct RootInfo {
  const Instruction *Origin = nullptr;
  bool Heap = false;
  bool ZeroInit = false; // calloc
  bool Preserves = false; // realloc: old contents carried over
  std::string Label;
};

class MemorySafetyClient {
public:
  using State = MemState;

  MemorySafetyClient(const Function &F, const LintOptions &Opts,
                     LintResult &Result)
      : F(F), Opts(Opts), Result(Result) {
    collectRoots();
    collectSlots();
  }

  State boundary() const {
    State S;
    S.Roots.resize(Roots.size());
    return S;
  }

  void join(State &Dst, const State &Src) const {
    for (const auto &[A, V] : Src.Slots) {
      auto It = Dst.Slots.find(A);
      if (It == Dst.Slots.end())
        Dst.Slots[A] = V; // other side is Bottom, the join identity
      else
        It->second = joinPtr(It->second, V);
    }
    for (size_t I = 0; I < Dst.Roots.size(); ++I) {
      RootState &D = Dst.Roots[I];
      const RootState &O = Src.Roots[I];
      D.LS = joinLifetime(D.LS, O.LS);
      D.AllInit |= O.AllInit;
      D.MayInit.uniteWith(O.MayInit);
    }
  }

  void transfer(const Instruction *I, State &S) {
    switch (I->getOpcode()) {
    case Instruction::OpAlloca:
      S.Roots[rootOf(I)] = RootState{Lifetime::Live, false, {}};
      break;
    case Instruction::OpMalloc:
      S.Roots[rootOf(I)] = RootState{Lifetime::Live, false, {}};
      break;
    case Instruction::OpCalloc:
      S.Roots[rootOf(I)] = RootState{Lifetime::Live, true, {}};
      break;
    case Instruction::OpRealloc: {
      const auto *RA = cast<ReallocInst>(I);
      PtrVal Old = resolve(RA->getPtr(), S);
      if (Old.K == PtrVal::Obj) {
        RootState &RS = S.Roots[Old.Root];
        if (RS.LS == Lifetime::Freed)
          report(LintKind::UseAfterFree, DiagSeverity::Error, I,
                 "realloc of '" + Roots[Old.Root].Label +
                     "', which is already freed on every path here",
                 rootFact(Old.Root, RS));
        if (!Opts.InjectLifetimeBug && RS.LS != Lifetime::Untracked)
          RS.LS = Lifetime::Freed; // realloc releases the old block
      }
      // The new block carries the old contents; its tail is filled by
      // the allocator, so no uninitialized-read claim is safe.
      S.Roots[rootOf(I)] = RootState{Lifetime::Live, true, {}};
      break;
    }
    case Instruction::OpLoad: {
      const auto *L = cast<LoadInst>(I);
      PtrVal P = resolve(L->getPointer(), S);
      checkAccess(I, P, S, /*Write=*/false,
                  L->getType()->isVoid() ? 0 : L->getType()->getSize());
      break;
    }
    case Instruction::OpStore: {
      const auto *St = cast<StoreInst>(I);
      const Value *V = St->getStoredValue();
      PtrVal Dst = resolve(St->getPointer(), S);
      uint64_t Sz = V->getType()->getSize();
      checkAccess(I, Dst, S, /*Write=*/true, Sz);
      if (Dst.K == PtrVal::Obj) {
        RootState &RS = S.Roots[Dst.Root];
        if (Dst.Off >= 0)
          RS.MayInit.add(static_cast<uint64_t>(Dst.Off),
                         static_cast<uint64_t>(Dst.Off) + Sz);
        else
          RS.AllInit = true;
      }
      const auto *A = dyn_cast<AllocaInst>(St->getPointer());
      if (A && Slots.count(A)) {
        PtrVal SV = resolve(V, S);
        if (SV.K == PtrVal::Bottom)
          S.Slots.erase(A);
        else
          S.Slots[A] = SV;
      } else if (V->getType()->isPointer()) {
        // A pointer stored into untracked memory can resurface through
        // any later load: stop making claims about its target.
        PtrVal SV = resolve(V, S);
        if (SV.K == PtrVal::Obj)
          escape(SV.Root, S);
      }
      break;
    }
    case Instruction::OpFree: {
      if (Opts.InjectLifetimeBug)
        break; // injected checker bug: lifetime tracking ignores free()
      PtrVal P = resolve(cast<FreeInst>(I)->getPtr(), S);
      if (P.K != PtrVal::Obj)
        break;
      RootState &RS = S.Roots[P.Root];
      const RootInfo &RI = Roots[P.Root];
      if (RS.LS == Lifetime::Untracked)
        break;
      if (!RI.Heap) {
        report(LintKind::InvalidFree, DiagSeverity::Error, I,
               "free of non-heap memory '" + RI.Label + "'",
               rootFact(P.Root, RS));
      } else if (P.Off > 0) {
        report(LintKind::InvalidFree, DiagSeverity::Error, I,
               formatString("free of interior pointer into '%s' (offset %lld)",
                            RI.Label.c_str(),
                            static_cast<long long>(P.Off)),
               rootFact(P.Root, RS));
      } else if (P.Off < 0) {
        // Unknown offset: the free may be interior or the base; no claim
        // about this root is valid past it.
        escape(P.Root, S);
      } else if (RS.LS == Lifetime::Freed) {
        report(LintKind::DoubleFree, DiagSeverity::Error, I,
               "double free of '" + RI.Label +
                   "': already freed on every path here",
               rootFact(P.Root, RS));
      } else {
        RS.LS = Lifetime::Freed;
      }
      break;
    }
    case Instruction::OpMemset: {
      const auto *MS = cast<MemsetInst>(I);
      PtrVal Dst = resolve(MS->getPtr(), S);
      checkAccess(I, Dst, S, /*Write=*/true, 0);
      if (Dst.K == PtrVal::Obj)
        S.Roots[Dst.Root].AllInit = true;
      break;
    }
    case Instruction::OpMemcpy: {
      const auto *MC = cast<MemcpyInst>(I);
      PtrVal Dst = resolve(MC->getDst(), S);
      checkAccess(I, Dst, S, /*Write=*/true, 0);
      if (Dst.K == PtrVal::Obj)
        S.Roots[Dst.Root].AllInit = true;
      PtrVal Src = resolve(MC->getSrc(), S);
      checkAccess(I, Src, S, /*Write=*/false, 0);
      break;
    }
    case Instruction::OpPtrToInt: {
      // The address can round-trip through integers out of sight.
      PtrVal P = resolve(cast<CastInst>(I)->getCastOperand(), S);
      if (P.K == PtrVal::Obj)
        escape(P.Root, S);
      break;
    }
    case Instruction::OpCall:
    case Instruction::OpICall: {
      for (const Value *Op : I->operands()) {
        if (!Op->getType()->isPointer())
          continue;
        PtrVal P = resolve(Op, S);
        if (P.K == PtrVal::Obj)
          escape(P.Root, S);
      }
      break;
    }
    case Instruction::OpRet: {
      const auto *R = cast<RetInst>(I);
      if (R->hasValue() && R->getValue()->getType()->isPointer()) {
        PtrVal P = resolve(R->getValue(), S);
        if (P.K == PtrVal::Obj)
          escape(P.Root, S);
      }
      if (Out) {
        for (size_t RId = 0; RId < S.Roots.size(); ++RId) {
          if (!Roots[RId].Heap)
            continue;
          if (S.Roots[RId].LS == Lifetime::Live)
            report(LintKind::Leak, DiagSeverity::Warning, I,
                   "heap allocation '" + Roots[RId].Label +
                       "' is never freed on any path reaching this return "
                       "and never escapes",
                   rootFact(static_cast<unsigned>(RId), S.Roots[RId]));
          else if (S.Roots[RId].LS == Lifetime::MaybeFreed)
            Result.HeapCoverageComplete = false; // freed on some paths only
        }
      }
      break;
    }
    default:
      break;
    }
  }

  /// Path-sensitivity at conditional branches: `p == null` (or `!=`)
  /// over a slot load refines the slot on both edges.
  void edge(const BasicBlock *From, const BasicBlock *To, State &S) const {
    const Instruction *T = From->getTerminator();
    const auto *CB = T ? dyn_cast<CondBrInst>(T) : nullptr;
    if (!CB || CB->getTrueTarget() == CB->getFalseTarget())
      return;
    const auto *Cmp = dyn_cast<CmpInst>(CB->getCondition());
    if (!Cmp || (Cmp->getOpcode() != Instruction::OpICmpEQ &&
                 Cmp->getOpcode() != Instruction::OpICmpNE))
      return;
    auto SlotOf = [&](const Value *V) -> const AllocaInst * {
      const auto *Ld = dyn_cast<LoadInst>(V);
      if (!Ld)
        return nullptr;
      const auto *A = dyn_cast<AllocaInst>(Ld->getPointer());
      return (A && Slots.count(A)) ? A : nullptr;
    };
    const AllocaInst *A = nullptr;
    if (isa<ConstantNull>(Cmp->getRHS()))
      A = SlotOf(Cmp->getLHS());
    else if (isa<ConstantNull>(Cmp->getLHS()))
      A = SlotOf(Cmp->getRHS());
    if (!A)
      return;
    bool NullEdge = (To == CB->getTrueTarget()) ==
                    (Cmp->getOpcode() == Instruction::OpICmpEQ);
    if (NullEdge) {
      S.Slots[A] = PtrVal::null();
    } else {
      auto It = S.Slots.find(A);
      if (It != S.Slots.end() && It->second.K == PtrVal::Null)
        It->second = PtrVal::unknown();
    }
  }

  /// Switches the client into the reporting walk.
  void setReporting(bool On) { Out = On; }

  bool anyHeapEscaped() const { return AnyHeapEscape; }
  bool hasHeapRoots() const {
    for (const RootInfo &RI : Roots)
      if (RI.Heap)
        return true;
    return false;
  }

private:
  static PtrVal joinPtr(const PtrVal &A, const PtrVal &B) {
    if (A == B)
      return A;
    if (A.K == PtrVal::Bottom)
      return B;
    if (B.K == PtrVal::Bottom)
      return A;
    if (A.K == PtrVal::Obj && B.K == PtrVal::Obj && A.Root == B.Root)
      return PtrVal::obj(A.Root, -1);
    return PtrVal::unknown();
  }

  static Lifetime joinLifetime(Lifetime A, Lifetime B) {
    if (A == B)
      return A;
    if (A == Lifetime::Untracked || B == Lifetime::Untracked)
      return Lifetime::Untracked;
    return Lifetime::MaybeFreed;
  }

  void collectRoots() {
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        Instruction::Opcode Op = I->getOpcode();
        if (Op != Instruction::OpAlloca && Op != Instruction::OpMalloc &&
            Op != Instruction::OpCalloc && Op != Instruction::OpRealloc)
          continue;
        RootInfo RI;
        RI.Origin = I.get();
        RI.Heap = Op != Instruction::OpAlloca;
        RI.ZeroInit = Op == Instruction::OpCalloc;
        RI.Preserves = Op == Instruction::OpRealloc;
        RI.Label = I->getName().empty()
                       ? Instruction::getOpcodeName(Op)
                       : I->getName();
        RootIds[I.get()] = static_cast<unsigned>(Roots.size());
        Roots.push_back(std::move(RI));
      }
    }
  }

  /// A slot is a pointer-typed alloca whose address never escapes: every
  /// user is a load from it or a store *to* it (never of it).
  void collectSlots() {
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        const auto *A = dyn_cast<AllocaInst>(I.get());
        if (!A || !A->getAllocatedType()->isPointer())
          continue;
        bool IsSlot = true;
        for (const Instruction *U : A->users()) {
          if (isa<LoadInst>(U))
            continue;
          const auto *St = dyn_cast<StoreInst>(U);
          if (St && St->getPointer() == A && St->getStoredValue() != A)
            continue;
          IsSlot = false;
          break;
        }
        if (IsSlot)
          Slots.insert(A);
      }
    }
  }

  unsigned rootOf(const Instruction *I) const {
    auto It = RootIds.find(I);
    return It->second;
  }

  /// Resolves a pointer expression to an abstract value under \p S.
  /// Chains are re-resolved at each use; this is exact for the
  /// frontend's statement-at-a-time code shape, where an address chain
  /// never outlives the statement that loads its slot inputs.
  PtrVal resolve(const Value *V, const State &S, unsigned Depth = 0) const {
    if (Depth > 32)
      return PtrVal::unknown();
    if (isa<ConstantNull>(V))
      return PtrVal::null();
    const auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return PtrVal::unknown();
    switch (I->getOpcode()) {
    case Instruction::OpAlloca:
    case Instruction::OpMalloc:
    case Instruction::OpCalloc:
    case Instruction::OpRealloc:
      return PtrVal::obj(rootOf(I), 0);
    case Instruction::OpBitcast:
      return resolve(cast<CastInst>(I)->getCastOperand(), S, Depth + 1);
    case Instruction::OpIndexAddr: {
      const auto *IA = cast<IndexAddrInst>(I);
      PtrVal B = resolve(IA->getBase(), S, Depth + 1);
      if (B.K != PtrVal::Obj)
        return B;
      const auto *CI = dyn_cast<ConstantInt>(IA->getIndex());
      if (!CI || B.Off < 0)
        return PtrVal::obj(B.Root, -1);
      uint64_t Elem =
          cast<PointerType>(IA->getBase()->getType())->getPointee()->getSize();
      int64_t Off = B.Off + CI->getValue() * static_cast<int64_t>(Elem);
      return PtrVal::obj(B.Root, Off < 0 ? -1 : Off);
    }
    case Instruction::OpFieldAddr: {
      const auto *FA = cast<FieldAddrInst>(I);
      PtrVal B = resolve(FA->getBase(), S, Depth + 1);
      if (B.K != PtrVal::Obj || B.Off < 0)
        return B.K == PtrVal::Obj ? PtrVal::obj(B.Root, -1) : B;
      return PtrVal::obj(B.Root,
                         B.Off + static_cast<int64_t>(FA->getField().Offset));
    }
    case Instruction::OpLoad: {
      const auto *A = dyn_cast<AllocaInst>(cast<LoadInst>(I)->getPointer());
      if (A && Slots.count(A)) {
        auto It = S.Slots.find(A);
        return It == S.Slots.end() ? PtrVal{} : It->second;
      }
      return PtrVal::unknown();
    }
    default:
      return PtrVal::unknown();
    }
  }

  /// The shared hazard checks for a resolved access (load/store/stream).
  /// \p Size is the accessed byte count (0 = unknown, skips the
  /// uninitialized check).
  void checkAccess(const Instruction *I, const PtrVal &P, const State &S,
                   bool Write, uint64_t Size) {
    if (P.K == PtrVal::Null) {
      report(LintKind::NullDeref, DiagSeverity::Error, I,
             std::string(Write ? "store through" : "read through") +
                 " a pointer that is null on every path here",
             "value=null");
      return;
    }
    if (P.K != PtrVal::Obj)
      return;
    const RootState &RS = S.Roots[P.Root];
    const RootInfo &RI = Roots[P.Root];
    if (RS.LS == Lifetime::Freed) {
      report(LintKind::UseAfterFree, DiagSeverity::Error, I,
             std::string(Write ? "store into" : "read of") + " '" + RI.Label +
                 "', which is freed on every path here",
             rootFact(P.Root, RS));
      return;
    }
    if (Write || Size == 0 || P.Off < 0)
      return;
    if (RS.LS == Lifetime::Untracked || RS.AllInit)
      return;
    uint64_t B = static_cast<uint64_t>(P.Off);
    if (!RS.MayInit.intersects(B, B + Size))
      report(LintKind::UninitRead, DiagSeverity::Error, I,
             formatString("read of bytes [%llu, %llu) of '%s', which no "
                          "path has initialized",
                          static_cast<unsigned long long>(B),
                          static_cast<unsigned long long>(B + Size),
                          RI.Label.c_str()),
             rootFact(P.Root, RS));
  }

  void escape(unsigned Root, State &S) {
    RootState &RS = S.Roots[Root];
    if (Roots[Root].Heap)
      AnyHeapEscape = true;
    RS.LS = Lifetime::Untracked;
    RS.AllInit = true;
  }

  std::string rootFact(unsigned Root, const RootState &RS) const {
    const char *LS = "?";
    switch (RS.LS) {
    case Lifetime::Untracked:
      LS = "untracked";
      break;
    case Lifetime::Live:
      LS = "live";
      break;
    case Lifetime::Freed:
      LS = "freed";
      break;
    case Lifetime::MaybeFreed:
      LS = "maybe-freed";
      break;
    }
    return formatString("root=%s:'%s'; state=%s%s",
                        Roots[Root].Heap ? "heap" : "stack",
                        Roots[Root].Label.c_str(), LS,
                        RS.AllInit ? "; all-init" : "");
  }

  void report(LintKind K, DiagSeverity Sev, const Instruction *I,
              std::string Msg, std::string Fact) {
    if (!Out)
      return;
    LintFinding LF;
    LF.Kind = K;
    LF.Severity = Sev;
    LF.Function = F.getName();
    LF.Inst = I;
    LF.Message = std::move(Msg);
    LF.Fact = std::move(Fact);
    Result.Findings.push_back(std::move(LF));
  }

  const Function &F;
  const LintOptions &Opts;
  LintResult &Result;
  std::map<const Instruction *, unsigned> RootIds;
  std::vector<RootInfo> Roots;
  std::set<const AllocaInst *> Slots;
  bool AnyHeapEscape = false;
  /// True during the reporting walk only; the fixpoint stays silent.
  bool Out = false;
};

} // namespace

void slo::lint_detail::checkMemorySafety(const Function &F,
                                         const LintOptions &Opts,
                                         LintResult &R) {
  if (F.isDeclaration())
    return;
  MemorySafetyClient Client(F, Opts, R);
  DominatorTree DT(F);
  DataflowSolver<MemorySafetyClient> Solver(F, DT, Client,
                                            DataflowDirection::Forward);
  DataflowStats Stats = Solver.run();
  if (!Stats.Converged) {
    ++R.BailedFunctions;
    if (Client.hasHeapRoots())
      R.HeapCoverageComplete = false;
    return;
  }
  // Reporting walk: re-apply the transfer from each converged block
  // entry; the fixpoint above guarantees the walk sees final states.
  Client.setReporting(true);
  for (const auto &BB : F.blocks()) {
    const auto *BS = Solver.get(BB.get());
    if (!BS)
      continue;
    MemState S = BS->Entry;
    for (const auto &I : BB->instructions())
      Client.transfer(I.get(), S);
  }
  if (Client.anyHeapEscaped())
    R.HeapCoverageComplete = false;
}
