//===- analysis/lint/Lint.cpp - Lint orchestrator -------------------------===//

#include "analysis/lint/Lint.h"
#include "analysis/lint/Checkers.h"
#include "observability/CounterRegistry.h"
#include "observability/Tracer.h"

#include <algorithm>

using namespace slo;

const char *slo::lintKindName(LintKind K) {
  switch (K) {
  case LintKind::UninitRead:
    return "uninit-read";
  case LintKind::UseAfterFree:
    return "use-after-free";
  case LintKind::DoubleFree:
    return "double-free";
  case LintKind::InvalidFree:
    return "invalid-free";
  case LintKind::NullDeref:
    return "null-deref";
  case LintKind::Leak:
    return "leak";
  case LintKind::LayoutPin:
    return "layout-pin";
  }
  return "unknown";
}

size_t LintResult::count(LintKind K) const {
  return static_cast<size_t>(
      std::count_if(Findings.begin(), Findings.end(),
                    [K](const LintFinding &F) { return F.Kind == K; }));
}

size_t LintResult::countSeverity(DiagSeverity S) const {
  return static_cast<size_t>(
      std::count_if(Findings.begin(), Findings.end(),
                    [S](const LintFinding &F) { return F.Severity == S; }));
}

LintResult slo::runLint(const Module &M, const PointsToResult *PT,
                        const LegalityResult *Legal, const LintOptions &Opts) {
  LintResult R;
  {
    TraceSpan Span(Opts.Trace, "lint/memory-safety");
    for (const auto &F : M.functions())
      lint_detail::checkMemorySafety(*F, Opts, R);
  }
  if (PT) {
    TraceSpan Span(Opts.Trace, "lint/layout-pinning");
    lint_detail::checkLayoutPinning(M, *PT, Legal, R);
  }
  if (CounterRegistry *C = Opts.Counters) {
    C->add("lint.findings", static_cast<uint64_t>(R.Findings.size()));
    for (const LintFinding &F : R.Findings)
      C->add(std::string("lint.") + lintKindName(F.Kind), 1);
    C->add("lint.pinned_types", static_cast<uint64_t>(R.Pinnings.Reasons.size()));
    C->add("lint.bailed_functions", R.BailedFunctions);
    if (!R.HeapCoverageComplete)
      C->add("lint.heap_coverage_incomplete", 1);
  }
  return R;
}

void slo::reportLintFindings(const LintResult &R, DiagnosticEngine &Diags) {
  for (const LintFinding &F : R.Findings) {
    Diagnostic &D = Diags.report(
        F.Severity, std::string("lint.") + lintKindName(F.Kind), F.Message);
    D.Function = F.Function;
    D.RecordName = F.RecordName;
    D.Fact = F.Fact;
    if (F.Inst)
      D.Site = F.Inst->getName().empty()
                   ? Instruction::getOpcodeName(F.Inst->getOpcode())
                   : F.Inst->getName();
  }
}
