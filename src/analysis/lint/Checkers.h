//===- analysis/lint/Checkers.h - Checker entry points ---------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal entry points of the individual lint checkers, called by the
/// runLint orchestrator only.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_LINT_CHECKERS_H
#define SLO_ANALYSIS_LINT_CHECKERS_H

#include "analysis/lint/Lint.h"

namespace slo {

class LegalityResult;
class PointsToResult;

namespace lint_detail {

/// The memory-safety dataflow checker over one function: uninitialized
/// reads, use-after-free, double/invalid free, must-null dereference,
/// definite leaks. Appends findings to \p R and clears
/// R.HeapCoverageComplete when a heap allocation escapes tracking.
void checkMemorySafety(const Function &F, const LintOptions &Opts,
                       LintResult &R);

/// The layout-pinning detector over the whole module (needs points-to).
void checkLayoutPinning(const Module &M, const PointsToResult &PT,
                        const LegalityResult *Legal, LintResult &R);

} // namespace lint_detail
} // namespace slo

#endif // SLO_ANALYSIS_LINT_CHECKERS_H
