//===- analysis/Legality.h - Structure layout legality ---------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's legality analysis (§2.2): a set of simple, efficient tests
/// performed in one pass over the IR that determine whether a record type
/// may be transformed, together with the attribute collection consulted
/// by the heuristics. The test names follow the paper exactly:
///
///   CSTT  cast to a record type (tolerated when cast from a malloc/calloc
///         result, the paper's return-value list)
///   CSTF  cast from a record type
///   ATKN  address of a field taken (tolerated in function call argument
///         position)
///   LIBC  record escapes to a standard library function
///   IND   record escapes to an indirect call
///   SMAL  dynamically allocated with a constant element count <= A
///   MSET  used in a memset/memcpy-style streaming operation
///   NEST  nested in (or nesting) another record type
///
/// Plus one repository-specific violation:
///
///   UNSZ  an allocation of the type whose byte size expression cannot be
///         pattern-matched as N * sizeof(T); such allocation sites cannot
///         be rewritten when the layout changes.
///
/// "Relaxing" CSTT/CSTF/ATKN approximates what the field-sensitive
/// points-to analysis could prove (the paper's Table 1 "Relax" column).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_LEGALITY_H
#define SLO_ANALYSIS_LEGALITY_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace slo {

/// Legality violation bits.
enum class Violation : uint32_t {
  CSTT = 1u << 0,
  CSTF = 1u << 1,
  ATKN = 1u << 2,
  LIBC = 1u << 3,
  IND = 1u << 4,
  SMAL = 1u << 5,
  MSET = 1u << 6,
  NEST = 1u << 7,
  UNSZ = 1u << 8,
  /// Escapes to a function outside the compilation scope (a non-library
  /// declaration that the linker could not resolve).
  ESCP = 1u << 9,
};

inline uint32_t violationBit(Violation V) { return static_cast<uint32_t>(V); }

/// Short name of one violation ("CSTT", ...).
const char *violationName(Violation V);

/// Renders a violation mask as "CSTT|ATKN".
std::string violationMaskToString(uint32_t Mask);

/// One recorded violation occurrence: which test fired, where, and why.
/// The points-to refinement discharges (or fails to discharge) these
/// sites individually; the diagnostics engine renders them.
struct ViolationSite {
  Violation Kind = Violation::CSTT;
  /// The offending instruction, or null for shape-derived violations
  /// (NEST has no single instruction).
  const Instruction *Inst = nullptr;
  /// Name of the enclosing function ("" for shape-derived violations).
  std::string Function;
  /// Short description of the site ("bitcast 'p'", "field nesting", ...).
  std::string Detail;
  /// The callee name for escape sites (LIBC/ESCP), "" otherwise. The
  /// incremental IPA merge resolves per-TU ESCP sites against the
  /// program-wide defined-function set through this field.
  std::string Symbol;
};

/// One dynamic allocation site of a record type, with everything the
/// transformations need to rewrite it.
struct AllocSiteInfo {
  /// The malloc/calloc instruction.
  Instruction *Alloc = nullptr;
  /// The bitcast of the allocation result to T*.
  Instruction *CastToRecord = nullptr;
  /// Element count: a Value for malloc(N * sizeof(T)) / calloc(N, ...),
  /// or null when the count is the constant 1 (malloc(sizeof(T))).
  Value *CountValue = nullptr;
  /// Constant element count when known, -1 otherwise.
  int64_t ConstCount = -1;
  /// True when the byte size could not be decomposed (UNSZ).
  bool Unanalyzable = false;
};

/// Attributes collected per record type (paper §2.2: "whether a global or
/// local variable, pointer, or array of a given type were found, whether
/// a type has been dynamically allocated, free'd, or re-allocated").
struct TypeAttributes {
  bool HasGlobalVar = false;   // GVAR: global of type T
  bool HasLocalVar = false;    // LVAR: local (alloca) of type T
  bool HasGlobalPtr = false;   // GPTR: global of type T*
  bool HasLocalPtr = false;    // LPTR: local of type T*
  bool HasStaticArray = false; // ARRY: global/local array of T
  bool DynamicallyAllocated = false; // HEAP
  bool Freed = false;                // FREE
  bool Reallocated = false;          // REAL
  bool HasRecursivePtrField = false; // a field of some record has type T*
  bool PassedToFunction = false;     // T (or T*) appears in a call arg
  /// Stores of T*-typed values anywhere (blocks peeling when more than
  /// the single allocation store exists).
  unsigned PtrValueStores = 0;

  /// Renders the set attributes as "GPTR HEAP ...".
  std::string toString() const;
};

/// The legality verdict and supporting data for one record type.
struct TypeLegality {
  RecordType *Rec = nullptr;
  uint32_t Violations = 0;
  TypeAttributes Attrs;
  /// Every violation occurrence, in collection order (one entry per
  /// (instruction, test); shape-derived entries have a null instruction).
  std::vector<ViolationSite> Sites;
  std::vector<AllocSiteInfo> AllocSites;
  /// Non-library functions the type escapes to (IPA escape tuples).
  std::set<const Function *> EscapesTo;
  /// Free sites whose pointer is of type T*.
  std::vector<Instruction *> FreeSites;
  /// Globals of type T* (peeling candidates track these).
  std::vector<GlobalVariable *> PointerGlobals;

  bool hasViolation(Violation V) const {
    return (Violations & violationBit(V)) != 0;
  }

  /// True when every legality test passes. With \p Relax, CSTT/CSTF/ATKN
  /// are tolerated (the paper's points-to upper bound).
  bool isLegal(bool Relax = false) const {
    uint32_t Mask = ~0u;
    if (Relax)
      Mask &= ~(violationBit(Violation::CSTT) |
                violationBit(Violation::CSTF) |
                violationBit(Violation::ATKN));
    return (Violations & Mask) == 0;
  }
};

struct LegalityOptions {
  /// The paper's SMAL threshold A: constant allocation counts <= A mark
  /// the type invalid ("set to > 1": single objects are not worth
  /// splitting).
  int64_t SmallAllocThreshold = 1;
};

/// Whole-module legality results.
class LegalityResult {
public:
  const TypeLegality &get(const RecordType *Rec) const;
  TypeLegality &getOrCreate(RecordType *Rec);

  /// All analyzed record types, in type-creation order.
  const std::vector<RecordType *> &types() const { return Order; }

  /// Types passing all tests (paper Table 1 "Legal" / "Relax" columns).
  std::vector<RecordType *> legalTypes(bool Relax = false) const;

private:
  std::map<const RecordType *, TypeLegality> Map;
  std::vector<RecordType *> Order;
};

/// Runs the FE single-pass legality tests over every function of \p M and
/// aggregates the results (the IPA step; \p M is the linked program).
LegalityResult analyzeLegality(const Module &M,
                               const LegalityOptions &Opts = LegalityOptions());

/// Returns the record type a pointer/array type ultimately refers to, or
/// null (e.g. node** -> node, [4 x node]* -> node).
RecordType *strippedRecord(Type *Ty);

/// Renders a one-line provenance string for a violation site
/// ("[ATKN] fieldaddr 'cost.addr' in 'refresh_potential': address stored").
std::string describeViolationSite(const ViolationSite &S);

} // namespace slo

#endif // SLO_ANALYSIS_LEGALITY_H
