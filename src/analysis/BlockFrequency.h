//===- analysis/BlockFrequency.h - Local block frequencies -----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intraprocedural block execution frequencies derived from static branch
/// probabilities, normalized to one function entry (N_loc(f) = 1 in the
/// paper's notation). These are the "local execution counts" C_loc(b)
/// that the SPBO and ISPBO weighting schemes consume.
///
/// The frequencies solve the linear flow equations
///   freq(entry) = 1,   freq(b) = sum over preds p of freq(p)*prob(p->b)
/// by damped RPO iteration; with back-edge probabilities capped below 1
/// the iteration converges geometrically (reducible CFGs only, which is
/// all MiniC emits).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_BLOCKFREQUENCY_H
#define SLO_ANALYSIS_BLOCKFREQUENCY_H

#include "analysis/BranchProbability.h"
#include "analysis/Dominators.h"

#include <map>

namespace slo {

/// Local (per-invocation) block frequencies for one function.
class BlockFrequencies {
public:
  BlockFrequencies(const Function &F, const DominatorTree &DT,
                   const BranchProbabilities &BP);

  /// Expected executions of \p BB per function invocation (0 for
  /// unreachable blocks).
  double get(const BasicBlock *BB) const;

  /// Expected traversals of the edge From->To per invocation.
  double getEdge(const BasicBlock *From, const BasicBlock *To) const {
    return get(From) * BP.getEdgeProb(From, To);
  }

private:
  const BranchProbabilities &BP;
  std::map<const BasicBlock *, double> Freq;
};

} // namespace slo

#endif // SLO_ANALYSIS_BLOCKFREQUENCY_H
