//===- analysis/InterProcFrequency.h - ISPBO propagation -------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's inter-procedurally scaled static frequencies (ISPBO,
/// §2.3): execution counts are propagated top-down over the call graph
/// with N_g(main) = 1, N_g(f) = sum of E_g(c) over call sites c, and
/// per-block global counts C_g(b) = C_loc(b) * N_g(f) / N_loc(f). Local
/// frequencies are normalized so N_loc(f) = 1.
///
/// Because the purely static per-loop probabilities produce "too flat"
/// hotness histograms, the paper scales the derived factors S by an
/// exponent E (default 1.5); ISPBO.NO is the unexponentiated variant.
/// Recursion is handled by processing call-graph SCCs in topological
/// order; edges inside an SCC contribute one additional relaxation pass
/// (recursion depth approximated as one level; documented deviation).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_INTERPROCFREQUENCY_H
#define SLO_ANALYSIS_INTERPROCFREQUENCY_H

#include "analysis/CallGraph.h"
#include "analysis/StaticEstimator.h"

#include <map>

namespace slo {

struct InterProcOptions {
  /// The paper's separability exponent E applied to the scaling factors.
  double Exponent = 1.5;
  /// When false, the raw scaling factor is used (the ISPBO.NO column).
  bool ApplyExponent = true;
  /// Name of the program entry function.
  std::string EntryFunction = "main";
  /// When true, a defined function with no callers outside its own SCC
  /// is seeded with N_g = 1, as if invoked once from outside the module.
  /// The per-TU summary pipeline enables this: in a single translation
  /// unit every externally visible function is a potential entry, and
  /// without the seed a TU that does not contain main contributes no
  /// field statistics at all.
  bool SeedUncalledDefinitions = false;
};

/// Global (whole-program) function and block frequencies from static
/// estimation.
class InterProcFrequencies {
public:
  InterProcFrequencies(const StaticEstimator &SE, const CallGraph &CG,
                       const InterProcOptions &Opts = InterProcOptions());

  /// N_g(f): expected invocations of \p F per program run.
  double getGlobalCount(const Function *F) const;

  /// The scaling factor applied to local counts in \p F: N_g^E (or N_g
  /// when the exponent is disabled).
  double getScale(const Function *F) const;

  /// C_g(b): globally scaled execution count of \p BB.
  double getBlockWeight(const BasicBlock *BB) const;

  /// Globally scaled entry weight of \p F (the weight given to its
  /// straight-line affinity group).
  double getEntryWeight(const Function *F) const { return getScale(F); }

private:
  const StaticEstimator &SE;
  InterProcOptions Opts;
  std::map<const Function *, double> GlobalCount;
};

} // namespace slo

#endif // SLO_ANALYSIS_INTERPROCFREQUENCY_H
