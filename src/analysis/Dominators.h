//===- analysis/Dominators.h - Dominator tree ------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm, plus
/// the CFG predecessor lists and reverse post-order every other analysis
/// wants.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_DOMINATORS_H
#define SLO_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <map>
#include <vector>

namespace slo {

/// Dominator information for one function.
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  const Function &getFunction() const { return F; }

  /// The immediate dominator, or nullptr for the entry block and
  /// unreachable blocks.
  const BasicBlock *getIdom(const BasicBlock *BB) const;

  /// Returns true if \p A dominates \p B (reflexive). Unreachable blocks
  /// dominate nothing and are dominated by nothing.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  bool isReachable(const BasicBlock *BB) const {
    return RpoIndex.count(BB) != 0;
  }

  /// Reachable blocks in reverse post-order (entry first).
  const std::vector<const BasicBlock *> &reversePostOrder() const {
    return Rpo;
  }

  /// CFG predecessors of \p BB (may contain duplicates for condbr with
  /// identical targets; callers that care deduplicate).
  const std::vector<const BasicBlock *> &
  predecessors(const BasicBlock *BB) const;

private:
  const Function &F;
  std::vector<const BasicBlock *> Rpo;
  std::map<const BasicBlock *, size_t> RpoIndex;
  std::map<const BasicBlock *, const BasicBlock *> Idom;
  std::map<const BasicBlock *, std::vector<const BasicBlock *>> Preds;
  std::vector<const BasicBlock *> Empty;
};

} // namespace slo

#endif // SLO_ANALYSIS_DOMINATORS_H
