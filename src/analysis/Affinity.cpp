//===- analysis/Affinity.cpp - Field affinity and hotness -----------------===//

#include "analysis/Affinity.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "support/Casting.h"

#include <algorithm>
#include <set>

using namespace slo;

double TypeFieldStats::typeHotness() const {
  double Sum = 0.0;
  for (double H : Hotness)
    Sum += H;
  return Sum;
}

std::vector<double> TypeFieldStats::relativeHotness() const {
  double Max = 0.0;
  for (double H : Hotness)
    Max = std::max(Max, H);
  std::vector<double> Out(Hotness.size(), 0.0);
  if (Max <= 0.0)
    return Out;
  for (size_t I = 0; I < Hotness.size(); ++I)
    Out[I] = 100.0 * Hotness[I] / Max;
  return Out;
}

unsigned TypeFieldStats::hottestField() const {
  unsigned Best = 0;
  for (unsigned I = 1; I < Hotness.size(); ++I)
    if (Hotness[I] > Hotness[Best])
      Best = I;
  return Best;
}

bool TypeFieldStats::isReferenced(unsigned I) const {
  return Reads[I] > 0.0 || Writes[I] > 0.0 || Hotness[I] > 0.0;
}

TypeFieldStats &FieldStatsResult::getOrCreate(RecordType *Rec) {
  auto It = Map.find(Rec);
  if (It != Map.end())
    return It->second;
  TypeFieldStats &S = Map[Rec];
  S.Rec = Rec;
  S.Reads.assign(Rec->getNumFields(), 0.0);
  S.Writes.assign(Rec->getNumFields(), 0.0);
  S.Hotness.assign(Rec->getNumFields(), 0.0);
  Order.push_back(Rec);
  return S;
}

const TypeFieldStats *FieldStatsResult::get(const RecordType *Rec) const {
  auto It = Map.find(Rec);
  return It == Map.end() ? nullptr : &It->second;
}

namespace {

/// Collects raw (unmerged) groups per function, merges them, and folds
/// them into the affinity graphs.
class AffinityCollector {
public:
  AffinityCollector(const Module &M, const WeightSource &WS)
      : M(M), WS(WS) {}

  FieldStatsResult run() {
    // Make every completed record present, so cold types still report.
    for (RecordType *R : M.getTypes().records())
      if (!R->isOpaque())
        Result.getOrCreate(R);

    for (const auto &F : M.functions())
      if (!F->isDeclaration())
        collectFunction(*F);

    mergeGroupsIntoGraphs();
    return std::move(Result);
  }

private:
  struct RawGroup {
    RecordType *Rec;
    std::set<unsigned> Fields;
    double Weight;
  };

  void collectFunction(const Function &F) {
    DominatorTree DT(F);
    LoopInfo LI(F, DT);

    // Partition the function's field references by innermost loop
    // (nullptr key = straight-line code).
    std::map<const Loop *, std::map<RecordType *, std::set<unsigned>>>
        RegionFields;
    for (const auto &BB : F.blocks()) {
      const Loop *L = LI.getLoopFor(BB.get());
      for (const auto &I : BB->instructions()) {
        const auto *FA = dyn_cast<FieldAddrInst>(I.get());
        if (!FA)
          continue;
        RegionFields[L][FA->getRecord()].insert(FA->getFieldIndex());
        countReadsWrites(*FA, BB.get());
      }
    }

    for (auto &[L, PerType] : RegionFields) {
      double W = L ? WS.blockWeight(L->getHeader()) : WS.entryWeight(&F);
      if (W <= 0.0)
        continue;
      for (auto &[Rec, Fields] : PerType)
        Raw.push_back({Rec, Fields, W});
    }
  }

  void countReadsWrites(const FieldAddrInst &FA, const BasicBlock *BB) {
    double W = WS.blockWeight(BB);
    TypeFieldStats &S = Result.getOrCreate(FA.getRecord());
    unsigned Idx = FA.getFieldIndex();
    for (const Instruction *U : FA.users()) {
      if (U->getOpcode() == Instruction::OpStore &&
          cast<StoreInst>(U)->getPointer() == &FA)
        S.Writes[Idx] += W;
      else
        S.Reads[Idx] += W; // Loads and escaping uses count as reads.
    }
  }

  void mergeGroupsIntoGraphs() {
    // Merge identical (type, field-set) groups by adding weights.
    std::map<std::pair<RecordType *, std::vector<unsigned>>, double> Merged;
    for (const RawGroup &G : Raw) {
      std::vector<unsigned> Key(G.Fields.begin(), G.Fields.end());
      Merged[{G.Rec, Key}] += G.Weight;
    }

    for (auto &[Key, Weight] : Merged) {
      auto &[Rec, Fields] = Key;
      TypeFieldStats &S = Result.getOrCreate(Rec);
      AffinityGroup AG;
      AG.FieldIndices = Fields;
      AG.Weight = Weight;
      S.Groups.push_back(AG);

      if (Fields.size() == 1) {
        // Singleton group: self-edge.
        S.Affinity[{Fields[0], Fields[0]}] += Weight;
      } else {
        for (size_t A = 0; A < Fields.size(); ++A)
          for (size_t B_ = A + 1; B_ < Fields.size(); ++B_)
            S.Affinity[{Fields[A], Fields[B_]}] += Weight;
      }
    }

    // Hotness: sum of incident edge weights (self-edges count once).
    for (RecordType *R : Result.types()) {
      TypeFieldStats &S = Result.getOrCreate(R);
      for (auto &[Edge, W] : S.Affinity) {
        S.Hotness[Edge.first] += W;
        if (Edge.second != Edge.first)
          S.Hotness[Edge.second] += W;
      }
    }
  }

  const Module &M;
  const WeightSource &WS;
  FieldStatsResult Result;
  std::vector<RawGroup> Raw;
};

} // namespace

FieldStatsResult slo::computeFieldStats(const Module &M,
                                        const WeightSource &WS) {
  return AffinityCollector(M, WS).run();
}
