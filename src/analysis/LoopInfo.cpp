//===- analysis/LoopInfo.cpp - Natural loop detection ---------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>

using namespace slo;

bool Loop::contains(const Loop *L) const {
  while (L) {
    if (L == this)
      return true;
    L = L->getParent();
  }
  return false;
}

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  // Find back edges and group them by header.
  std::map<const BasicBlock *, std::vector<const BasicBlock *>> BackEdges;
  for (const auto &BB : F.blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    for (const BasicBlock *S : BB->successors())
      if (DT.dominates(S, BB.get()))
        BackEdges[S].push_back(BB.get());
  }

  // Build each loop body: reverse reachability from the latches without
  // crossing the header.
  for (auto &[Header, Latches] : BackEdges) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;
    L->BlockSet.insert(Header);
    std::vector<const BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L->BlockSet.insert(BB).second)
        continue;
      for (const BasicBlock *P : DT.predecessors(BB))
        Work.push_back(P);
    }
    L->Blocks.assign(L->BlockSet.begin(), L->BlockSet.end());
    // Keep deterministic order: by block number.
    std::sort(L->Blocks.begin(), L->Blocks.end(),
              [](const BasicBlock *A, const BasicBlock *B) {
                return A->getNumber() < B->getNumber();
              });
    Loops.push_back(std::move(L));
  }

  // Nesting: the parent of L is the smallest loop strictly containing L's
  // header (and different from L).
  for (auto &L : Loops) {
    Loop *Best = nullptr;
    for (auto &Candidate : Loops) {
      if (Candidate.get() == L.get())
        continue;
      if (!Candidate->contains(L->Header))
        continue;
      if (!Best || Candidate->Blocks.size() < Best->Blocks.size())
        Best = Candidate.get();
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L.get());
  }
  for (auto &L : Loops) {
    unsigned D = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++D;
    L->Depth = D;
  }

  // Innermost-loop map: the smallest loop containing each block.
  for (auto &L : Loops) {
    for (const BasicBlock *BB : L->Blocks) {
      Loop *&Slot = InnermostLoop[BB];
      if (!Slot || L->Blocks.size() < Slot->Blocks.size())
        Slot = L.get();
    }
  }

  // Order Loops outermost-first for deterministic iteration.
  std::sort(Loops.begin(), Loops.end(),
            [](const std::unique_ptr<Loop> &A,
               const std::unique_ptr<Loop> &B) {
              if (A->Depth != B->Depth)
                return A->Depth < B->Depth;
              return A->Header->getNumber() < B->Header->getNumber();
            });
}

Loop *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  auto It = InnermostLoop.find(BB);
  return It == InnermostLoop.end() ? nullptr : It->second;
}

std::vector<Loop *> LoopInfo::topLevel() const {
  std::vector<Loop *> Out;
  for (const auto &L : Loops)
    if (!L->getParent())
      Out.push_back(L.get());
  return Out;
}

std::vector<Loop *> LoopInfo::loopsInnermostFirst() const {
  std::vector<Loop *> Out;
  for (const auto &L : Loops)
    Out.push_back(L.get());
  std::reverse(Out.begin(), Out.end());
  return Out;
}

bool LoopInfo::isBackEdge(const BasicBlock *From, const BasicBlock *To) const {
  Loop *L = getLoopFor(From);
  while (L) {
    if (L->getHeader() == To)
      return true;
    L = L->getParent();
  }
  return false;
}
