//===- analysis/Dataflow.h - Generic dataflow solver -----------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic intraprocedural worklist dataflow solver over the IR CFG,
/// reusing the predecessor lists and reverse post-order the DominatorTree
/// already computes. The lint checkers (analysis/lint/) are built on it;
/// nothing in the framework is lint-specific.
///
/// The client supplies the lattice and the semantics:
///
///   struct Client {
///     /// The abstract state attached to each program point. Must be
///     /// default-constructible, copyable, and equality-comparable (the
///     /// solver detects convergence with operator==).
///     using State = ...;
///
///     /// The state at the flow boundary: the function entry for forward
///     /// problems, each return for backward problems.
///     State boundary() const;
///
///     /// Merges \p Src into \p Dst at a control-flow join. The join must
///     /// be monotone for the fixpoint iteration to terminate; the solver
///     /// additionally enforces a visit budget as a safety valve.
///     void join(State &Dst, const State &Src) const;
///
///     /// Applies one instruction's effect to \p S. Instructions are
///     /// visited in program order for forward problems and in reverse
///     /// program order for backward problems.
///     void transfer(const Instruction *I, State &S) const;
///
///     /// Optional edge refinement: adjusts the state flowing across the
///     /// CFG edge From -> To before it is joined into the target. This
///     /// is how a checker becomes path-sensitive at conditional
///     /// branches (e.g. "p == null" refines p on the true edge). A
///     /// client with no use for it provides an empty body.
///     void edge(const BasicBlock *From, const BasicBlock *To,
///               State &S) const;
///   };
///
/// Blocks unreachable from the flow boundary are never visited and have
/// no state; checkers must skip them (DataflowSolver::get returns null).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_DATAFLOW_H
#define SLO_ANALYSIS_DATAFLOW_H

#include "analysis/Dominators.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instructions.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

namespace slo {

enum class DataflowDirection { Forward, Backward };

const char *dataflowDirectionName(DataflowDirection D);

/// True when \p BB ends in a return (a flow boundary for backward
/// problems).
bool isExitBlock(const BasicBlock &BB);

/// Solver bookkeeping, exposed for tests and the lint.* counters.
struct DataflowStats {
  unsigned BlockVisits = 0;
  /// False when the visit budget ran out before the fixpoint; results
  /// must then be discarded (lint checkers stay silent on the function).
  bool Converged = true;
};

template <typename ClientT> class DataflowSolver {
public:
  using State = typename ClientT::State;

  /// The converged states of one block, in *program* order: Entry is the
  /// state before the first instruction, Exit the state after the
  /// terminator (regardless of the analysis direction).
  struct BlockStates {
    State Entry;
    State Exit;
    bool Visited = false;
  };

  DataflowSolver(const Function &F, const DominatorTree &DT, ClientT &Client,
                 DataflowDirection Dir)
      : F(F), DT(DT), Client(Client), Dir(Dir) {}

  /// Iterates to a fixpoint. \p VisitBudget bounds total block visits
  /// (0 selects 64 per reachable block); exceeding it clears Converged.
  DataflowStats run(unsigned VisitBudget = 0) {
    DataflowStats Stats;
    const std::vector<const BasicBlock *> &Rpo = DT.reversePostOrder();
    std::vector<const BasicBlock *> Order(Rpo.begin(), Rpo.end());
    if (Dir == DataflowDirection::Backward)
      std::reverse(Order.begin(), Order.end());
    if (VisitBudget == 0)
      VisitBudget = 64 * static_cast<unsigned>(Order.size()) + 64;

    std::deque<const BasicBlock *> Worklist(Order.begin(), Order.end());
    std::set<const BasicBlock *> Queued(Order.begin(), Order.end());
    while (!Worklist.empty()) {
      const BasicBlock *BB = Worklist.front();
      Worklist.pop_front();
      Queued.erase(BB);
      if (++Stats.BlockVisits > VisitBudget) {
        Stats.Converged = false;
        break;
      }

      // Flow-in: the boundary state and/or the joined states of the
      // already-visited flow predecessors, each refined along its edge.
      State In;
      bool AnyIn = false;
      if (isBoundary(BB)) {
        In = Client.boundary();
        AnyIn = true;
      }
      for (const BasicBlock *N : flowPreds(BB)) {
        auto It = States.find(N);
        if (It == States.end() || !It->second.Visited)
          continue;
        State Along = Dir == DataflowDirection::Forward ? It->second.Exit
                                                        : It->second.Entry;
        if (Dir == DataflowDirection::Forward)
          Client.edge(N, BB, Along);
        else
          Client.edge(BB, N, Along);
        if (!AnyIn) {
          In = std::move(Along);
          AnyIn = true;
        } else {
          Client.join(In, Along);
        }
      }
      // Nothing has flowed in yet (only back edges from unvisited
      // blocks): leave the block for a later visit; the predecessor's
      // first visit re-queues it.
      if (!AnyIn)
        continue;

      State Out = In;
      if (Dir == DataflowDirection::Forward) {
        for (const auto &I : BB->instructions())
          Client.transfer(I.get(), Out);
      } else {
        const auto &Insts = BB->instructions();
        for (auto It = Insts.rbegin(); It != Insts.rend(); ++It)
          Client.transfer(It->get(), Out);
      }

      BlockStates &BS = States[BB];
      const State &OldFlowOut =
          Dir == DataflowDirection::Forward ? BS.Exit : BS.Entry;
      bool Changed = !BS.Visited || !(OldFlowOut == Out);
      if (Dir == DataflowDirection::Forward) {
        BS.Entry = std::move(In);
        BS.Exit = std::move(Out);
      } else {
        BS.Exit = std::move(In);
        BS.Entry = std::move(Out);
      }
      BS.Visited = true;
      if (Changed)
        for (const BasicBlock *S : flowSuccs(BB))
          if (Queued.insert(S).second)
            Worklist.push_back(S);
    }
    return Stats;
  }

  /// The converged states of \p BB, or null when the block was never
  /// reached by the flow (unreachable code, or no path to a return in a
  /// backward problem).
  const BlockStates *get(const BasicBlock *BB) const {
    auto It = States.find(BB);
    if (It == States.end() || !It->second.Visited)
      return nullptr;
    return &It->second;
  }

private:
  bool isBoundary(const BasicBlock *BB) const {
    return Dir == DataflowDirection::Forward ? BB == F.getEntry()
                                             : isExitBlock(*BB);
  }

  std::vector<const BasicBlock *> flowPreds(const BasicBlock *BB) const {
    if (Dir == DataflowDirection::Forward)
      return DT.predecessors(BB);
    std::vector<BasicBlock *> S = BB->successors();
    return {S.begin(), S.end()};
  }

  std::vector<const BasicBlock *> flowSuccs(const BasicBlock *BB) const {
    if (Dir == DataflowDirection::Backward)
      return DT.predecessors(BB);
    std::vector<BasicBlock *> S = BB->successors();
    return {S.begin(), S.end()};
  }

  const Function &F;
  const DominatorTree &DT;
  ClientT &Client;
  DataflowDirection Dir;
  std::map<const BasicBlock *, BlockStates> States;
};

} // namespace slo

#endif // SLO_ANALYSIS_DATAFLOW_H
