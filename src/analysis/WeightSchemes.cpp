//===- analysis/WeightSchemes.cpp - The paper's weighting schemes ---------===//

#include "analysis/WeightSchemes.h"

#include "support/Error.h"

using namespace slo;

const char *slo::weightSchemeName(WeightScheme S) {
  switch (S) {
  case WeightScheme::PBO:
    return "PBO";
  case WeightScheme::PPBO:
    return "PPBO";
  case WeightScheme::SPBO:
    return "SPBO";
  case WeightScheme::ISPBO:
    return "ISPBO";
  case WeightScheme::ISPBO_NO:
    return "ISPBO.NO";
  case WeightScheme::ISPBO_W:
    return "ISPBO.W";
  case WeightScheme::DMISS:
    return "DMISS";
  case WeightScheme::DLAT:
    return "DLAT";
  case WeightScheme::DMISS_NO:
    return "DMISS.NO";
  }
  return "?";
}

static const FeedbackFile &requireProfile(const FeedbackFile *FB,
                                          const char *Scheme) {
  if (!FB)
    reportFatalError(std::string("weighting scheme ") + Scheme +
                     " requires a profile that was not provided");
  return *FB;
}

/// Replaces the hotness vectors with d-cache derived values.
static void overlayCacheHotness(FieldStatsResult &Stats,
                                const FeedbackFile &FB, bool UseLatency) {
  for (RecordType *R : Stats.types()) {
    TypeFieldStats &S = Stats.getOrCreate(R);
    for (unsigned I = 0; I < R->getNumFields(); ++I) {
      const FieldCacheStats *C = FB.getFieldStats(R, I);
      if (!C) {
        S.Hotness[I] = 0.0;
        continue;
      }
      S.Hotness[I] = UseLatency ? C->TotalLatency
                                : static_cast<double>(C->Misses);
    }
  }
}

FieldStatsResult slo::computeSchemeFieldStats(WeightScheme Scheme,
                                              const SchemeInputs &Inputs) {
  const Module &M = *Inputs.M;
  switch (Scheme) {
  case WeightScheme::PBO: {
    ProfileWeightSource WS(requireProfile(Inputs.TrainProfile, "PBO"));
    return computeFieldStats(M, WS);
  }
  case WeightScheme::PPBO: {
    ProfileWeightSource WS(requireProfile(Inputs.RefProfile, "PPBO"));
    return computeFieldStats(M, WS);
  }
  case WeightScheme::SPBO: {
    StaticEstimator SE(M);
    LocalStaticWeightSource WS(SE);
    return computeFieldStats(M, WS);
  }
  case WeightScheme::ISPBO: {
    StaticEstimator SE(M);
    CallGraph CG(M);
    InterProcOptions Opts;
    Opts.Exponent = Inputs.Exponent;
    Opts.ApplyExponent = true;
    Opts.SeedUncalledDefinitions = Inputs.SeedUncalledDefinitions;
    InterProcFrequencies IPF(SE, CG, Opts);
    InterProcWeightSource WS(IPF);
    return computeFieldStats(M, WS);
  }
  case WeightScheme::ISPBO_NO: {
    StaticEstimator SE(M);
    CallGraph CG(M);
    InterProcOptions Opts;
    Opts.ApplyExponent = false;
    Opts.SeedUncalledDefinitions = Inputs.SeedUncalledDefinitions;
    InterProcFrequencies IPF(SE, CG, Opts);
    InterProcWeightSource WS(IPF);
    return computeFieldStats(M, WS);
  }
  case WeightScheme::ISPBO_W: {
    // Raised back-edge probabilities replace the exponent.
    StaticEstimator SE(M, BranchProbOptions::ispboW());
    CallGraph CG(M);
    InterProcOptions Opts;
    Opts.ApplyExponent = false;
    Opts.SeedUncalledDefinitions = Inputs.SeedUncalledDefinitions;
    InterProcFrequencies IPF(SE, CG, Opts);
    InterProcWeightSource WS(IPF);
    return computeFieldStats(M, WS);
  }
  case WeightScheme::DMISS:
  case WeightScheme::DLAT: {
    const FeedbackFile &FB =
        requireProfile(Inputs.TrainProfile, weightSchemeName(Scheme));
    ProfileWeightSource WS(FB);
    FieldStatsResult Stats = computeFieldStats(M, WS);
    overlayCacheHotness(Stats, FB, Scheme == WeightScheme::DLAT);
    return Stats;
  }
  case WeightScheme::DMISS_NO: {
    const FeedbackFile &FB =
        requireProfile(Inputs.UninstrumentedProfile, "DMISS.NO");
    ProfileWeightSource WS(FB);
    FieldStatsResult Stats = computeFieldStats(M, WS);
    overlayCacheHotness(Stats, FB, /*UseLatency=*/false);
    return Stats;
  }
  }
  SLO_UNREACHABLE("unknown weighting scheme");
}
