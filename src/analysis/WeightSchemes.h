//===- analysis/WeightSchemes.h - The paper's weighting schemes -*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nine weighting mechanisms evaluated in the paper's Table 2:
///
///   PBO      profiled edge counts from a training run
///   PPBO     "perfect PBO": profile from the reference input
///   SPBO     local static estimates (Wu-Larus), no scaling
///   ISPBO    inter-procedurally scaled static estimates, exponent E=1.5
///   ISPBO.NO ISPBO without the exponent
///   ISPBO.W  ISPBO with raised back-edge probabilities instead of the
///            exponent (fp 0.93->0.98, int 0.88->0.95)
///   DMISS    field hotness taken from d-cache miss counts
///   DLAT     field hotness taken from accumulated load latencies
///   DMISS.NO DMISS collected without instrumentation
///
/// Each scheme produces a FieldStatsResult; the bench for Table 2
/// correlates their relative hotness vectors against PBO.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_WEIGHTSCHEMES_H
#define SLO_ANALYSIS_WEIGHTSCHEMES_H

#include "analysis/Affinity.h"
#include "analysis/InterProcFrequency.h"
#include "profile/FeedbackFile.h"

#include <string>

namespace slo {

enum class WeightScheme {
  PBO,
  PPBO,
  SPBO,
  ISPBO,
  ISPBO_NO,
  ISPBO_W,
  DMISS,
  DLAT,
  DMISS_NO,
};

const char *weightSchemeName(WeightScheme S);

/// Inputs a scheme may need. Null profiles are only an error for the
/// schemes that require them.
struct SchemeInputs {
  const Module *M = nullptr;
  /// Profile from the training input (PBO, and cache events for
  /// DMISS/DLAT).
  const FeedbackFile *TrainProfile = nullptr;
  /// Profile from the reference input (PPBO).
  const FeedbackFile *RefProfile = nullptr;
  /// Cache events sampled without instrumentation (DMISS.NO).
  const FeedbackFile *UninstrumentedProfile = nullptr;
  /// ISPBO exponent E.
  double Exponent = 1.5;
  /// Forwarded to InterProcOptions::SeedUncalledDefinitions for the
  /// ISPBO variants (per-TU summary mode).
  bool SeedUncalledDefinitions = false;
};

/// Weight source backed by a feedback file (PBO / PPBO).
class ProfileWeightSource : public WeightSource {
public:
  explicit ProfileWeightSource(const FeedbackFile &FB) : FB(FB) {}
  double blockWeight(const BasicBlock *BB) const override {
    return static_cast<double>(FB.getBlockCount(BB));
  }
  double entryWeight(const Function *F) const override {
    return static_cast<double>(FB.getEntryCount(F));
  }

private:
  const FeedbackFile &FB;
};

/// Weight source backed by purely local static estimates (SPBO).
class LocalStaticWeightSource : public WeightSource {
public:
  explicit LocalStaticWeightSource(const StaticEstimator &SE) : SE(SE) {}
  double blockWeight(const BasicBlock *BB) const override {
    const Function *F = BB->getParent();
    return F->isDeclaration() ? 0.0 : SE.get(F).BF->get(BB);
  }
  double entryWeight(const Function *F) const override {
    return F->isDeclaration() ? 0.0 : 1.0;
  }

private:
  const StaticEstimator &SE;
};

/// Weight source backed by inter-procedurally scaled estimates (ISPBO and
/// variants).
class InterProcWeightSource : public WeightSource {
public:
  explicit InterProcWeightSource(const InterProcFrequencies &IPF)
      : IPF(IPF) {}
  double blockWeight(const BasicBlock *BB) const override {
    return IPF.getBlockWeight(BB);
  }
  double entryWeight(const Function *F) const override {
    return IPF.getEntryWeight(F);
  }

private:
  const InterProcFrequencies &IPF;
};

/// Computes the per-field statistics for \p Scheme. For the d-cache
/// schemes the hotness vector is replaced by miss counts / latencies
/// while reads/writes/affinity come from the underlying profile weights.
FieldStatsResult computeSchemeFieldStats(WeightScheme Scheme,
                                         const SchemeInputs &Inputs);

} // namespace slo

#endif // SLO_ANALYSIS_WEIGHTSCHEMES_H
