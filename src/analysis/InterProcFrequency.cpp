//===- analysis/InterProcFrequency.cpp - ISPBO propagation ----------------===//

#include "analysis/InterProcFrequency.h"

#include <cmath>

using namespace slo;

InterProcFrequencies::InterProcFrequencies(const StaticEstimator &SE,
                                           const CallGraph &CG,
                                           const InterProcOptions &Opts)
    : SE(SE), Opts(Opts) {
  const Module &M = SE.getModule();
  for (const auto &F : M.functions())
    GlobalCount[F.get()] = 0.0;

  const Function *Entry = M.lookupFunction(Opts.EntryFunction);
  if (Entry)
    GlobalCount[Entry] = 1.0;

  if (Opts.SeedUncalledDefinitions) {
    for (const auto &FP : M.functions()) {
      const Function *F = FP.get();
      if (F->isDeclaration() || GlobalCount[F] > 0.0)
        continue;
      bool HasOutsideCaller = false;
      for (const CallSiteInfo *S : CG.callersOf(F))
        if (!CG.isIntraScc(S->Caller, F)) {
          HasOutsideCaller = true;
          break;
        }
      if (!HasOutsideCaller)
        GlobalCount[F] = 1.0;
    }
  }

  // The local frequency of the block containing a call site is E_loc(c);
  // with N_loc = 1, E_g(c) = E_loc(c) * N_g(caller).
  auto LocalSiteFreq = [&](const CallSiteInfo *S) {
    if (S->Caller->isDeclaration())
      return 0.0;
    const FunctionStaticAnalyses &A = SE.get(S->Caller);
    return A.BF->get(S->Call->getParent());
  };

  // Pass 1: topological sweep over the SCC condensation, using only edges
  // from outside each SCC.
  for (const auto &Scc : CG.sccsTopological()) {
    for (const Function *F : Scc) {
      double N = GlobalCount[F]; // 1 for the entry, 0 otherwise.
      for (const CallSiteInfo *S : CG.callersOf(F)) {
        if (CG.isIntraScc(S->Caller, F))
          continue;
        N += LocalSiteFreq(S) * GlobalCount[S->Caller];
      }
      GlobalCount[F] = N;
    }
    // Pass 2 (within the SCC): one relaxation round for recursive edges,
    // approximating recursion as a single extra level. A no-op for
    // non-recursive SCCs (no intra-SCC edges exist).
    std::map<const Function *, double> Extra;
    for (const Function *F : Scc) {
      double Add = 0.0;
      for (const CallSiteInfo *S : CG.callersOf(F))
        if (CG.isIntraScc(S->Caller, F))
          Add += LocalSiteFreq(S) * GlobalCount[S->Caller];
      Extra[F] = Add;
    }
    for (const Function *F : Scc)
      GlobalCount[F] += Extra[F];
  }
}

double InterProcFrequencies::getGlobalCount(const Function *F) const {
  auto It = GlobalCount.find(F);
  return It == GlobalCount.end() ? 0.0 : It->second;
}

double InterProcFrequencies::getScale(const Function *F) const {
  double S = getGlobalCount(F);
  if (S <= 0.0)
    return 0.0;
  return Opts.ApplyExponent ? std::pow(S, Opts.Exponent) : S;
}

double InterProcFrequencies::getBlockWeight(const BasicBlock *BB) const {
  const Function *F = BB->getParent();
  if (F->isDeclaration())
    return 0.0;
  return SE.get(F).BF->get(BB) * getScale(F);
}
