//===- analysis/CallGraph.cpp - Call graph and SCCs -----------------------===//

#include "analysis/CallGraph.h"

#include "support/Casting.h"

#include <set>

#include <algorithm>

using namespace slo;

namespace {

/// Iterative Tarjan SCC over the call graph.
class TarjanScc {
public:
  TarjanScc(const std::vector<const Function *> &Nodes,
            const std::map<const Function *, std::vector<const Function *>>
                &Succs)
      : Succs(Succs) {
    for (const Function *F : Nodes)
      if (!Index.count(F))
        strongConnect(F);
  }

  std::map<const Function *, unsigned> SccId;
  std::vector<std::vector<const Function *>> Sccs; // reverse topological

private:
  struct Frame {
    const Function *F;
    size_t NextSucc = 0;
  };

  void strongConnect(const Function *Root) {
    std::vector<Frame> CallStack;
    CallStack.push_back({Root});
    push(Root);
    while (!CallStack.empty()) {
      Frame &Top = CallStack.back();
      const auto &S = Succs.at(Top.F);
      if (Top.NextSucc < S.size()) {
        const Function *W = S[Top.NextSucc++];
        if (!Index.count(W)) {
          push(W);
          CallStack.push_back({W});
        } else if (OnStack.count(W)) {
          Low[Top.F] = std::min(Low[Top.F], Index[W]);
        }
      } else {
        if (Low[Top.F] == Index[Top.F]) {
          std::vector<const Function *> Scc;
          const Function *W;
          do {
            W = Stack.back();
            Stack.pop_back();
            OnStack.erase(W);
            SccId[W] = static_cast<unsigned>(Sccs.size());
            Scc.push_back(W);
          } while (W != Top.F);
          Sccs.push_back(std::move(Scc));
        }
        const Function *Done = Top.F;
        CallStack.pop_back();
        if (!CallStack.empty())
          Low[CallStack.back().F] =
              std::min(Low[CallStack.back().F], Low[Done]);
      }
    }
  }

  void push(const Function *F) {
    Index[F] = Low[F] = Counter++;
    Stack.push_back(F);
    OnStack.insert(F);
  }

  const std::map<const Function *, std::vector<const Function *>> &Succs;
  std::map<const Function *, unsigned> Index, Low;
  std::set<const Function *> OnStack;
  std::vector<const Function *> Stack;
  unsigned Counter = 0;
};

} // namespace

CallGraph::CallGraph(const Module &M) : M(M) {
  std::vector<const Function *> Nodes;
  std::map<const Function *, std::vector<const Function *>> Succs;
  for (const auto &F : M.functions()) {
    Nodes.push_back(F.get());
    Succs[F.get()] = {};
  }

  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        const auto *C = dyn_cast<CallInst>(I.get());
        if (!C)
          continue;
        CallSiteInfo Info;
        Info.Call = C;
        Info.Caller = F.get();
        Info.Callee = C->getCallee();
        Sites.push_back(Info);
        Succs[F.get()].push_back(C->getCallee());
      }
    }
  }
  for (const CallSiteInfo &S : Sites)
    Callers[S.Callee].push_back(&S);

  TarjanScc T(Nodes, Succs);
  SccId = std::move(T.SccId);
  // Tarjan emits SCCs in reverse topological order; reverse to get
  // callers-first.
  SccsTopo.assign(T.Sccs.rbegin(), T.Sccs.rend());
}

const std::vector<const CallSiteInfo *> &
CallGraph::callersOf(const Function *F) const {
  auto It = Callers.find(F);
  return It == Callers.end() ? Empty : It->second;
}
