//===- analysis/Dataflow.cpp - Generic dataflow solver --------------------===//

#include "analysis/Dataflow.h"

using namespace slo;

const char *slo::dataflowDirectionName(DataflowDirection D) {
  return D == DataflowDirection::Forward ? "forward" : "backward";
}

bool slo::isExitBlock(const BasicBlock &BB) {
  const Instruction *T = BB.getTerminator();
  return T && T->getOpcode() == Instruction::OpRet;
}
