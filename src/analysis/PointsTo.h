//===- analysis/PointsTo.h - Field-sensitive points-to analysis -*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-insensitive, field-sensitive, context-insensitive Andersen-style
/// inclusion-based points-to analysis over the linked module. This is the
/// analysis the paper's Table 1 "Relax" column hypothesizes ("how many
/// types a field-sensitive points-to analysis could prove"): instead of
/// optimistically forgiving CSTT/CSTF/ATKN, the refinement layer on top of
/// this analysis proves (or fails to prove) each violation site.
///
/// Model:
///  - Abstract memory objects are created per allocation site: one per
///    alloca, one per malloc/calloc/realloc instruction, one per global
///    variable, one per function (for function pointers), plus a single
///    external object standing for all memory outside the program.
///  - Each object has a base cell (the object as a whole, what pointers
///    to the object point at) and lazily created field cells keyed by
///    byte offset (what FieldAddr results point at). Arrays of records
///    are smashed: all elements share the object's cells.
///  - Constraints: address-of (alloca/malloc/global/function), copy
///    (casts, index arithmetic, call argument/return wiring), field
///    projection (FieldAddr), load, store. Calls to library/external
///    declarations route through the external object.
///  - The solver is a worklist fixpoint with offline cycle collapsing
///    (Tarjan SCC over the copy graph, merged via union-find).
///  - Escape states form a lattice NoEscape < ArgEscape < GlobalEscape <
///    ExternalEscape, computed post-solve by reachability: objects
///    reachable from the external object's contents escape externally,
///    objects reachable from globals escape globally, objects passed to
///    analyzed functions escape as arguments.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_POINTSTO_H
#define SLO_ANALYSIS_POINTSTO_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace slo {

/// How far an abstract object escapes. Order matters: higher values
/// escape further.
enum class EscapeState : uint8_t {
  NoEscape = 0,
  /// Passed to (or reachable from the arguments of) an analyzed function.
  ArgEscape = 1,
  /// Reachable from a global variable.
  GlobalEscape = 2,
  /// Reachable from outside the analysis scope (library/external calls,
  /// the external object).
  ExternalEscape = 3,
};

const char *escapeStateName(EscapeState E);

/// One abstract memory object.
struct MemObject {
  enum class Kind { Stack, Heap, Global, Function, External };
  Kind K = Kind::External;
  /// The alloca / malloc / calloc / realloc instruction, global variable,
  /// or function this object abstracts (null for the external object).
  const Value *Origin = nullptr;
  EscapeState Escape = EscapeState::NoEscape;
  /// Record types the object's memory is viewed as anywhere in the
  /// program (via typed pointers to the object).
  std::set<RecordType *> Views;

  /// Short rendering for justification strings ("heap:init_network").
  std::string describe() const;
};

/// Solver statistics (exposed for tests and the bench harness).
struct PointsToStats {
  unsigned NumValueNodes = 0;
  unsigned NumObjects = 0;
  unsigned NumCells = 0;
  unsigned NumCopyEdges = 0;
  unsigned NumComplexConstraints = 0;
  unsigned SolverPasses = 0;
  unsigned NodesCollapsed = 0;
};

/// The analysis result: per-value points-to sets over abstract objects,
/// escape states, record views, and indirect-call resolution.
class PointsToResult {
public:
  using ObjectID = uint32_t;

  /// Abstract objects \p V may point into (empty when V is untracked or
  /// provably null).
  std::vector<ObjectID> pointedObjects(const Value *V) const;

  const MemObject &object(ObjectID O) const { return Objects[O]; }
  unsigned numObjects() const { return static_cast<unsigned>(Objects.size()); }

  /// True when \p V may point to memory outside the analysis scope.
  bool pointsToExternal(const Value *V) const;

  /// The maximum escape state over the objects \p V may point into;
  /// ExternalEscape when V is untracked (nothing can be proven about it).
  EscapeState escapeOf(const Value *V) const;

  /// True when \p A and \p B may point at the same cell.
  bool mayAlias(const Value *A, const Value *B) const;

  /// All values (instructions, arguments, globals-as-addresses) whose
  /// points-to set intersects \p V's: everything that may denote the same
  /// memory cell. Includes \p V itself.
  std::vector<const Value *> aliasesOf(const Value *V) const;

  /// Objects whose memory is viewed as record \p R somewhere.
  std::vector<ObjectID> objectsViewedAs(const RecordType *R) const;

  /// Resolution of an indirect call: the possible targets, and whether
  /// the set is complete (the callee pointer cannot point outside the
  /// collected function set).
  struct CallTargets {
    std::vector<const Function *> Targets;
    bool Complete = false;
  };
  CallTargets callTargets(const IndirectCallInst *IC) const;

  const PointsToStats &stats() const { return Stats; }

private:
  friend class PointsToBuilder;

  /// Node id per tracked value (post-union-find representative).
  std::map<const Value *, uint32_t> ValueNode;
  /// Representative points-to set per node: cell ids.
  std::vector<std::vector<uint32_t>> NodePointsTo;
  /// Cell id -> owning object.
  std::vector<ObjectID> CellObject;
  /// Cell id of the external object's base cell.
  uint32_t ExternalCell = 0;
  std::vector<MemObject> Objects;
  /// Values in visitation order (for aliasesOf).
  std::vector<const Value *> TrackedValues;
  std::map<const IndirectCallInst *, CallTargets> IndirectTargets;
  PointsToStats Stats;
};

/// Runs the analysis over the linked module \p M.
PointsToResult analyzePointsTo(const Module &M);

} // namespace slo

#endif // SLO_ANALYSIS_POINTSTO_H
