//===- analysis/Legality.cpp - Structure layout legality ------------------===//

#include "analysis/Legality.h"

#include "support/Casting.h"
#include "support/Error.h"

using namespace slo;

const char *slo::violationName(Violation V) {
  switch (V) {
  case Violation::CSTT:
    return "CSTT";
  case Violation::CSTF:
    return "CSTF";
  case Violation::ATKN:
    return "ATKN";
  case Violation::LIBC:
    return "LIBC";
  case Violation::IND:
    return "IND";
  case Violation::SMAL:
    return "SMAL";
  case Violation::MSET:
    return "MSET";
  case Violation::NEST:
    return "NEST";
  case Violation::UNSZ:
    return "UNSZ";
  case Violation::ESCP:
    return "ESCP";
  }
  return "????";
}

std::string slo::violationMaskToString(uint32_t Mask) {
  static const Violation All[] = {
      Violation::CSTT, Violation::CSTF, Violation::ATKN, Violation::LIBC,
      Violation::IND,  Violation::SMAL, Violation::MSET, Violation::NEST,
      Violation::UNSZ, Violation::ESCP};
  std::string Out;
  for (Violation V : All) {
    if (!(Mask & violationBit(V)))
      continue;
    if (!Out.empty())
      Out += "|";
    Out += violationName(V);
  }
  return Out;
}

std::string TypeAttributes::toString() const {
  std::string Out;
  auto Add = [&](bool Flag, const char *Name) {
    if (!Flag)
      return;
    if (!Out.empty())
      Out += " ";
    Out += Name;
  };
  Add(HasGlobalVar, "GVAR");
  Add(HasLocalVar, "LVAR");
  Add(HasGlobalPtr, "GPTR");
  Add(HasLocalPtr, "LPTR");
  Add(HasStaticArray, "ARRY");
  Add(DynamicallyAllocated, "HEAP");
  Add(Freed, "FREE");
  Add(Reallocated, "REAL");
  Add(HasRecursivePtrField, "RPTR");
  Add(PassedToFunction, "PARG");
  return Out;
}

std::string slo::describeViolationSite(const ViolationSite &S) {
  std::string Out = std::string("[") + violationName(S.Kind) + "] ";
  if (S.Inst) {
    Out += Instruction::getOpcodeName(S.Inst->getOpcode());
    if (!S.Inst->getName().empty())
      Out += " '" + S.Inst->getName() + "'";
  }
  if (!S.Function.empty())
    Out += " in '" + S.Function + "'";
  if (!S.Detail.empty())
    Out += ": " + S.Detail;
  return Out;
}

RecordType *slo::strippedRecord(Type *Ty) {
  while (true) {
    if (auto *PT = dyn_cast<PointerType>(Ty)) {
      Ty = PT->getPointee();
      continue;
    }
    if (auto *AT = dyn_cast<ArrayType>(Ty)) {
      Ty = AT->getElementType();
      continue;
    }
    break;
  }
  return dyn_cast<RecordType>(Ty);
}

const TypeLegality &LegalityResult::get(const RecordType *Rec) const {
  auto It = Map.find(Rec);
  if (It == Map.end())
    reportFatalError("legality requested for unanalyzed type '" +
                     Rec->getRecordName() + "'");
  return It->second;
}

TypeLegality &LegalityResult::getOrCreate(RecordType *Rec) {
  auto It = Map.find(Rec);
  if (It != Map.end())
    return It->second;
  TypeLegality &L = Map[Rec];
  L.Rec = Rec;
  Order.push_back(Rec);
  return L;
}

std::vector<RecordType *> LegalityResult::legalTypes(bool Relax) const {
  std::vector<RecordType *> Out;
  for (RecordType *R : Order)
    if (Map.at(R).isLegal(Relax))
      Out.push_back(R);
  return Out;
}

namespace {

/// The single-pass FE legality walk plus the IPA aggregation.
class LegalityAnalyzer {
public:
  LegalityAnalyzer(const Module &M, const LegalityOptions &Opts)
      : M(M), Opts(Opts) {}

  LegalityResult run() {
    // Seed every completed record type so even unreferenced types show up
    // in the census (Table 1 counts all types).
    for (RecordType *R : M.getTypes().records())
      if (!R->isOpaque())
        Result.getOrCreate(R);

    collectTypeShapes();
    for (const auto &G : M.globals())
      collectGlobal(*G);
    for (const auto &F : M.functions())
      collectFunction(*F);
    aggregate();
    return std::move(Result);
  }

private:
  void flag(RecordType *R, Violation V, const Instruction *I = nullptr,
            std::string Detail = "", std::string Symbol = "") {
    if (!R)
      return;
    TypeLegality &L = Result.getOrCreate(R);
    L.Violations |= violationBit(V);
    // One site per (instruction, test); the per-type site lists are short
    // enough for a linear scan.
    for (const ViolationSite &S : L.Sites)
      if (S.Inst == I && S.Kind == V)
        return;
    ViolationSite Site;
    Site.Kind = V;
    Site.Inst = I;
    if (I && I->getFunction())
      Site.Function = I->getFunction()->getName();
    Site.Detail = std::move(Detail);
    Site.Symbol = std::move(Symbol);
    L.Sites.push_back(std::move(Site));
  }
  TypeAttributes *attrs(RecordType *R) {
    return R ? &Result.getOrCreate(R).Attrs : nullptr;
  }

  /// NEST and recursive-pointer attributes come from the type shapes
  /// themselves.
  void collectTypeShapes() {
    for (RecordType *R : M.getTypes().records()) {
      if (R->isOpaque())
        continue;
      for (const Field &F : R->fields()) {
        Type *FT = F.Ty;
        // By-value nesting (directly or through a fixed array) marks both
        // the outer and the inner record invalid (paper: implementation
        // limitation NEST).
        Type *Stripped = FT;
        while (auto *AT = dyn_cast<ArrayType>(Stripped))
          Stripped = AT->getElementType();
        if (auto *Inner = dyn_cast<RecordType>(Stripped)) {
          flag(R, Violation::NEST, nullptr,
               "nests '" + Inner->getRecordName() + "' by value");
          flag(Inner, Violation::NEST, nullptr,
               "nested by value in '" + R->getRecordName() + "'");
        }
        // Pointer fields referring to records: attribute only (affects
        // peeling eligibility, not legality).
        if (FT->isPointer())
          if (RecordType *Target = strippedRecord(FT))
            Result.getOrCreate(Target).Attrs.HasRecursivePtrField = true;
      }
    }
  }

  void collectGlobal(const GlobalVariable &G) {
    Type *VT = G.getValueType();
    if (auto *R = dyn_cast<RecordType>(VT))
      attrs(R)->HasGlobalVar = true;
    if (auto *PT = dyn_cast<PointerType>(VT)) {
      if (RecordType *R = strippedRecord(PT)) {
        attrs(R)->HasGlobalPtr = true;
        Result.getOrCreate(R).PointerGlobals.push_back(
            const_cast<GlobalVariable *>(&G));
      }
    }
    if (auto *AT = dyn_cast<ArrayType>(VT))
      if (auto *R = dyn_cast<RecordType>(AT->getElementType()))
        attrs(R)->HasStaticArray = true;
  }

  void collectFunction(const Function &F) {
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        collectInstruction(*I);
  }

  void collectInstruction(const Instruction &I) {
    switch (I.getOpcode()) {
    case Instruction::OpAlloca: {
      const auto *A = cast<AllocaInst>(&I);
      Type *Ty = A->getAllocatedType();
      if (auto *R = dyn_cast<RecordType>(Ty))
        attrs(R)->HasLocalVar = true;
      if (Ty->isPointer())
        if (RecordType *R = strippedRecord(Ty))
          attrs(R)->HasLocalPtr = true;
      if (auto *AT = dyn_cast<ArrayType>(Ty))
        if (auto *R = dyn_cast<RecordType>(AT->getElementType()))
          attrs(R)->HasStaticArray = true;
      return;
    }
    case Instruction::OpBitcast:
      collectCast(*cast<CastInst>(&I));
      return;
    case Instruction::OpPtrToInt: {
      const auto *C = cast<CastInst>(&I);
      if (RecordType *R = strippedRecord(C->getCastOperand()->getType()))
        flag(R, Violation::CSTF, &I, "pointer-to-integer cast");
      return;
    }
    case Instruction::OpIntToPtr: {
      const auto *C = cast<CastInst>(&I);
      if (RecordType *R = strippedRecord(C->getType()))
        flag(R, Violation::CSTT, &I, "integer-to-pointer cast");
      return;
    }
    case Instruction::OpFieldAddr:
      collectFieldAddr(*cast<FieldAddrInst>(&I));
      return;
    case Instruction::OpStore: {
      const auto *S = cast<StoreInst>(&I);
      // Stores of record-pointer values (into any memory) matter for
      // peeling eligibility.
      Type *VT = S->getStoredValue()->getType();
      if (VT->isPointer())
        if (RecordType *R = strippedRecord(VT))
          attrs(R)->PtrValueStores += 1;
      return;
    }
    case Instruction::OpCall:
      collectCall(*cast<CallInst>(&I));
      return;
    case Instruction::OpICall: {
      const auto *C = cast<IndirectCallInst>(&I);
      for (unsigned A = 0; A < C->getNumArgs(); ++A)
        if (RecordType *R = strippedRecord(C->getArg(A)->getType()))
          flag(R, Violation::IND, &I, "escapes to an indirect call");
      if (RecordType *R = strippedRecord(C->getType()))
        flag(R, Violation::IND, &I, "returned from an indirect call");
      return;
    }
    case Instruction::OpMalloc:
    case Instruction::OpCalloc:
      collectAllocation(I);
      return;
    case Instruction::OpRealloc: {
      const auto *R = cast<ReallocInst>(&I);
      if (RecordType *Rec = strippedRecord(R->getPtr()->getType()))
        attrs(Rec)->Reallocated = true;
      return;
    }
    case Instruction::OpFree: {
      const auto *Fr = cast<FreeInst>(&I);
      if (RecordType *Rec = strippedRecord(Fr->getPtr()->getType())) {
        attrs(Rec)->Freed = true;
        Result.getOrCreate(Rec).FreeSites.push_back(
            const_cast<Instruction *>(&I));
      }
      return;
    }
    case Instruction::OpMemset: {
      const auto *Ms = cast<MemsetInst>(&I);
      if (RecordType *Rec = strippedRecord(Ms->getPtr()->getType()))
        flag(Rec, Violation::MSET, &I, "memset over the type");
      return;
    }
    case Instruction::OpMemcpy: {
      const auto *Mc = cast<MemcpyInst>(&I);
      if (RecordType *Rec = strippedRecord(Mc->getDst()->getType()))
        flag(Rec, Violation::MSET, &I, "memcpy destination");
      if (RecordType *Rec = strippedRecord(Mc->getSrc()->getType()))
        flag(Rec, Violation::MSET, &I, "memcpy source");
      return;
    }
    default:
      return;
    }
  }

  /// Returns true when \p Cast is the benign array-to-pointer decay the
  /// frontend emits ([N x T]* -> T*).
  static bool isArrayDecay(const CastInst &Cast) {
    auto *SrcPT = dyn_cast<PointerType>(Cast.getCastOperand()->getType());
    auto *DstPT = dyn_cast<PointerType>(Cast.getType());
    if (!SrcPT || !DstPT)
      return false;
    auto *AT = dyn_cast<ArrayType>(SrcPT->getPointee());
    return AT && AT->getElementType() == DstPT->getPointee();
  }

  void collectCast(const CastInst &Cast) {
    if (isArrayDecay(Cast))
      return;
    RecordType *From = strippedRecord(Cast.getCastOperand()->getType());
    RecordType *To = strippedRecord(Cast.getType());
    if (From == To && From) {
      // T** -> T* style casts still count as unsafe use of T.
      flag(From, Violation::CSTF, &Cast, "pointer-depth cast");
      flag(To, Violation::CSTT, &Cast, "pointer-depth cast");
      return;
    }
    if (From)
      flag(From, Violation::CSTF, &Cast,
           "cast from the record type to '" + Cast.getType()->getName() +
               "'");
    if (To) {
      // The paper's tolerance list: casts of malloc()/calloc() return
      // values are the idiomatic typed allocation and do not invalidate.
      const Value *Src = Cast.getCastOperand();
      bool FromAllocator = isa<MallocInst>(Src) || isa<CallocInst>(Src) ||
                           isa<ReallocInst>(Src);
      if (!FromAllocator)
        flag(To, Violation::CSTT, &Cast,
             "cast to the record type from '" +
                 Src->getType()->getName() + "'");
    }
  }

  void collectFieldAddr(const FieldAddrInst &FA) {
    RecordType *Rec = FA.getRecord();
    const std::string &FieldName = FA.getField().Name;
    for (const Instruction *U : FA.users()) {
      switch (U->getOpcode()) {
      case Instruction::OpLoad:
        continue; // Loading the field: fine.
      case Instruction::OpStore:
        // Storing *through* the field address is fine; storing the
        // address itself is ATKN.
        if (cast<StoreInst>(U)->getPointer() == &FA)
          continue;
        flag(Rec, Violation::ATKN, &FA,
             "address of field '" + FieldName + "' stored as a value");
        continue;
      case Instruction::OpCall: {
        // Tolerated: "if the address of a field is taken in the context
        // of a function call, we do not invalidate the type" (paper).
        // The tolerance must still record the escape, though: the
        // refinement and the heuristics need to know the type leaked a
        // field pointer into a callee.
        const Function *Callee = cast<CallInst>(U)->getCallee();
        TypeLegality &L = Result.getOrCreate(Rec);
        L.Attrs.PassedToFunction = true;
        if (!Callee->isLibFunction() && !Callee->isDeclaration())
          L.EscapesTo.insert(Callee);
        continue;
      }
      case Instruction::OpMemset:
      case Instruction::OpMemcpy:
        // Streaming over a field: treat as MSET on the parent.
        flag(Rec, Violation::MSET, U,
             "streaming over field '" + FieldName + "'");
        continue;
      default:
        flag(Rec, Violation::ATKN, &FA,
             "address of field '" + FieldName + "' used by " +
                 Instruction::getOpcodeName(U->getOpcode()));
        continue;
      }
    }
  }

  void collectCall(const CallInst &C) {
    const Function *Callee = C.getCallee();
    auto NoteEscape = [&](RecordType *R) {
      if (!R)
        return;
      TypeLegality &L = Result.getOrCreate(R);
      L.Attrs.PassedToFunction = true;
      if (Callee->isLibFunction()) {
        flag(R, Violation::LIBC, &C,
             "escapes to library function '" + Callee->getName() + "'",
             Callee->getName());
      } else if (Callee->isDeclaration()) {
        // Post-link, a non-library declaration means the definition is
        // outside the compilation scope.
        flag(R, Violation::ESCP, &C,
             "escapes to external function '" + Callee->getName() + "'",
             Callee->getName());
      } else {
        L.EscapesTo.insert(Callee);
      }
    };
    for (unsigned A = 0; A < C.getNumArgs(); ++A)
      NoteEscape(strippedRecord(C.getArg(A)->getType()));
    NoteEscape(strippedRecord(C.getCallee()->getReturnType()));
  }

  /// Pattern-matches the allocation size and records the site under the
  /// record the result is cast to.
  void collectAllocation(const Instruction &I) {
    // The byte-size expression (malloc) or element size (calloc).
    Value *SizeExpr = nullptr;
    Value *CountExpr = nullptr; // calloc's explicit count
    if (const auto *Mal = dyn_cast<MallocInst>(&I)) {
      SizeExpr = Mal->getSizeBytes();
    } else {
      const auto *Cal = cast<CallocInst>(&I);
      SizeExpr = Cal->getElemSize();
      CountExpr = Cal->getCount();
    }

    // Which record does the result become? Look at bitcast users.
    RecordType *Target = nullptr;
    Instruction *CastInstr = nullptr;
    for (Instruction *U : I.users()) {
      if (U->getOpcode() != Instruction::OpBitcast)
        continue;
      if (RecordType *R = strippedRecord(U->getType())) {
        Target = R;
        CastInstr = U;
        break;
      }
    }
    if (!Target)
      return; // Allocation of non-record memory: not our concern.

    TypeLegality &L = Result.getOrCreate(Target);
    L.Attrs.DynamicallyAllocated = true;

    AllocSiteInfo Site;
    Site.Alloc = const_cast<Instruction *>(&I);
    Site.CastToRecord = CastInstr;

    int64_t RecSize = static_cast<int64_t>(Target->getSize());
    auto DecomposeSize = [&](Value *Bytes) {
      // Case 1: plain or attributed constant.
      if (auto *CI = dyn_cast<ConstantInt>(Bytes)) {
        if (CI->getValue() % RecSize == 0) {
          Site.ConstCount = CI->getValue() / RecSize;
          return true;
        }
        return false;
      }
      // Case 2: Mul(N, sizeof(T)) in either operand order. Prefer the
      // sizeof-attributed constant as the size factor: a plain constant
      // count can numerically equal sizeof(T) (e.g. 64 elements of a
      // 64-byte record) and must not be mistaken for it.
      if (auto *Mul = dyn_cast<BinaryInst>(Bytes)) {
        if (Mul->getOpcode() != Instruction::OpMul)
          return false;
        int SizeSide = -1;
        for (unsigned Side = 0; Side < 2; ++Side) {
          auto *CI = dyn_cast<ConstantInt>(Mul->getOperand(Side));
          if (CI && CI->getSizeOfRecord() == Target) {
            SizeSide = static_cast<int>(Side);
            break;
          }
        }
        if (SizeSide < 0) {
          for (unsigned Side = 0; Side < 2; ++Side) {
            auto *CI = dyn_cast<ConstantInt>(Mul->getOperand(Side));
            if (CI && !CI->isSizeOf() && CI->getValue() == RecSize) {
              SizeSide = static_cast<int>(Side);
              break;
            }
          }
        }
        if (SizeSide >= 0) {
          Value *N = Mul->getOperand(1 - static_cast<unsigned>(SizeSide));
          Site.CountValue = N;
          if (auto *NC = dyn_cast<ConstantInt>(N))
            Site.ConstCount = NC->getValue();
          return true;
        }
      }
      return false;
    };

    if (CountExpr) {
      // calloc(N, size): the element size must match sizeof(T).
      auto *CI = dyn_cast<ConstantInt>(SizeExpr);
      if (CI && CI->getValue() == RecSize) {
        Site.CountValue = CountExpr;
        if (auto *NC = dyn_cast<ConstantInt>(CountExpr))
          Site.ConstCount = NC->getValue();
      } else {
        Site.Unanalyzable = true;
      }
    } else if (!DecomposeSize(SizeExpr)) {
      Site.Unanalyzable = true;
    }

    if (Site.Unanalyzable)
      flag(Target, Violation::UNSZ, &I,
           "allocation size is not N * sizeof(" +
               Target->getRecordName() + ")");
    else if (Site.ConstCount >= 0 &&
             Site.ConstCount <= Opts.SmallAllocThreshold)
      flag(Target, Violation::SMAL, &I,
           "constant allocation count " +
               std::to_string(Site.ConstCount) + " below threshold");
    L.AllocSites.push_back(Site);
  }

  /// The IPA aggregation step. With whole-program linking the escape
  /// closure is already final: escapes to defined functions are inside
  /// the scope, everything else was flagged during collection.
  void aggregate() {}

  const Module &M;
  LegalityOptions Opts;
  LegalityResult Result;
};

} // namespace

LegalityResult slo::analyzeLegality(const Module &M,
                                    const LegalityOptions &Opts) {
  return LegalityAnalyzer(M, Opts).run();
}
