//===- analysis/LegalityRefine.cpp - Points-to legality refinement --------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/LegalityRefine.h"

#include "ir/Instructions.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <vector>

using namespace slo;

namespace {

bool isCastOpcode(Instruction::Opcode Op) {
  return Op >= Instruction::OpTrunc && Op <= Instruction::OpIntToPtr;
}

bool isIntCmpOpcode(Instruction::Opcode Op) {
  return Op >= Instruction::OpICmpEQ && Op <= Instruction::OpICmpSGE;
}

std::string inFunction(const Instruction *I) {
  if (const Function *F = I->getFunction())
    return " in '" + F->getName() + "'";
  return "";
}

std::string viewsString(const MemObject &O) {
  // Views is ordered by pointer; sort by name so the rendered fact is
  // stable across runs (the incremental cache replays stored facts
  // verbatim, so a fresh run must produce the same string).
  std::vector<std::string> Names;
  for (const RecordType *R : O.Views)
    Names.push_back(R->getRecordName());
  std::sort(Names.begin(), Names.end());
  std::string S;
  for (const std::string &N : Names) {
    if (!S.empty())
      S += ", ";
    S += "'" + N + "'";
  }
  return S.empty() ? "nothing" : S;
}

/// Returns the blocking reason if the foreign-typed alias \p W has a use
/// that depends on the record layout (CSTF discharge walk), "" otherwise.
/// Benign uses only move or compare the pointer: casts, compares, stores
/// of the pointer value, returns, and calls into analyzed code (the copy
/// each benign use produces is itself in the alias set and gets walked).
std::string foreignUseBlocks(const Value *W) {
  for (const Instruction *U : W->users()) {
    Instruction::Opcode Op = U->getOpcode();
    if (isCastOpcode(Op) || isIntCmpOpcode(Op) || Op == Instruction::OpRet)
      continue;
    if (Op == Instruction::OpStore && cast<StoreInst>(U)->getPointer() != W)
      continue;
    if (Op == Instruction::OpCall) {
      const Function *Callee = cast<CallInst>(U)->getCallee();
      if (!Callee->isDeclaration())
        continue;
      return "alias '" + W->getName() + "' escapes to '" + Callee->getName() +
             "'" + inFunction(U);
    }
    return std::string(Instruction::getOpcodeName(Op)) +
           " through foreign-typed alias '" + W->getName() + "'" +
           inFunction(U);
  }
  return "";
}

/// Returns the blocking reason if the field-address alias \p W has a use
/// other than moving the pointer inside analyzed code or accessing the
/// field through it (ATKN discharge walk), "" otherwise. Address
/// arithmetic, streaming, frees and escapes to unanalyzed code are
/// layout hazards.
std::string atknUseBlocks(const Value *W, const PointsToResult &PT) {
  for (const Instruction *U : W->users()) {
    Instruction::Opcode Op = U->getOpcode();
    if (Op == Instruction::OpLoad || isCastOpcode(Op) ||
        isIntCmpOpcode(Op) || Op == Instruction::OpRet)
      continue;
    if (Op == Instruction::OpStore) {
      const auto *SI = cast<StoreInst>(U);
      if (SI->getStoredValue() == W &&
          PT.escapeOf(SI->getPointer()) == EscapeState::ExternalEscape)
        return "field pointer stored to externally-reachable memory" +
               inFunction(U);
      continue;
    }
    if (Op == Instruction::OpCall) {
      const Function *Callee = cast<CallInst>(U)->getCallee();
      if (!Callee->isDeclaration())
        continue;
      return "field pointer escapes to '" + Callee->getName() + "'" +
             inFunction(U);
    }
    return "field pointer used by " + std::string(
               Instruction::getOpcodeName(Op)) + inFunction(U);
  }
  return "";
}

class Refiner {
public:
  Refiner(const LegalityResult &Legal, const PointsToResult &PT,
          DiagnosticEngine *Diags)
      : Legal(Legal), PT(PT), Diags(Diags) {}

  void run(std::map<const RecordType *, TypeRefinement> &Map,
           std::vector<RecordType *> &Order) {
    for (RecordType *R : Legal.types()) {
      Order.push_back(R);
      refineType(R, Legal.get(R), Map);
    }
  }

private:
  const LegalityResult &Legal;
  const PointsToResult &PT;
  DiagnosticEngine *Diags;

  void diagnose(DiagSeverity Sev, const ViolationSite &S, RecordType *R,
                const std::string &Message, const std::string &Fact) {
    if (!Diags)
      return;
    Diagnostic &D = Diags->report(Sev, violationName(S.Kind), Message);
    D.RecordName = R->getRecordName();
    D.Function = S.Function;
    D.Site = S.Detail;
    D.Fact = Fact;
  }

  SiteProof dischargeCSTT(const ViolationSite &S, RecordType *R) {
    SiteProof P;
    P.Site = &S;
    const auto *Cast = dyn_cast<CastInst>(S.Inst);
    if (!Cast) {
      P.Fact = "site is not a cast instruction";
      return P;
    }
    const Value *Src = Cast->getCastOperand();
    if (PT.pointsToExternal(Src)) {
      P.Fact = "cast source may point to external memory";
      return P;
    }
    std::vector<PointsToResult::ObjectID> Objs = PT.pointedObjects(Src);
    for (PointsToResult::ObjectID O : Objs) {
      const MemObject &MO = PT.object(O);
      if (MO.K != MemObject::Kind::Heap) {
        P.Fact = MO.describe() + " is not a heap allocation";
        return P;
      }
      if (MO.Escape == EscapeState::ExternalEscape) {
        P.Fact = MO.describe() + " escapes externally";
        return P;
      }
      if (MO.Views.size() != 1 || *MO.Views.begin() != R) {
        P.Fact = MO.describe() + " is viewed as " + viewsString(MO) +
                 ", not solely as '" + R->getRecordName() + "'";
        return P;
      }
    }
    P.Discharged = true;
    if (Objs.empty())
      P.Fact = "no allocation reaches the cast";
    else
      P.Fact = std::to_string(Objs.size()) +
               " heap allocation(s) viewed only as '" + R->getRecordName() +
               "', e.g. " + PT.object(Objs.front()).describe();
    return P;
  }

  SiteProof dischargeCSTF(const ViolationSite &S, RecordType *R) {
    SiteProof P;
    P.Site = &S;
    if (!S.Inst) {
      P.Fact = "site has no instruction";
      return P;
    }
    if (PT.escapeOf(S.Inst) == EscapeState::ExternalEscape) {
      P.Fact = "cast result may reach external memory";
      return P;
    }
    unsigned Foreign = 0;
    for (const Value *W : PT.aliasesOf(S.Inst)) {
      if (strippedRecord(W->getType()) == R)
        continue;
      ++Foreign;
      std::string Bad = foreignUseBlocks(W);
      if (!Bad.empty()) {
        P.Fact = Bad;
        return P;
      }
    }
    P.Discharged = true;
    P.Fact = "no layout-dependent use across " + std::to_string(Foreign) +
             " foreign-typed alias(es)";
    return P;
  }

  SiteProof dischargeATKN(const ViolationSite &S, TypeRefinement &TR) {
    SiteProof P;
    P.Site = &S;
    const auto *FA = dyn_cast<FieldAddrInst>(S.Inst);
    if (!FA) {
      P.Fact = "site is not a field-address instruction";
      return P;
    }
    EscapeState E = PT.escapeOf(FA->getBase());
    if (E == EscapeState::ExternalEscape) {
      P.Fact = "the object whose field address is taken escapes externally";
      return P;
    }
    std::vector<const Value *> Aliases = PT.aliasesOf(FA);
    for (const Value *W : Aliases) {
      std::string Bad = atknUseBlocks(W, PT);
      if (!Bad.empty()) {
        P.Fact = Bad;
        return P;
      }
    }
    P.Discharged = true;
    P.Fact = "field address confined to analyzed code across " +
             std::to_string(Aliases.size()) + " alias(es); object escape <= " +
             escapeStateName(E);
    TR.AddressTakenLiveFields.insert(FA->getFieldIndex());
    return P;
  }

  SiteProof resolveIND(const ViolationSite &S, RecordType *R,
                       TypeRefinement &TR) {
    // IND is never discharged: the Relax upper bound does not forgive it
    // either, and forgiving it here would break Legal <= Proven <= Relax.
    SiteProof P;
    P.Site = &S;
    const auto *IC = dyn_cast<IndirectCallInst>(S.Inst);
    if (!IC) {
      P.Fact = "site is not an indirect call";
      return P;
    }
    PointsToResult::CallTargets T = PT.callTargets(IC);
    if (!T.Complete || T.Targets.empty()) {
      P.Fact = "indirect call targets could not be fully resolved";
      return P;
    }
    std::string Names;
    for (const Function *F : T.Targets) {
      if (!Names.empty())
        Names += ", ";
      Names += "'" + F->getName() + "'";
    }
    P.Fact = "indirect call fully resolves to " +
             std::to_string(T.Targets.size()) + " analyzed function(s): " +
             Names;
    ++TR.ResolvedIndirectSites;
    diagnose(DiagSeverity::Note, S, R,
             "indirect call resolved (informational; IND is not discharged)",
             P.Fact);
    return P;
  }

  void refineType(RecordType *R, const TypeLegality &L,
                  std::map<const RecordType *, TypeRefinement> &Map) {
    TypeRefinement TR;
    TR.Rec = R;
    const uint32_t RelaxMask = violationBit(Violation::CSTT) |
                               violationBit(Violation::CSTF) |
                               violationBit(Violation::ATKN);
    bool OnlyRelaxable = (L.Violations & ~RelaxMask) == 0;
    bool AllDischarged = true;

    for (const ViolationSite &S : L.Sites) {
      switch (S.Kind) {
      case Violation::CSTT: {
        SiteProof P = dischargeCSTT(S, R);
        diagnose(P.Discharged ? DiagSeverity::Remark : DiagSeverity::Warning,
                 S, R,
                 P.Discharged ? "cast-to-record violation discharged"
                              : "cast-to-record violation not discharged",
                 P.Fact);
        AllDischarged &= P.Discharged;
        TR.Proofs.push_back(std::move(P));
        break;
      }
      case Violation::CSTF: {
        SiteProof P = dischargeCSTF(S, R);
        diagnose(P.Discharged ? DiagSeverity::Remark : DiagSeverity::Warning,
                 S, R,
                 P.Discharged ? "cast-from-record violation discharged"
                              : "cast-from-record violation not discharged",
                 P.Fact);
        AllDischarged &= P.Discharged;
        TR.Proofs.push_back(std::move(P));
        break;
      }
      case Violation::ATKN: {
        SiteProof P = dischargeATKN(S, TR);
        diagnose(P.Discharged ? DiagSeverity::Remark : DiagSeverity::Warning,
                 S, R,
                 P.Discharged ? "address-taken violation discharged"
                              : "address-taken violation not discharged",
                 P.Fact);
        AllDischarged &= P.Discharged;
        TR.Proofs.push_back(std::move(P));
        break;
      }
      case Violation::IND:
        TR.Proofs.push_back(resolveIND(S, R, TR));
        break;
      default:
        // Non-relaxable violations (LIBC, MSET, NEST, ...) have no proof
        // obligations; they already make the type unprovable.
        break;
      }
    }

    TR.ProvenLegal = OnlyRelaxable && AllDischarged;
    TR.TransformSafe = TR.ProvenLegal && heapAllocsRewritable(R, L);

    if (Diags && TR.ProvenLegal && L.Violations != 0) {
      Diagnostic &D = Diags->report(
          DiagSeverity::Remark, "PROVEN",
          "all violation sites discharged; the Relax upper bound is realized");
      D.RecordName = R->getRecordName();
      D.Fact = TR.TransformSafe
                   ? "every heap allocation is a rewritable allocation site"
                   : "allocation sites are not rewritable; advisory only";
    }

    Map.emplace(R, std::move(TR));
  }

  /// A proven type may only be transformed when every heap object viewed
  /// as the type is one of the allocation sites the transformations know
  /// how to rewrite; a wrapper-allocated object has no such site, and
  /// transforming the type would leave its cold links uninitialized.
  bool heapAllocsRewritable(RecordType *R, const TypeLegality &L) {
    std::set<const Value *> Rewritable;
    for (const AllocSiteInfo &AS : L.AllocSites)
      if (!AS.Unanalyzable)
        Rewritable.insert(AS.Alloc);
    for (PointsToResult::ObjectID O : PT.objectsViewedAs(R)) {
      const MemObject &MO = PT.object(O);
      switch (MO.K) {
      case MemObject::Kind::Heap:
        if (!Rewritable.count(MO.Origin))
          return false;
        break;
      case MemObject::Kind::Stack:
      case MemObject::Kind::Global:
        break;
      case MemObject::Kind::Function:
      case MemObject::Kind::External:
        return false;
      }
    }
    return true;
  }
};

} // namespace

const TypeRefinement *RefinementResult::get(const RecordType *Rec) const {
  auto It = Map.find(Rec);
  return It == Map.end() ? nullptr : &It->second;
}

bool RefinementResult::isProvenLegal(const RecordType *Rec) const {
  const TypeRefinement *TR = get(Rec);
  return TR && TR->ProvenLegal;
}

bool RefinementResult::isTransformSafe(const RecordType *Rec) const {
  const TypeRefinement *TR = get(Rec);
  return TR && TR->TransformSafe;
}

std::vector<RecordType *> RefinementResult::provenTypes() const {
  std::vector<RecordType *> Out;
  for (RecordType *R : Order)
    if (isProvenLegal(R))
      Out.push_back(R);
  return Out;
}

RefinementResult slo::refineLegality(const Module &, const LegalityResult &Legal,
                                     const PointsToResult &PT,
                                     DiagnosticEngine *Diags,
                                     const LayoutPinnings *Pins) {
  RefinementResult Res;
  Refiner(Legal, PT, Diags).run(Res.Map, Res.Order);
  if (!Pins || Pins->empty())
    return Res;
  // The lint layer's layout-pinning facts override the per-site proofs:
  // a pinned type's concrete layout is observed through a foreign lens,
  // so discharging its cast sites individually is not enough. Strictly
  // legal types are exempt (pinning implies a recorded CSTT/CSTF/ATKN
  // violation, so this never breaks Legal <= Proven).
  for (auto &[Rec, TR] : Res.Map) {
    if (!Pins->isPinned(Rec))
      continue;
    if (Legal.get(Rec).isLegal(false))
      continue;
    if (TR.ProvenLegal && Diags) {
      Diagnostic &D = Diags->report(
          DiagSeverity::Warning, "PINNED",
          "demoted out of Proven: layout is pinned by a lint finding");
      D.RecordName = Rec->getRecordName();
      D.Fact = Pins->Reasons.at(Rec);
    }
    TR.ProvenLegal = false;
    TR.TransformSafe = false;
  }
  return Res;
}
