//===- analysis/Affinity.h - Field affinity and hotness --------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's profitability analysis (§2.3): loop-granularity affinity
/// groups, the per-type affinity graph, field hotness, and read/write
/// counts.
///
///  - Two fields are affine when they are referenced in the same loop;
///    field references in straight-line code form one group weighted by
///    the routine entry weight.
///  - Groups with identical field sets merge by adding weights.
///  - The affinity graph has an edge (i,j) summing the weights of all
///    groups containing both i and j; singleton groups contribute a
///    self-edge.
///  - Hotness of a field is the sum of its incident edge weights.
///
/// Weights come from a pluggable WeightSource so the same machinery
/// serves PBO (profiled edge counts), SPBO (local static estimates),
/// ISPBO (inter-procedurally scaled estimates) and the ISPBO.W variant.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_AFFINITY_H
#define SLO_ANALYSIS_AFFINITY_H

#include "ir/Module.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace slo {

/// Provides block and entry weights to the affinity analysis.
class WeightSource {
public:
  virtual ~WeightSource() = default;
  /// Globally scaled execution weight of \p BB.
  virtual double blockWeight(const BasicBlock *BB) const = 0;
  /// Weight for the function's straight-line affinity group ("the weight
  /// of the routine entry point").
  virtual double entryWeight(const Function *F) const = 0;
};

/// One merged affinity group of a record type.
struct AffinityGroup {
  std::vector<unsigned> FieldIndices; // Sorted, unique.
  double Weight = 0.0;
};

/// Affinity, hotness, and access statistics for one record type.
struct TypeFieldStats {
  RecordType *Rec = nullptr;
  std::vector<double> Reads;   // Per field, weighted.
  std::vector<double> Writes;  // Per field, weighted.
  std::vector<double> Hotness; // Per field: sum of incident edge weights.
  std::vector<AffinityGroup> Groups;
  /// Affinity graph: (i,j) with i <= j; (i,i) are self-edges from
  /// singleton groups.
  std::map<std::pair<unsigned, unsigned>, double> Affinity;

  /// Total type hotness: sum over fields (the advisor sorts types by
  /// this).
  double typeHotness() const;

  /// Per-field hotness as a percentage of the hottest field (the paper's
  /// "relative hotness", Table 2).
  std::vector<double> relativeHotness() const;

  /// Index of the hottest field (0 when the type was never referenced).
  unsigned hottestField() const;

  /// True when field \p I has reads or writes (or any affinity weight).
  bool isReferenced(unsigned I) const;
};

/// Results for every record type of a module.
class FieldStatsResult {
public:
  TypeFieldStats &getOrCreate(RecordType *Rec);
  const TypeFieldStats *get(const RecordType *Rec) const;
  const std::vector<RecordType *> &types() const { return Order; }

private:
  std::map<const RecordType *, TypeFieldStats> Map;
  std::vector<RecordType *> Order;
};

/// Runs the affinity/hotness analysis over every defined function.
FieldStatsResult computeFieldStats(const Module &M, const WeightSource &WS);

} // namespace slo

#endif // SLO_ANALYSIS_AFFINITY_H
