//===- analysis/StaticEstimator.h - Per-function static analyses -*- C++-*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles the per-function static analyses (dominators, loops, branch
/// probabilities, local block frequencies) for a whole module, so the
/// inter-procedural phases have one place to query them.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_STATICESTIMATOR_H
#define SLO_ANALYSIS_STATICESTIMATOR_H

#include "analysis/BlockFrequency.h"
#include "analysis/BranchProbability.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"

#include <map>
#include <memory>

namespace slo {

/// All per-function static analyses of one function.
struct FunctionStaticAnalyses {
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<BranchProbabilities> BP;
  std::unique_ptr<BlockFrequencies> BF;
};

/// Computes and caches the static analyses for every defined function of
/// a module under one set of branch probability options.
class StaticEstimator {
public:
  StaticEstimator(const Module &M,
                  const BranchProbOptions &Opts = BranchProbOptions());

  const Module &getModule() const { return M; }

  /// Analyses for \p F, which must be a definition in the module.
  const FunctionStaticAnalyses &get(const Function *F) const;

private:
  const Module &M;
  std::map<const Function *, FunctionStaticAnalyses> PerFunction;
};

} // namespace slo

#endif // SLO_ANALYSIS_STATICESTIMATOR_H
