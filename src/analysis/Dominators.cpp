//===- analysis/Dominators.cpp - Dominator tree ---------------------------===//

#include "analysis/Dominators.h"

#include <set>

using namespace slo;

DominatorTree::DominatorTree(const Function &F) : F(F) {
  const BasicBlock *Entry = F.getEntry();
  if (!Entry)
    return;

  // Iterative post-order DFS.
  std::set<const BasicBlock *> Visited;
  std::vector<std::pair<const BasicBlock *, size_t>> Stack;
  std::vector<const BasicBlock *> Post;
  Stack.push_back({Entry, 0});
  Visited.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, Idx] = Stack.back();
    auto Succs = BB->successors();
    if (Idx < Succs.size()) {
      const BasicBlock *S = Succs[Idx++];
      if (Visited.insert(S).second)
        Stack.push_back({S, 0});
    } else {
      Post.push_back(BB);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  for (const auto &BB : F.blocks())
    for (const BasicBlock *S : BB->successors())
      if (isReachable(BB.get()))
        Preds[S].push_back(BB.get());

  // Cooper-Harvey-Kennedy iteration.
  Idom[Entry] = Entry;
  auto Intersect = [&](const BasicBlock *A, const BasicBlock *B) {
    while (A != B) {
      while (RpoIndex.at(A) > RpoIndex.at(B))
        A = Idom.at(A);
      while (RpoIndex.at(B) > RpoIndex.at(A))
        B = Idom.at(B);
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock *BB : Rpo) {
      if (BB == Entry)
        continue;
      const BasicBlock *NewIdom = nullptr;
      for (const BasicBlock *P : Preds[BB]) {
        if (!Idom.count(P))
          continue;
        NewIdom = NewIdom ? Intersect(P, NewIdom) : P;
      }
      if (NewIdom && (!Idom.count(BB) || Idom[BB] != NewIdom)) {
        Idom[BB] = NewIdom;
        Changed = true;
      }
    }
  }
}

const BasicBlock *DominatorTree::getIdom(const BasicBlock *BB) const {
  auto It = Idom.find(BB);
  if (It == Idom.end() || It->second == BB)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  while (true) {
    if (A == B)
      return true;
    const BasicBlock *Next = getIdom(B);
    if (!Next)
      return false;
    B = Next;
  }
}

const std::vector<const BasicBlock *> &
DominatorTree::predecessors(const BasicBlock *BB) const {
  auto It = Preds.find(BB);
  return It == Preds.end() ? Empty : It->second;
}
