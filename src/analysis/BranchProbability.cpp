//===- analysis/BranchProbability.cpp - Static branch estimation ----------===//

#include "analysis/BranchProbability.h"

#include "support/Casting.h"

using namespace slo;

bool BranchProbabilities::loopHasFloatingPoint(const Loop &L) {
  for (const BasicBlock *BB : L.blocks())
    for (const auto &I : BB->instructions())
      if (I->getType()->isFloat())
        return true;
  return false;
}

static bool blockReturns(const BasicBlock *BB) {
  const Instruction *T = BB->getTerminator();
  return T && T->getOpcode() == Instruction::OpRet;
}

BranchProbabilities::BranchProbabilities(const Function &F,
                                         const LoopInfo &LI,
                                         const BranchProbOptions &Opts) {
  for (const auto &BB : F.blocks()) {
    const Instruction *T = BB->getTerminator();
    if (!T)
      continue;
    if (const auto *Br = dyn_cast<BrInst>(T)) {
      Probs[{BB.get(), Br->getTarget()}] = 1.0;
      continue;
    }
    const auto *CBr = dyn_cast<CondBrInst>(T);
    if (!CBr)
      continue;
    const BasicBlock *TrueBB = CBr->getTrueTarget();
    const BasicBlock *FalseBB = CBr->getFalseTarget();

    double TrueProb = 0.5;
    bool Decided = false;

    // Loop heuristic: a conditional back/exit edge keeps iterating with
    // the (possibly ISPBO.W-raised) back edge probability.
    bool TrueBack = LI.isBackEdge(BB.get(), TrueBB);
    bool FalseBack = LI.isBackEdge(BB.get(), FalseBB);
    Loop *L = LI.getLoopFor(BB.get());
    if (TrueBack != FalseBack) {
      const Loop *Target = L;
      // Find the loop this back edge belongs to.
      const BasicBlock *Header = TrueBack ? TrueBB : FalseBB;
      for (const Loop *Cand = L; Cand; Cand = Cand->getParent())
        if (Cand->getHeader() == Header)
          Target = Cand;
      double P = (Target && loopHasFloatingPoint(*Target))
                     ? Opts.FpLoopBackEdge
                     : Opts.IntLoopBackEdge;
      TrueProb = TrueBack ? P : 1.0 - P;
      Decided = true;
    } else if (L) {
      // Loop exit heuristic: prefer the edge that stays in the loop.
      bool TrueExits = !L->contains(TrueBB);
      bool FalseExits = !L->contains(FalseBB);
      if (TrueExits != FalseExits) {
        double P = loopHasFloatingPoint(*L) ? Opts.FpLoopBackEdge
                                            : Opts.IntLoopBackEdge;
        TrueProb = TrueExits ? 1.0 - P : P;
        Decided = true;
      }
    }

    // Pointer heuristic: pointer (in)equality tests usually succeed on
    // the not-equal side.
    if (!Decided) {
      if (const auto *Cmp = dyn_cast<CmpInst>(CBr->getCondition())) {
        bool PtrCmp = Cmp->getLHS()->getType()->isPointer() ||
                      Cmp->getRHS()->getType()->isPointer();
        if (PtrCmp && Cmp->getOpcode() == Instruction::OpICmpEQ) {
          TrueProb = 1.0 - Opts.PointerNotEqual;
          Decided = true;
        } else if (PtrCmp && Cmp->getOpcode() == Instruction::OpICmpNE) {
          TrueProb = Opts.PointerNotEqual;
          Decided = true;
        }
      }
    }

    // Opcode heuristic: comparisons against a negative outcome ("x < 0")
    // are usually false.
    if (!Decided) {
      if (const auto *Cmp = dyn_cast<CmpInst>(CBr->getCondition())) {
        const auto *RC = dyn_cast<ConstantInt>(Cmp->getRHS());
        bool AgainstZero = RC && RC->getValue() == 0;
        if (AgainstZero && (Cmp->getOpcode() == Instruction::OpICmpSLT ||
                            Cmp->getOpcode() == Instruction::OpICmpSLE)) {
          TrueProb = 1.0 - Opts.OpcodeNegativeFalse;
          Decided = true;
        }
      }
    }

    // Return heuristic: avoid blocks that immediately return.
    if (!Decided) {
      bool TrueRets = blockReturns(TrueBB);
      bool FalseRets = blockReturns(FalseBB);
      if (TrueRets != FalseRets) {
        TrueProb = TrueRets ? 1.0 - Opts.AvoidReturn : Opts.AvoidReturn;
        Decided = true;
      }
    }

    Probs[{BB.get(), TrueBB}] = TrueProb;
    // Accumulate rather than overwrite, in case both targets coincide.
    auto It = Probs.find({BB.get(), FalseBB});
    if (TrueBB == FalseBB && It != Probs.end())
      It->second = 1.0;
    else
      Probs[{BB.get(), FalseBB}] = 1.0 - TrueProb;
  }
}

double BranchProbabilities::getEdgeProb(const BasicBlock *From,
                                        const BasicBlock *To) const {
  auto It = Probs.find({From, To});
  return It == Probs.end() ? 0.0 : It->second;
}
