//===- analysis/StaticEstimator.cpp - Per-function static analyses --------===//

#include "analysis/StaticEstimator.h"

#include "support/Error.h"

using namespace slo;

StaticEstimator::StaticEstimator(const Module &M,
                                 const BranchProbOptions &Opts)
    : M(M) {
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    FunctionStaticAnalyses A;
    A.DT = std::make_unique<DominatorTree>(*F);
    A.LI = std::make_unique<LoopInfo>(*F, *A.DT);
    A.BP = std::make_unique<BranchProbabilities>(*F, *A.LI, Opts);
    A.BF = std::make_unique<BlockFrequencies>(*F, *A.DT, *A.BP);
    PerFunction.emplace(F.get(), std::move(A));
  }
}

const FunctionStaticAnalyses &
StaticEstimator::get(const Function *F) const {
  auto It = PerFunction.find(F);
  if (It == PerFunction.end())
    reportFatalError("static analyses requested for an undefined function: " +
                     F->getName());
  return It->second;
}
