//===- analysis/CallGraph.h - Call graph and SCCs --------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct call graph over a whole-program module with Tarjan SCCs, used
/// by the ISPBO inter-procedural frequency propagation ("our propagation
/// algorithm properly handles recursion in the call graph", paper §2.3).
/// Indirect call sites have unknown targets and contribute no edges; the
/// legality analysis invalidates any record type escaping through them
/// anyway (IND).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_CALLGRAPH_H
#define SLO_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <map>
#include <vector>

namespace slo {

/// A direct call site.
struct CallSiteInfo {
  const CallInst *Call = nullptr;
  const Function *Caller = nullptr;
  const Function *Callee = nullptr;
};

/// Whole-program direct call graph.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  const Module &getModule() const { return M; }

  /// All direct call sites, in module order.
  const std::vector<CallSiteInfo> &callSites() const { return Sites; }

  /// Call sites whose callee is \p F.
  const std::vector<const CallSiteInfo *> &
  callersOf(const Function *F) const;

  /// SCC id of \p F; functions in the same recursion cycle share an id.
  /// Ids are assigned in reverse topological order by Tarjan's algorithm,
  /// so callers have HIGHER ids than their callees (outside cycles).
  unsigned getSccId(const Function *F) const { return SccId.at(F); }

  /// SCCs in topological order (callers before callees), each a list of
  /// member functions.
  const std::vector<std::vector<const Function *>> &
  sccsTopological() const {
    return SccsTopo;
  }

  /// Returns true if the edge Caller->Callee stays within one SCC
  /// (i.e. is part of a recursion cycle).
  bool isIntraScc(const Function *Caller, const Function *Callee) const {
    return getSccId(Caller) == getSccId(Callee);
  }

private:
  const Module &M;
  std::vector<CallSiteInfo> Sites;
  std::map<const Function *, std::vector<const CallSiteInfo *>> Callers;
  std::map<const Function *, unsigned> SccId;
  std::vector<std::vector<const Function *>> SccsTopo;
  std::vector<const CallSiteInfo *> Empty;
};

} // namespace slo

#endif // SLO_ANALYSIS_CALLGRAPH_H
