//===- analysis/LegalityRefine.h - Points-to legality refinement -*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges individual legality violations using the field-sensitive
/// points-to and escape analysis. The paper's Table 1 "Relax" column is an
/// optimistic upper bound ("assume a points-to analysis could prove all
/// CSTT/CSTF/ATKN sites harmless"); this layer replaces the assumption
/// with per-site proofs:
///
///   CSTT  discharged when every object reaching the cast is a heap
///         allocation that never escapes externally and is viewed as this
///         record type only (the idiomatic typed-allocation wrapper).
///   CSTF  discharged when no alias of the cast result with a foreign
///         static type has a layout-dependent use (dereference, field or
///         index arithmetic, streaming, free, escape), and the object does
///         not escape externally.
///   ATKN  discharged when the taken field address only ever moves between
///         analyzed code (loads, stores, compares, calls to analyzed
///         functions) and the underlying objects escape at most globally.
///         Discharged fields are reported so the planner keeps them live.
///   IND   never discharged -- "Relax" does not forgive IND either, so
///         forgiving it here would break Legal <= Proven <= Relax. Resolved
///         call targets are reported as informational notes only.
///
/// A type whose only violations are discharged CSTT/CSTF/ATKN sites is
/// "proven legal": the Relax upper bound is realized for it. A proven type
/// is additionally "transform safe" when every heap object viewed as the
/// type comes from a rewritable allocation site; a wrapper-allocated type
/// is proven for the census but must not be transformed (its allocation
/// cannot be rewritten, which would leave new cold links uninitialized).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_LEGALITYREFINE_H
#define SLO_ANALYSIS_LEGALITYREFINE_H

#include "analysis/Legality.h"
#include "analysis/PointsTo.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace slo {

class DiagnosticEngine;

/// Layout-pinning facts produced by the lint layer (analysis/lint/): a
/// record type is pinned when its objects are also addressed through a
/// foreign-typed lens (a cast pun) or through out-of-bounds field
/// arithmetic. A pinned type's concrete layout is observable, so the
/// discharge proofs must not admit it: refineLegality demotes pinned
/// types out of Proven (strictly legal types cannot be pinned — a pun or
/// a taken field address records a CSTF/CSTT/ATKN violation first, so
/// the demotion never breaks Legal <= Proven).
struct LayoutPinnings {
  /// Pinned record type -> human-readable reason (first pinning site).
  std::map<const RecordType *, std::string> Reasons;

  bool isPinned(const RecordType *Rec) const {
    return Reasons.count(Rec) != 0;
  }
  bool empty() const { return Reasons.empty(); }
};

/// The proof outcome for one recorded violation site.
struct SiteProof {
  /// The site, owned by the LegalityResult this refinement was built from.
  const ViolationSite *Site = nullptr;
  bool Discharged = false;
  /// The machine-checkable justification: the discharging fact when
  /// discharged, the blocking fact otherwise.
  std::string Fact;
};

/// Refinement verdict for one record type.
struct TypeRefinement {
  RecordType *Rec = nullptr;
  /// One proof per relaxable (CSTT/CSTF/ATKN) site, plus informational
  /// entries for resolved IND sites (never discharged).
  std::vector<SiteProof> Proofs;
  /// All violations are relaxable and every site was discharged.
  bool ProvenLegal = false;
  /// ProvenLegal, and every heap object viewed as this type is a recorded,
  /// rewritable allocation site.
  bool TransformSafe = false;
  /// Field indices whose discharged ATKN sites store the field address;
  /// the planner must keep these fields live.
  std::set<unsigned> AddressTakenLiveFields;
  /// IND sites whose target set was completely resolved (informational).
  unsigned ResolvedIndirectSites = 0;
};

/// Whole-module refinement results: the "Proven" column.
class RefinementResult {
public:
  /// The refinement for \p Rec, or null when the type was not analyzed.
  const TypeRefinement *get(const RecordType *Rec) const;

  /// True when \p Rec is strictly legal or all its violations were
  /// discharged.
  bool isProvenLegal(const RecordType *Rec) const;

  /// True when \p Rec may actually be transformed based on proofs.
  bool isTransformSafe(const RecordType *Rec) const;

  /// Types proven legal, in type-creation order (Table 1 "Proven").
  std::vector<RecordType *> provenTypes() const;

  const std::vector<RecordType *> &types() const { return Order; }

private:
  friend RefinementResult refineLegality(const Module &,
                                         const LegalityResult &,
                                         const PointsToResult &,
                                         DiagnosticEngine *,
                                         const LayoutPinnings *);
  std::map<const RecordType *, TypeRefinement> Map;
  std::vector<RecordType *> Order;
};

/// Attempts to discharge every relaxable violation site in \p Legal using
/// the points-to solution \p PT. When \p Diags is non-null, emits one
/// remark per discharged site, one warning per blocked site, and one note
/// per completely resolved indirect call. When \p Pins is non-null,
/// types it pins are demoted out of Proven/TransformSafe (with a PINNED
/// diagnostic) unless they are strictly legal: the lint layer's layout
/// hazards override the per-site discharge proofs.
RefinementResult refineLegality(const Module &M, const LegalityResult &Legal,
                                const PointsToResult &PT,
                                DiagnosticEngine *Diags = nullptr,
                                const LayoutPinnings *Pins = nullptr);

} // namespace slo

#endif // SLO_ANALYSIS_LEGALITYREFINE_H
