//===- analysis/PointsTo.cpp - Field-sensitive points-to analysis ---------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"

#include "analysis/Legality.h"
#include "ir/Instructions.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace slo;

const char *slo::escapeStateName(EscapeState E) {
  switch (E) {
  case EscapeState::NoEscape:
    return "no-escape";
  case EscapeState::ArgEscape:
    return "arg-escape";
  case EscapeState::GlobalEscape:
    return "global-escape";
  case EscapeState::ExternalEscape:
    return "external-escape";
  }
  return "?";
}

std::string MemObject::describe() const {
  auto originName = [&]() -> std::string {
    if (!Origin)
      return "";
    if (const auto *I = dyn_cast<Instruction>(Origin)) {
      std::string S = "'" + I->getName() + "'";
      if (const Function *F = I->getFunction())
        S += " in '" + F->getName() + "'";
      return S;
    }
    return "'" + Origin->getName() + "'";
  };
  switch (K) {
  case Kind::Stack:
    return "stack " + originName();
  case Kind::Heap:
    return "heap " + originName();
  case Kind::Global:
    return "global " + originName();
  case Kind::Function:
    return "function " + originName();
  case Kind::External:
    return "external memory";
  }
  return "?";
}

namespace {

/// Field offsets are clamped to this bound; any cell past it collapses to
/// one sentinel cell per object, guaranteeing solver termination even for
/// adversarial field-of-field cycles laundered through casts.
constexpr int64_t kMaxFieldOffset = 1 << 20;

/// Offset of the base cell (the object as a whole); field cells use their
/// byte offset, which is always >= 0.
constexpr int64_t kBaseCell = -1;

} // namespace

namespace slo {

/// Builds the constraint graph for one module and solves it.
class PointsToBuilder {
public:
  explicit PointsToBuilder(const Module &M) : M(M) {}

  PointsToResult run();

private:
  using ObjectID = PointsToResult::ObjectID;

  struct Complex {
    enum Kind {
      Load,    // Other = destination value node
      Store,   // Other = stored value node
      Field,   // Other = result node, Off = field byte offset
      ExtStore, // external code may write external pointers through *this
      ICall,   // IC = the indirect call to wire on resolution
    };
    Kind K;
    uint32_t Other = 0;
    int64_t Off = 0;
    const IndirectCallInst *IC = nullptr;
  };

  const Module &M;

  // --- Node space: one node per tracked value plus one per cell. ---
  std::vector<uint32_t> Parent;              // union-find
  std::vector<std::set<uint32_t>> Pts;       // cells pointed to, per rep
  std::vector<std::set<uint32_t>> Succ;      // copy edges, per rep
  std::vector<std::vector<Complex>> Cplx;    // complex constraints, per rep
  std::vector<char> InWork;
  std::deque<uint32_t> Worklist;
  bool AnyChange = false;

  std::map<const Value *, uint32_t> ValNode;
  std::vector<const Value *> TrackedValues;
  std::map<const Function *, uint32_t> RetNode;

  // --- Objects and cells. ---
  std::vector<MemObject> Objects;
  std::map<std::pair<ObjectID, int64_t>, uint32_t> CellMap;
  std::vector<uint32_t> CellNode;   // cell id -> its node
  std::vector<ObjectID> CellObject; // cell id -> owning object
  std::vector<int64_t> CellOffset;  // cell id -> offset (kBaseCell for base)
  ObjectID ExternalObj = 0;
  uint32_t ExternalCellId = 0;

  // Indirect-call bookkeeping.
  std::vector<const IndirectCallInst *> IndirectCalls;
  std::set<std::pair<const IndirectCallInst *, const Function *>> Wired;
  std::set<const IndirectCallInst *> ExtRouted;

  PointsToStats Stats;

  // Union-find -------------------------------------------------------------
  uint32_t find(uint32_t N) {
    while (Parent[N] != N) {
      Parent[N] = Parent[Parent[N]];
      N = Parent[N];
    }
    return N;
  }

  uint32_t newNode() {
    uint32_t N = static_cast<uint32_t>(Parent.size());
    Parent.push_back(N);
    Pts.emplace_back();
    Succ.emplace_back();
    Cplx.emplace_back();
    InWork.push_back(0);
    return N;
  }

  void push(uint32_t N) {
    N = find(N);
    if (!InWork[N]) {
      InWork[N] = 1;
      Worklist.push_back(N);
    }
  }

  /// Merges node \p B into node \p A (both representatives).
  void unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (Pts[B].size() > Pts[A].size())
      std::swap(A, B);
    Parent[B] = A;
    Pts[A].insert(Pts[B].begin(), Pts[B].end());
    Succ[A].insert(Succ[B].begin(), Succ[B].end());
    Cplx[A].insert(Cplx[A].end(), Cplx[B].begin(), Cplx[B].end());
    Pts[B].clear();
    Succ[B].clear();
    Cplx[B].clear();
    ++Stats.NodesCollapsed;
    push(A);
  }

  // Graph construction -----------------------------------------------------
  uint32_t valueNode(const Value *V) {
    auto It = ValNode.find(V);
    if (It != ValNode.end())
      return It->second;
    uint32_t N = newNode();
    ValNode.emplace(V, N);
    if (!isConstant(V))
      TrackedValues.push_back(V);
    // Address-producing values seed their own points-to set.
    if (const auto *GV = dyn_cast<GlobalVariable>(V))
      addPts(N, baseCell(globalObject(GV)));
    else if (const auto *F = dyn_cast<Function>(V))
      addPts(N, baseCell(functionObject(F)));
    return N;
  }

  uint32_t retNode(const Function *F) {
    auto It = RetNode.find(F);
    if (It != RetNode.end())
      return It->second;
    uint32_t N = newNode();
    RetNode.emplace(F, N);
    return N;
  }

  ObjectID newObject(MemObject::Kind K, const Value *Origin) {
    MemObject O;
    O.K = K;
    O.Origin = Origin;
    Objects.push_back(std::move(O));
    return static_cast<ObjectID>(Objects.size() - 1);
  }

  std::map<const Value *, ObjectID> OriginObject;

  ObjectID globalObject(const GlobalVariable *GV) {
    auto It = OriginObject.find(GV);
    if (It != OriginObject.end())
      return It->second;
    ObjectID O = newObject(MemObject::Kind::Global, GV);
    OriginObject.emplace(GV, O);
    return O;
  }

  ObjectID functionObject(const Function *F) {
    auto It = OriginObject.find(F);
    if (It != OriginObject.end())
      return It->second;
    ObjectID O = newObject(MemObject::Kind::Function, F);
    OriginObject.emplace(F, O);
    return O;
  }

  uint32_t getCell(ObjectID O, int64_t Off) {
    if (Off > kMaxFieldOffset)
      Off = kMaxFieldOffset;
    auto It = CellMap.find({O, Off});
    if (It != CellMap.end())
      return It->second;
    uint32_t Cell = static_cast<uint32_t>(CellNode.size());
    CellMap.emplace(std::make_pair(O, Off), Cell);
    CellNode.push_back(newNode());
    CellObject.push_back(O);
    CellOffset.push_back(Off);
    return Cell;
  }

  uint32_t baseCell(ObjectID O) { return getCell(O, kBaseCell); }

  bool addPts(uint32_t N, uint32_t Cell) {
    N = find(N);
    if (!Pts[N].insert(Cell).second)
      return false;
    AnyChange = true;
    push(N);
    return true;
  }

  void addEdge(uint32_t From, uint32_t To) {
    From = find(From);
    To = find(To);
    if (From == To)
      return;
    if (!Succ[From].insert(To).second)
      return;
    ++Stats.NumCopyEdges;
    AnyChange = true;
    if (!Pts[From].empty())
      push(From);
  }

  void addComplex(uint32_t N, Complex C) {
    N = find(N);
    Cplx[N].push_back(C);
    ++Stats.NumComplexConstraints;
    AnyChange = true;
  }

  std::vector<std::pair<uint32_t, uint32_t>> Memcpys; // (dst node, src node)

  // Constraint generation --------------------------------------------------
  void collectGlobals();
  void collectFunction(const Function &F);
  void collectInstruction(const Instruction &I);
  void externalCallArg(const Value *Arg);
  void wireCall(const IndirectCallInst *IC, const Function *F);
  void routeExternalICall(const IndirectCallInst *IC);

  // Solver -----------------------------------------------------------------
  void propagate();
  void processComplex();
  void processMemcpys();
  void collapseCycles();
  void solve();
  bool clobberExternallyReachable();
  std::set<uint32_t> reachableCells(const std::set<uint32_t> &Seeds);

  // Post-solve -------------------------------------------------------------
  void computeEscapes();
  void computeViews();
  PointsToResult finish();
};

} // namespace slo

void PointsToBuilder::externalCallArg(const Value *Arg) {
  uint32_t N = valueNode(Arg);
  // Everything the argument points to becomes part of external memory, and
  // external code may overwrite the pointed-to cells with external pointers.
  addEdge(N, CellNode[ExternalCellId]);
  addComplex(N, Complex{Complex::ExtStore, 0, 0, nullptr});
}

void PointsToBuilder::collectGlobals() {
  for (const auto &GV : M.globals())
    valueNode(GV.get());
}

void PointsToBuilder::collectFunction(const Function &F) {
  for (unsigned I = 0; I < F.getNumArgs(); ++I)
    valueNode(F.getArg(I));
  for (const auto &BB : F.blocks())
    for (const auto &Inst : BB->instructions())
      collectInstruction(*Inst);
}

void PointsToBuilder::collectInstruction(const Instruction &I) {
  switch (I.getOpcode()) {
  case Instruction::OpAlloca: {
    ObjectID O = newObject(MemObject::Kind::Stack, &I);
    OriginObject.emplace(&I, O);
    addPts(valueNode(&I), baseCell(O));
    break;
  }
  case Instruction::OpMalloc:
  case Instruction::OpCalloc: {
    ObjectID O = newObject(MemObject::Kind::Heap, &I);
    OriginObject.emplace(&I, O);
    addPts(valueNode(&I), baseCell(O));
    break;
  }
  case Instruction::OpRealloc: {
    ObjectID O = newObject(MemObject::Kind::Heap, &I);
    OriginObject.emplace(&I, O);
    addPts(valueNode(&I), baseCell(O));
    // The reallocated block aliases the original pointer's objects.
    addEdge(valueNode(cast<ReallocInst>(&I)->getPtr()), valueNode(&I));
    break;
  }
  case Instruction::OpLoad:
    addComplex(valueNode(cast<LoadInst>(&I)->getPointer()),
               Complex{Complex::Load, valueNode(&I), 0, nullptr});
    break;
  case Instruction::OpStore: {
    const auto *SI = cast<StoreInst>(&I);
    addComplex(valueNode(SI->getPointer()),
               Complex{Complex::Store, valueNode(SI->getStoredValue()), 0,
                       nullptr});
    break;
  }
  case Instruction::OpFieldAddr: {
    const auto *FA = cast<FieldAddrInst>(&I);
    addComplex(valueNode(FA->getBase()),
               Complex{Complex::Field, valueNode(&I),
                       static_cast<int64_t>(FA->getField().Offset), nullptr});
    break;
  }
  case Instruction::OpIndexAddr:
    // Array elements are smashed: indexing stays within the same cells.
    addEdge(valueNode(cast<IndexAddrInst>(&I)->getBase()), valueNode(&I));
    break;
  case Instruction::OpTrunc:
  case Instruction::OpSExt:
  case Instruction::OpZExt:
  case Instruction::OpBitcast:
  case Instruction::OpPtrToInt:
  case Instruction::OpIntToPtr:
    // Value-preserving casts, including pointer laundering through
    // integers: the result may denote whatever the operand denotes.
    addEdge(valueNode(cast<CastInst>(&I)->getCastOperand()), valueNode(&I));
    break;
  case Instruction::OpAdd:
  case Instruction::OpSub:
  case Instruction::OpMul:
  case Instruction::OpSDiv:
  case Instruction::OpSRem:
  case Instruction::OpAnd:
  case Instruction::OpOr:
  case Instruction::OpXor:
  case Instruction::OpShl:
  case Instruction::OpAShr:
    // Laundered pointer bits may survive integer arithmetic.
    addEdge(valueNode(cast<BinaryInst>(&I)->getLHS()), valueNode(&I));
    addEdge(valueNode(cast<BinaryInst>(&I)->getRHS()), valueNode(&I));
    break;
  case Instruction::OpCall: {
    const auto *CI = cast<CallInst>(&I);
    const Function *Callee = CI->getCallee();
    if (Callee->isDeclaration()) {
      // Library or unresolved external: arguments escape to external
      // memory, the result may point anywhere external.
      for (unsigned A = 0; A < CI->getNumArgs(); ++A)
        externalCallArg(CI->getArg(A));
      addEdge(CellNode[ExternalCellId], valueNode(&I));
    } else {
      unsigned N = std::min(CI->getNumArgs(), Callee->getNumArgs());
      for (unsigned A = 0; A < N; ++A)
        addEdge(valueNode(CI->getArg(A)), valueNode(Callee->getArg(A)));
      addEdge(retNode(Callee), valueNode(&I));
    }
    break;
  }
  case Instruction::OpICall: {
    const auto *IC = cast<IndirectCallInst>(&I);
    IndirectCalls.push_back(IC);
    addComplex(valueNode(IC->getCalleePtr()),
               Complex{Complex::ICall, valueNode(&I), 0, IC});
    break;
  }
  case Instruction::OpRet: {
    const auto *RI = cast<RetInst>(&I);
    if (RI->hasValue())
      addEdge(valueNode(RI->getValue()), retNode(I.getFunction()));
    break;
  }
  case Instruction::OpMemcpy: {
    const auto *MC = cast<MemcpyInst>(&I);
    Memcpys.emplace_back(valueNode(MC->getDst()), valueNode(MC->getSrc()));
    ++Stats.NumComplexConstraints;
    break;
  }
  default:
    // Comparisons, FP arithmetic, FP casts, branches, free, memset: no
    // pointer flow.
    break;
  }
}

void PointsToBuilder::wireCall(const IndirectCallInst *IC, const Function *F) {
  if (!Wired.insert({IC, F}).second)
    return;
  if (F->isDeclaration()) {
    routeExternalICall(IC);
    return;
  }
  unsigned N = std::min(IC->getNumArgs(), F->getNumArgs());
  for (unsigned A = 0; A < N; ++A)
    addEdge(valueNode(IC->getArg(A)), valueNode(F->getArg(A)));
  addEdge(retNode(F), valueNode(IC));
}

void PointsToBuilder::routeExternalICall(const IndirectCallInst *IC) {
  if (!ExtRouted.insert(IC).second)
    return;
  for (unsigned A = 0; A < IC->getNumArgs(); ++A)
    externalCallArg(IC->getArg(A));
  addEdge(CellNode[ExternalCellId], valueNode(IC));
}

void PointsToBuilder::propagate() {
  while (!Worklist.empty()) {
    uint32_t N = Worklist.front();
    Worklist.pop_front();
    InWork[N] = 0;
    if (find(N) != N)
      continue;
    std::vector<uint32_t> Out(Succ[N].begin(), Succ[N].end());
    for (uint32_t SRaw : Out) {
      uint32_t S = find(SRaw);
      if (S == N)
        continue;
      bool Grew = false;
      for (uint32_t C : Pts[N])
        if (Pts[S].insert(C).second)
          Grew = true;
      if (Grew) {
        AnyChange = true;
        push(S);
      }
    }
  }
}

void PointsToBuilder::processComplex() {
  for (uint32_t N = 0; N < Parent.size(); ++N) {
    if (find(N) != N || Cplx[N].empty() || Pts[N].empty())
      continue;
    std::vector<Complex> Cons = Cplx[N];
    std::vector<uint32_t> Cells(Pts[N].begin(), Pts[N].end());
    for (const Complex &C : Cons) {
      for (uint32_t Cell : Cells) {
        switch (C.K) {
        case Complex::Load:
          addEdge(CellNode[Cell], C.Other);
          break;
        case Complex::Store:
          addEdge(C.Other, CellNode[Cell]);
          break;
        case Complex::Field: {
          int64_t Base = CellOffset[Cell] == kBaseCell ? 0 : CellOffset[Cell];
          addPts(C.Other, getCell(CellObject[Cell], Base + C.Off));
          break;
        }
        case Complex::ExtStore:
          addEdge(CellNode[ExternalCellId], CellNode[Cell]);
          break;
        case Complex::ICall: {
          const MemObject &O = Objects[CellObject[Cell]];
          if (O.K == MemObject::Kind::Function &&
              CellOffset[Cell] == kBaseCell)
            wireCall(C.IC, cast<Function>(O.Origin));
          else
            routeExternalICall(C.IC);
          break;
        }
        }
      }
    }
  }
}

void PointsToBuilder::processMemcpys() {
  for (auto &[DstN, SrcN] : Memcpys) {
    uint32_t D = find(DstN), S = find(SrcN);
    if (Pts[D].empty() || Pts[S].empty())
      continue;
    std::set<ObjectID> DstObjs, SrcObjs;
    for (uint32_t C : Pts[D])
      DstObjs.insert(CellObject[C]);
    for (uint32_t C : Pts[S])
      SrcObjs.insert(CellObject[C]);
    for (ObjectID SO : SrcObjs) {
      // Snapshot the source object's cells; getCell below may add cells.
      std::vector<std::pair<int64_t, uint32_t>> SrcCells;
      for (const auto &[Key, Cell] : CellMap)
        if (Key.first == SO)
          SrcCells.emplace_back(Key.second, Cell);
      for (ObjectID DO : DstObjs)
        for (const auto &[Off, Cell] : SrcCells)
          addEdge(CellNode[Cell], CellNode[getCell(DO, Off)]);
    }
  }
}

void PointsToBuilder::collapseCycles() {
  // Iterative Tarjan SCC over the copy graph restricted to representatives.
  uint32_t NumNodes = static_cast<uint32_t>(Parent.size());
  std::vector<uint32_t> Index(NumNodes, 0), Low(NumNodes, 0);
  std::vector<char> OnStack(NumNodes, 0);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 1;

  struct Frame {
    uint32_t Node;
    std::vector<uint32_t> Succs;
    size_t NextSucc = 0;
  };
  std::vector<Frame> CallStack;

  for (uint32_t Root = 0; Root < NumNodes; ++Root) {
    if (find(Root) != Root || Index[Root])
      continue;
    CallStack.push_back({Root, {}, 0});
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    for (uint32_t S : Succ[Root])
      CallStack.back().Succs.push_back(S);

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.NextSucc < F.Succs.size()) {
        uint32_t W = find(F.Succs[F.NextSucc++]);
        if (W == F.Node)
          continue;
        if (!Index[W]) {
          Index[W] = Low[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          Frame NF{W, {}, 0};
          for (uint32_t S : Succ[W])
            NF.Succs.push_back(S);
          CallStack.push_back(std::move(NF));
        } else if (OnStack[W]) {
          Low[F.Node] = std::min(Low[F.Node], Index[W]);
        }
        continue;
      }
      uint32_t N = F.Node;
      CallStack.pop_back();
      if (!CallStack.empty())
        Low[CallStack.back().Node] =
            std::min(Low[CallStack.back().Node], Low[N]);
      if (Low[N] == Index[N]) {
        // Pop the SCC; merge all members into one node.
        std::vector<uint32_t> SCC;
        while (true) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          SCC.push_back(W);
          if (W == N)
            break;
        }
        for (size_t I = 1; I < SCC.size(); ++I)
          unite(SCC[0], SCC[I]);
      }
    }
  }
}

void PointsToBuilder::solve() {
  do {
    AnyChange = false;
    ++Stats.SolverPasses;
    propagate();
    processComplex();
    processMemcpys();
    propagate();
    collapseCycles();
  } while (AnyChange);
}

std::set<uint32_t>
PointsToBuilder::reachableCells(const std::set<uint32_t> &Seeds) {
  std::set<uint32_t> Seen = Seeds;
  std::deque<uint32_t> Queue(Seeds.begin(), Seeds.end());
  auto visit = [&](uint32_t Cell) {
    if (Seen.insert(Cell).second)
      Queue.push_back(Cell);
  };
  while (!Queue.empty()) {
    uint32_t Cell = Queue.front();
    Queue.pop_front();
    // If one cell of an object is reachable, the whole object is.
    ObjectID O = CellObject[Cell];
    for (const auto &[Key, Sibling] : CellMap)
      if (Key.first == O)
        visit(Sibling);
    // Follow the contents of the cell.
    for (uint32_t C : Pts[find(CellNode[Cell])])
      visit(C);
  }
  return Seen;
}

bool PointsToBuilder::clobberExternallyReachable() {
  // External code can write external pointers into any memory reachable
  // from external memory. Feed that back into the solution.
  std::set<uint32_t> Ext = reachableCells({ExternalCellId});
  bool Changed = false;
  for (uint32_t Cell : Ext) {
    AnyChange = false;
    addPts(CellNode[Cell], ExternalCellId);
    addEdge(CellNode[ExternalCellId], CellNode[Cell]);
    Changed |= AnyChange;
  }
  return Changed;
}

void PointsToBuilder::computeEscapes() {
  auto markAll = [&](const std::set<uint32_t> &Cells, EscapeState E) {
    for (uint32_t Cell : Cells) {
      MemObject &O = Objects[CellObject[Cell]];
      if (O.Escape < E)
        O.Escape = E;
    }
  };

  // External: reachable from external memory.
  markAll(reachableCells({ExternalCellId}), EscapeState::ExternalEscape);

  // Global: reachable from the cells of global objects.
  std::set<uint32_t> GlobalSeeds;
  for (const auto &[Key, Cell] : CellMap)
    if (Objects[Key.first].K == MemObject::Kind::Global)
      GlobalSeeds.insert(Cell);
  markAll(reachableCells(GlobalSeeds), EscapeState::GlobalEscape);

  // Arg: reachable from the formal arguments of analyzed functions.
  std::set<uint32_t> ArgSeeds;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    for (unsigned I = 0; I < F->getNumArgs(); ++I) {
      auto It = ValNode.find(F->getArg(I));
      if (It == ValNode.end())
        continue;
      for (uint32_t C : Pts[find(It->second)])
        ArgSeeds.insert(C);
    }
  }
  markAll(reachableCells(ArgSeeds), EscapeState::ArgEscape);

  Objects[ExternalObj].Escape = EscapeState::ExternalEscape;
}

void PointsToBuilder::computeViews() {
  // Objects declared with a record type are viewed as that record.
  for (MemObject &O : Objects) {
    Type *DeclTy = nullptr;
    if (O.K == MemObject::Kind::Stack)
      DeclTy = cast<AllocaInst>(O.Origin)->getAllocatedType();
    else if (O.K == MemObject::Kind::Global)
      DeclTy = cast<GlobalVariable>(O.Origin)->getValueType();
    if (!DeclTy)
      continue;
    while (auto *AT = dyn_cast<ArrayType>(DeclTy))
      DeclTy = AT->getElementType();
    if (auto *R = dyn_cast<RecordType>(DeclTy))
      O.Views.insert(R);
  }
  // Every typed pointer into an object views it as the pointee record.
  // Only one pointer level is stripped: a T** names an object holding a
  // T* value, not an object laid out as T.
  for (const Value *V : TrackedValues) {
    auto *PT = dyn_cast<PointerType>(V->getType());
    if (!PT)
      continue;
    Type *Pointee = PT->getPointee();
    while (auto *AT = dyn_cast<ArrayType>(Pointee))
      Pointee = AT->getElementType();
    auto *R = dyn_cast<RecordType>(Pointee);
    if (!R)
      continue;
    for (uint32_t C : Pts[find(ValNode[V])])
      Objects[CellObject[C]].Views.insert(R);
  }
}

PointsToResult PointsToBuilder::finish() {
  PointsToResult Res;
  Res.Objects = Objects;
  Res.CellObject = CellObject;
  Res.ExternalCell = ExternalCellId;
  Res.TrackedValues = TrackedValues;

  // Compact: map every tracked value to its representative's final set.
  Res.NodePointsTo.resize(Parent.size());
  for (uint32_t N = 0; N < Parent.size(); ++N)
    if (find(N) == N)
      Res.NodePointsTo[N].assign(Pts[N].begin(), Pts[N].end());
  for (const auto &[V, N] : ValNode)
    Res.ValueNode.emplace(V, find(N));

  // Resolve indirect calls from the final callee-pointer sets.
  for (const IndirectCallInst *IC : IndirectCalls) {
    PointsToResult::CallTargets T;
    T.Complete = true;
    std::set<const Function *> Fns;
    for (uint32_t C : Pts[find(valueNode(IC->getCalleePtr()))]) {
      const MemObject &O = Objects[CellObject[C]];
      if (O.K == MemObject::Kind::Function && CellOffset[C] == kBaseCell)
        Fns.insert(cast<Function>(O.Origin));
      else
        T.Complete = false;
    }
    for (const Function *F : Fns) {
      T.Targets.push_back(F);
      if (F->isDeclaration())
        T.Complete = false;
    }
    Res.IndirectTargets.emplace(IC, std::move(T));
  }

  Stats.NumValueNodes = static_cast<unsigned>(ValNode.size());
  Stats.NumObjects = static_cast<unsigned>(Objects.size());
  Stats.NumCells = static_cast<unsigned>(CellNode.size());
  Res.Stats = Stats;
  return Res;
}

PointsToResult PointsToBuilder::run() {
  // The external object: one abstraction of all memory outside the
  // analysis scope. Its base cell points to itself (external memory
  // contains pointers to external memory).
  ExternalObj = newObject(MemObject::Kind::External, nullptr);
  ExternalCellId = baseCell(ExternalObj);
  addPts(CellNode[ExternalCellId], ExternalCellId);

  collectGlobals();
  for (const auto &F : M.functions())
    collectFunction(*F);

  solve();
  while (clobberExternallyReachable())
    solve();

  computeEscapes();
  computeViews();
  return finish();
}

PointsToResult slo::analyzePointsTo(const Module &M) {
  return PointsToBuilder(M).run();
}

// PointsToResult queries ---------------------------------------------------

std::vector<PointsToResult::ObjectID>
PointsToResult::pointedObjects(const Value *V) const {
  std::vector<ObjectID> Out;
  auto It = ValueNode.find(V);
  if (It == ValueNode.end())
    return Out;
  for (uint32_t C : NodePointsTo[It->second])
    Out.push_back(CellObject[C]);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

bool PointsToResult::pointsToExternal(const Value *V) const {
  auto It = ValueNode.find(V);
  if (It == ValueNode.end())
    return true;
  for (uint32_t C : NodePointsTo[It->second])
    if (Objects[CellObject[C]].K == MemObject::Kind::External)
      return true;
  return false;
}

EscapeState PointsToResult::escapeOf(const Value *V) const {
  auto It = ValueNode.find(V);
  if (It == ValueNode.end())
    return EscapeState::ExternalEscape;
  EscapeState E = EscapeState::NoEscape;
  for (uint32_t C : NodePointsTo[It->second])
    E = std::max(E, Objects[CellObject[C]].Escape);
  return E;
}

bool PointsToResult::mayAlias(const Value *A, const Value *B) const {
  auto AIt = ValueNode.find(A), BIt = ValueNode.find(B);
  if (AIt == ValueNode.end() || BIt == ValueNode.end())
    return true;
  if (AIt->second == BIt->second)
    return true;
  const auto &PA = NodePointsTo[AIt->second];
  const auto &PB = NodePointsTo[BIt->second];
  // Both sets are sorted.
  size_t I = 0, J = 0;
  while (I < PA.size() && J < PB.size()) {
    if (PA[I] == PB[J])
      return true;
    if (PA[I] < PB[J])
      ++I;
    else
      ++J;
  }
  return false;
}

std::vector<const Value *> PointsToResult::aliasesOf(const Value *V) const {
  std::vector<const Value *> Out;
  for (const Value *W : TrackedValues)
    if (W == V || mayAlias(V, W))
      Out.push_back(W);
  return Out;
}

std::vector<PointsToResult::ObjectID>
PointsToResult::objectsViewedAs(const RecordType *R) const {
  std::vector<ObjectID> Out;
  for (ObjectID O = 0; O < Objects.size(); ++O)
    if (Objects[O].Views.count(const_cast<RecordType *>(R)))
      Out.push_back(O);
  return Out;
}

PointsToResult::CallTargets
PointsToResult::callTargets(const IndirectCallInst *IC) const {
  auto It = IndirectTargets.find(IC);
  if (It == IndirectTargets.end())
    return CallTargets();
  return It->second;
}
