//===- analysis/LoopInfo.h - Natural loop detection ------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop nesting forest built from dominator-identified back edges. The
/// paper's loop recognition is Havlak-based (handles irreducible CFGs);
/// MiniC's structured control flow only produces reducible CFGs, so
/// natural loops are exact here (documented deviation, DESIGN.md §5).
///
/// The profitability analysis uses loops as its granularity for field
/// affinity: "two fields are affine when they are accessed close to each
/// other, for example in the same loop" (paper §2.3).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_LOOPINFO_H
#define SLO_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace slo {

/// One natural loop.
class Loop {
public:
  const BasicBlock *getHeader() const { return Header; }
  Loop *getParent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  /// All blocks of the loop including nested loop bodies.
  const std::vector<const BasicBlock *> &blocks() const { return Blocks; }
  /// Sources of the back edges into the header.
  const std::vector<const BasicBlock *> &latches() const { return Latches; }
  /// 1 for top-level loops, increasing inward.
  unsigned getDepth() const { return Depth; }

  bool contains(const BasicBlock *BB) const { return BlockSet.count(BB); }
  bool contains(const Loop *L) const;

private:
  friend class LoopInfo;
  const BasicBlock *Header = nullptr;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  std::vector<const BasicBlock *> Blocks;
  std::set<const BasicBlock *> BlockSet;
  std::vector<const BasicBlock *> Latches;
  unsigned Depth = 1;
};

/// The loop nesting forest of one function.
class LoopInfo {
public:
  LoopInfo(const Function &F, const DominatorTree &DT);

  /// The innermost loop containing \p BB, or nullptr.
  Loop *getLoopFor(const BasicBlock *BB) const;

  /// All loops, innermost-last within each nest (safe order for
  /// outer-to-inner processing); use loopsInnermostFirst() for the
  /// reverse.
  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  std::vector<Loop *> topLevel() const;
  std::vector<Loop *> loopsInnermostFirst() const;

  /// The loop nesting depth of \p BB (0 when not in any loop).
  unsigned getDepth(const BasicBlock *BB) const {
    Loop *L = getLoopFor(BB);
    return L ? L->getDepth() : 0;
  }

  /// Returns true if From->To is a back edge (To is a loop header that
  /// dominates From).
  bool isBackEdge(const BasicBlock *From, const BasicBlock *To) const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::map<const BasicBlock *, Loop *> InnermostLoop;
};

} // namespace slo

#endif // SLO_ANALYSIS_LOOPINFO_H
