//===- analysis/BlockFrequency.cpp - Local block frequencies --------------===//

#include "analysis/BlockFrequency.h"

#include <cmath>

using namespace slo;

BlockFrequencies::BlockFrequencies(const Function &F, const DominatorTree &DT,
                                   const BranchProbabilities &BP)
    : BP(BP) {
  const BasicBlock *Entry = F.getEntry();
  if (!Entry)
    return;
  for (const BasicBlock *BB : DT.reversePostOrder())
    Freq[BB] = 0.0;
  Freq[Entry] = 1.0;

  // RPO sweeps until fixpoint. Each sweep propagates one more "lap" of
  // every loop; with back edge probability p the error after k sweeps is
  // O(p^k), so 2000 sweeps cover even the ISPBO.W cap of 0.98.
  const unsigned MaxSweeps = 2000;
  const double Tolerance = 1e-10;
  for (unsigned Sweep = 0; Sweep < MaxSweeps; ++Sweep) {
    double MaxDelta = 0.0;
    for (const BasicBlock *BB : DT.reversePostOrder()) {
      double In = BB == Entry ? 1.0 : 0.0;
      for (const BasicBlock *P : DT.predecessors(BB))
        In += Freq[P] * BP.getEdgeProb(P, BB);
      MaxDelta = std::max(MaxDelta, std::fabs(In - Freq[BB]));
      Freq[BB] = In;
    }
    if (MaxDelta < Tolerance)
      break;
  }
}

double BlockFrequencies::get(const BasicBlock *BB) const {
  auto It = Freq.find(BB);
  return It == Freq.end() ? 0.0 : It->second;
}
