//===- analysis/BranchProbability.h - Static branch estimation -*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static branch probabilities in the spirit of Wu & Larus, "Static branch
/// frequency and program profile analysis" (MICRO-27), the paper's
/// reference [22] for non-profile compilations. The paper's defaults:
/// loop back edges ~0.88 (0.93 for floating point loops), if-then-else
/// 50/50. The ISPBO.W experiment raises the back edge probabilities to
/// 0.95 / 0.98, which is exposed here as options.
///
/// Simplification vs Wu-Larus: instead of Dempster-Shafer evidence
/// combination, the first matching heuristic wins, in the order loop >
/// pointer > opcode > return (documented deviation).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ANALYSIS_BRANCHPROBABILITY_H
#define SLO_ANALYSIS_BRANCHPROBABILITY_H

#include "analysis/LoopInfo.h"

#include <map>

namespace slo {

struct BranchProbOptions {
  /// Probability that an integer loop's back edge is taken.
  double IntLoopBackEdge = 0.88;
  /// Probability that a floating-point loop's back edge is taken.
  double FpLoopBackEdge = 0.93;
  /// Probability of the not-equal outcome for pointer comparisons.
  double PointerNotEqual = 0.70;
  /// Probability that "x < 0"-style comparisons are false.
  double OpcodeNegativeFalse = 0.66;
  /// Probability of branching away from a returning block.
  double AvoidReturn = 0.72;

  /// The paper's ISPBO.W variant: back-edge probabilities raised to
  /// 0.95 (integer) and 0.98 (floating point).
  static BranchProbOptions ispboW() {
    BranchProbOptions O;
    O.IntLoopBackEdge = 0.95;
    O.FpLoopBackEdge = 0.98;
    return O;
  }
};

/// Edge probabilities for one function. Unconditional edges have
/// probability 1.
class BranchProbabilities {
public:
  BranchProbabilities(const Function &F, const LoopInfo &LI,
                      const BranchProbOptions &Opts = BranchProbOptions());

  /// The probability of control transferring along From->To. Returns 0
  /// for non-edges.
  double getEdgeProb(const BasicBlock *From, const BasicBlock *To) const;

private:
  static bool loopHasFloatingPoint(const Loop &L);

  std::map<std::pair<const BasicBlock *, const BasicBlock *>, double> Probs;
};

} // namespace slo

#endif // SLO_ANALYSIS_BRANCHPROBABILITY_H
