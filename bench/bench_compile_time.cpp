//===- bench/bench_compile_time.cpp - §2.5 compile-time overhead ----------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper §2.5: "the compile time overhead is low. For the FE it is 2.5%
// on average, with an observed maximum of 5%. The overhead for IPA is
// always below 4%. For the BE the overhead is 1% on average."
//
// This google-benchmark binary measures the same decomposition on this
// reproduction: baseline compilation (lex/parse/irgen/link), the FE-phase
// legality analysis, the IPA-phase profitability analysis + planning,
// and the BE transformation, each as a fraction of the baseline compile.
// Run with --benchmark_format=console (default).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include <benchmark/benchmark.h>

using namespace slo;
using namespace slo::bench;

namespace {

const Workload &workloadByIndex(int Idx) {
  return allWorkloads()[static_cast<size_t>(Idx)];
}

void BM_BaselineCompile(benchmark::State &State) {
  const Workload &W = workloadByIndex(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    IRContext Ctx;
    auto M = compileProgramOrDie(Ctx, W.Name, W.Sources);
    benchmark::DoNotOptimize(M.get());
  }
  State.SetLabel(W.Name);
}

void BM_FeLegality(benchmark::State &State) {
  const Workload &W = workloadByIndex(static_cast<int>(State.range(0)));
  IRContext Ctx;
  auto M = compileProgramOrDie(Ctx, W.Name, W.Sources);
  for (auto _ : State) {
    LegalityResult L = analyzeLegality(*M);
    benchmark::DoNotOptimize(&L);
  }
  State.SetLabel(W.Name);
}

void BM_IpaProfitability(benchmark::State &State) {
  const Workload &W = workloadByIndex(static_cast<int>(State.range(0)));
  IRContext Ctx;
  auto M = compileProgramOrDie(Ctx, W.Name, W.Sources);
  LegalityResult Legal = analyzeLegality(*M);
  for (auto _ : State) {
    SchemeInputs In;
    In.M = M.get();
    FieldStatsResult Stats =
        computeSchemeFieldStats(WeightScheme::ISPBO, In);
    PlannerOptions PO;
    std::vector<TypePlan> Plans = planLayout(*M, Legal, Stats, PO);
    benchmark::DoNotOptimize(&Plans);
  }
  State.SetLabel(W.Name);
}

void BM_BeTransform(benchmark::State &State) {
  const Workload &W = workloadByIndex(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    // The BE rewrites the module in place, so each iteration needs a
    // fresh compile; subtract the baseline to get the BE cost.
    State.PauseTiming();
    IRContext Ctx;
    auto M = compileProgramOrDie(Ctx, W.Name, W.Sources);
    LegalityResult Legal = analyzeLegality(*M);
    SchemeInputs In;
    In.M = M.get();
    FieldStatsResult Stats =
        computeSchemeFieldStats(WeightScheme::ISPBO, In);
    PlannerOptions PO;
    std::vector<TypePlan> Plans = planLayout(*M, Legal, Stats, PO);
    State.ResumeTiming();
    TransformSummary S = applyPlans(*M, Plans, Legal);
    benchmark::DoNotOptimize(&S);
  }
  State.SetLabel(W.Name);
}

} // namespace

// Representative small/medium/large benchmarks: mcf (0), cactusADM (3),
// povray (5).
BENCHMARK(BM_BaselineCompile)->Arg(0)->Arg(3)->Arg(5);
BENCHMARK(BM_FeLegality)->Arg(0)->Arg(3)->Arg(5);
BENCHMARK(BM_IpaProfitability)->Arg(0)->Arg(3)->Arg(5);
BENCHMARK(BM_BeTransform)->Arg(0)->Arg(3)->Arg(5);

// BENCHMARK_MAIN, plus a default machine-readable artifact: unless the
// caller picks their own --benchmark_out, results are also written to
// BENCH_compile_time.json in google-benchmark's JSON schema.
int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  char OutFlag[] = "--benchmark_out=BENCH_compile_time.json";
  char FmtFlag[] = "--benchmark_out_format=json";
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]).rfind("--benchmark_out=", 0) == 0)
      HasOut = true;
  if (!HasOut) {
    Args.push_back(OutFlag);
    Args.push_back(FmtFlag);
  }
  int Argc = static_cast<int>(Args.size());
  ::benchmark::Initialize(&Argc, Args.data());
  if (::benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
