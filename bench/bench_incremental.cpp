//===- bench/bench_incremental.cpp - Cold vs warm advisory pipeline -------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The incremental pipeline's reason to exist, measured: on a ~200-TU
// generated corpus, a warm run (every summary served from the on-disk
// cache) must be at least an order of magnitude faster than the cold
// run that populated it, and a 1-TU-invalidated warm run (one source
// file mutated) must recompute exactly that TU — all while rendering
// advice byte-identical to a from-scratch cold run.
//
// Wall times here are real wall clock (the pipeline fans out over a
// thread pool), so the JSON artifact is NOT byte-stable across runs;
// bench_compare.py --incremental gates the speedup floor and the
// identity flags, never exact times.
//
//   bench_incremental [--tus N] [--seed S] [--jobs J] [--out FILE]
//
// Writes BENCH_incremental.json (see scripts/bench_compare.py).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "fuzz/ProgramFuzzer.h"
#include "pipeline/Incremental.h"

#include <chrono>
#include <cstring>
#include <filesystem>

using namespace slo;
using namespace slo::bench;

namespace {

double wallMs(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

struct Leg {
  double WallMs = 0;
  IncrementalResult Result;
};

Leg runLeg(const std::vector<TuSource> &TUs, const std::string &CacheDir,
           unsigned Jobs) {
  Leg L;
  IncrementalOptions O;
  O.CacheDir = CacheDir;
  O.Threads = Jobs;
  auto T0 = std::chrono::steady_clock::now();
  L.Result = runIncrementalAdvice(TUs, O);
  L.WallMs = wallMs(T0);
  if (!L.Result.Ok)
    reportFatalError("incremental bench corpus failed to compile: " +
                     (L.Result.Errors.empty() ? std::string("?")
                                              : L.Result.Errors.front()));
  return L;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Units = 200;
  uint64_t Seed = 42;
  unsigned Jobs = 0;
  std::string OutPath = "BENCH_incremental.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (std::strcmp(argv[I], "--tus") == 0) {
      if (const char *V = Next())
        Units = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--seed") == 0) {
      if (const char *V = Next())
        Seed = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(argv[I], "--jobs") == 0) {
      if (const char *V = Next())
        Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--out") == 0) {
      if (const char *V = Next())
        OutPath = V;
    } else {
      std::fprintf(stderr,
                   "usage: bench_incremental [--tus N] [--seed S] [--jobs J] "
                   "[--out FILE]\n");
      return 2;
    }
  }
  if (Units < 2)
    Units = 2;

  std::vector<FuzzTu> Corpus = generateFuzzCorpus(Seed, Units);
  auto Render = [&Corpus]() {
    std::vector<TuSource> TUs;
    for (const FuzzTu &Tu : Corpus)
      TUs.push_back({Tu.FileName, Tu.Program.render()});
    return TUs;
  };
  std::vector<TuSource> TUs = Render();

  std::filesystem::path CacheDir =
      std::filesystem::temp_directory_path() /
      ("slo_bench_incremental_" + std::to_string(Seed));
  std::error_code Ec;
  std::filesystem::remove_all(CacheDir, Ec); // A stale cache would fake warmth.

  std::printf("bench_incremental: %zu TUs (seed %llu)\n", TUs.size(),
              static_cast<unsigned long long>(Seed));

  // Leg 1: cold, populating the cache.
  Leg Cold = runLeg(TUs, CacheDir.string(), Jobs);
  // Leg 2: warm — every summary from the cache.
  Leg WarmLeg = runLeg(TUs, CacheDir.string(), Jobs);
  bool WarmIdentical = WarmLeg.Result.AdviceText == Cold.Result.AdviceText &&
                       WarmLeg.Result.AdviceJson == Cold.Result.AdviceJson;

  // Leg 3: mutate one unit TU, warm re-run. The reference for its
  // identity flag is an uncached cold run over the mutated corpus
  // (untimed leg — it is the correctness baseline, not a measurement).
  std::string Mutation = mutateFuzzTu(Corpus[Units / 2].Program, Seed ^ 0xabc);
  TUs = Render();
  Leg Inval = runLeg(TUs, CacheDir.string(), Jobs);
  IncrementalOptions NoCache;
  NoCache.Threads = Jobs;
  IncrementalResult MutCold = runIncrementalAdvice(TUs, NoCache);
  bool InvalIdentical = Inval.Result.AdviceText == MutCold.AdviceText &&
                        Inval.Result.AdviceJson == MutCold.AdviceJson;

  std::filesystem::remove_all(CacheDir, Ec);

  double Speedup = WarmLeg.WallMs > 0 ? Cold.WallMs / WarmLeg.WallMs : 0.0;
  std::printf("  cold        %8.1f ms (recomputed %u)\n", Cold.WallMs,
              Cold.Result.TusRecomputed);
  std::printf("  warm        %8.1f ms (reused %u)  speedup %.1fx  "
              "advice %s\n",
              WarmLeg.WallMs, WarmLeg.Result.TusReused, Speedup,
              WarmIdentical ? "identical" : "DIVERGED");
  std::printf("  invalidated %8.1f ms (reused %u, recomputed %u)  "
              "advice %s\n",
              Inval.WallMs, Inval.Result.TusReused, Inval.Result.TusRecomputed,
              InvalIdentical ? "identical" : "DIVERGED");
  std::printf("  mutation: %s\n", Mutation.c_str());

  std::string Json;
  Json += "{\n";
  Json += "  \"bench\": \"incremental\",\n";
  Json += "  \"tus\": " + std::to_string(TUs.size()) + ",\n";
  Json += "  \"seed\": " + std::to_string(Seed) + ",\n";
  Json += "  \"cold_wall_ms\": " + std::to_string(Cold.WallMs) + ",\n";
  Json += "  \"warm_wall_ms\": " + std::to_string(WarmLeg.WallMs) + ",\n";
  Json += "  \"invalidated_wall_ms\": " + std::to_string(Inval.WallMs) + ",\n";
  Json += "  \"warm_speedup\": " + std::to_string(Speedup) + ",\n";
  Json += std::string("  \"warm_advice_identical\": ") +
          (WarmIdentical ? "true" : "false") + ",\n";
  Json += std::string("  \"invalidated_advice_identical\": ") +
          (InvalIdentical ? "true" : "false") + ",\n";
  Json += "  \"warm_reused\": " + std::to_string(WarmLeg.Result.TusReused) +
          ",\n";
  Json += "  \"warm_recomputed\": " +
          std::to_string(WarmLeg.Result.TusRecomputed) + ",\n";
  Json += "  \"invalidated_reused\": " +
          std::to_string(Inval.Result.TusReused) + ",\n";
  Json += "  \"invalidated_recomputed\": " +
          std::to_string(Inval.Result.TusRecomputed) + ",\n";
  Json += "  \"mutation\": \"" + jsonEscape(Mutation) + "\"\n";
  Json += "}\n";
  writeTextFile(OutPath, Json);
  std::printf("wrote %s\n", OutPath.c_str());

  // The bench is also a smoke gate: identity failures are wrong even
  // before bench_compare.py looks at the artifact.
  return (WarmIdentical && InvalIdentical) ? 0 : 1;
}
