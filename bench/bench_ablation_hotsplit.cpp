//===- bench/bench_ablation_hotsplit.cpp - The §2.4 degradation study -----===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper §2.4: "for 181.mcf's node_t, the field time has a hotness of
// 14.8% [and] mark 15.6% ... Splitting out time results in a performance
// degradation of 9%. Splitting out time AND mark results in a
// degradation of 35%. We conclude that the single most important
// criterion for splitting is hotness -- hot fields need to remain in the
// hot section."
//
// This harness forces exactly those splits via hand-built plans and
// measures the damage, then shows the heuristic split for contrast.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "transform/Transform.h"

#include <algorithm>
#include <cstdio>

using namespace slo;
using namespace slo::bench;

namespace {

/// Plans the heuristic (PBO) split for the node type and then forces the
/// named hot fields into the cold part on top of it, mirroring the
/// paper's experiment ("splitting out field time" = in addition to the
/// heuristically chosen cold set).
double measureWithExtraCold(const Workload &W, const RunResult &BaseRun,
                            const std::vector<std::string> &ExtraCold,
                            unsigned *ColdCount = nullptr) {
  Built B = buildWorkload(W);
  FeedbackFile Train;
  runWith(*B.M, W.TrainParams, &Train);
  PipelineOptions Opts;
  Opts.Scheme = WeightScheme::PBO;
  Opts.AnalyzeOnly = true;
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts, &Train);

  RecordType *Node = B.Ctx->getTypes().lookupRecord("node");
  TypePlan Plan;
  for (const TypePlan &Candidate : P.Plans)
    if (Candidate.Rec == Node)
      Plan = Candidate;
  // Move the named fields from hot to cold.
  for (const std::string &Name : ExtraCold) {
    unsigned Idx = Node->findField(Name)->Index;
    Plan.HotFields.erase(
        std::find(Plan.HotFields.begin(), Plan.HotFields.end(), Idx));
    Plan.ColdFields.push_back(Idx);
  }
  if (ColdCount)
    *ColdCount = static_cast<unsigned>(Plan.ColdFields.size());
  applyPlans(*B.M, {Plan}, P.Legality);
  RunResult R = runWith(*B.M, W.RefParams);
  requireSameOutput(BaseRun, R, "hot-split ablation");
  return perfPercent(BaseRun.Cycles, R.Cycles);
}

} // namespace

int main() {
  const Workload *W = findWorkload("181.mcf");
  Built Base = buildWorkload(*W);
  RunResult BaseRun = runWith(*Base.M, W->RefParams);

  std::printf("Ablation (paper §2.4): forcing HOT fields of mcf's node "
              "into the cold part\n(on top of the heuristic T_s=3%% "
              "split, as in the paper's experiment)\n\n");

  const std::vector<std::vector<std::string>> ExtraColdSets = {
      {}, {"time"}, {"time", "mark"}, {"time", "mark", "potential"}};
  std::vector<double> Perf =
      parallelMap(ExtraColdSets.size(), [&](size_t I) {
        return measureWithExtraCold(*W, BaseRun, ExtraColdSets[I]);
      });

  double Heuristic = Perf[0];
  std::printf("  heuristic split          : %+7.1f%% vs base\n",
              Heuristic);

  double TimeOnly = Perf[1];
  std::printf("  ... + split out {time}   : %+7.1f%% vs base, %+.1f%% vs "
              "heuristic (paper: -9%%)\n",
              TimeOnly,
              100.0 * ((1.0 + TimeOnly / 100.0) /
                           (1.0 + Heuristic / 100.0) -
                       1.0));

  double TimeMark = Perf[2];
  std::printf("  ... + {time, mark}       : %+7.1f%% vs base, %+.1f%% vs "
              "heuristic (paper: -35%%)\n",
              TimeMark,
              100.0 * ((1.0 + TimeMark / 100.0) /
                           (1.0 + Heuristic / 100.0) -
                       1.0));

  double Potential = Perf[3];
  std::printf("  ... + {time,mark,potential}: %+5.1f%% vs base (splitting "
              "the hottest field)\n",
              Potential);

  std::printf("\nConclusion reproduced: the further into the hot set the "
              "split reaches, the\nworse it gets -- hotness is the "
              "primary splitting criterion.\n");
  return 0;
}
