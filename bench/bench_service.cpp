//===- bench/bench_service.cpp - Advisory daemon service benchmark --------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The SLO-as-a-service daemon under load, measured end to end through
// the wire protocol (socketpair transport, same code path as TCP):
//
//   - ingest latency: N producer connections stream PutSource upserts
//     from a generated corpus (RetryAfter honored and counted); the
//     artifact carries the p50/p99 round-trip latency;
//   - advice throughput: M reader connections hammer GET_ADVICE for a
//     fixed duration, three rounds; the artifact carries the best
//     round's QPS (capacity, robust to scheduler noise);
//   - the serve-equals-oneshot invariant: after all the load, the
//     daemon's advice must be byte-identical to a monolithic
//     runIncrementalAdvice over the same TU set. The bench exits 1 on
//     divergence even before bench_compare.py sees the artifact.
//
// Wall times are real wall clock, so the JSON artifact is NOT
// byte-stable across runs; scripts/bench_compare.py --service gates
// the invariant flags and generous ratio floors, never exact numbers.
//
// Client-side percentiles come from the shared observability Histogram
// (the same log-bucketed type behind the daemon's GetMetrics endpoint),
// so the bench and the endpoint agree bucket-for-bucket. With
// --telemetry on (the default) the daemon itself runs with counters and
// histograms wired, and the bench cross-checks the daemon's own
// service.latency.PutSource count against the requests it sent — an
// exact, scheduling-independent equality. --overhead measures the
// telemetry tax in-process: a second daemon with telemetry fully off
// (no registries, flight recorder depth 0 — zero clock reads) serves
// the same corpus, one thread alternates single requests between the
// two daemons so machine drift cancels pairwise, and the artifact
// carries overhead_qps_ratio (the median per-round on/off QPS ratio)
// for scripts/bench_compare.py --service-overhead, the gate proving
// always-on telemetry costs at most a few percent of QPS.
//
//   bench_service [--tus N] [--producers N] [--readers N] [--ops N]
//                 [--duration-ms D] [--seed S] [--telemetry on|off]
//                 [--overhead] [--out FILE]
//
// Writes BENCH_service.json.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "fuzz/ProgramFuzzer.h"
#include "observability/CounterRegistry.h"
#include "observability/Histogram.h"
#include "support/Error.h"
#include "pipeline/Incremental.h"
#include "service/AdvisoryDaemon.h"
#include "service/ServiceClient.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <unistd.h>

using namespace slo;
using namespace slo::bench;
using namespace slo::service;

namespace {

double wallMs(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

uint64_t wallMicros(std::chrono::steady_clock::time_point T0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

} // namespace

int main(int argc, char **argv) {
  unsigned Units = 24, Producers = 4, Readers = 4, OpsPerProducer = 60;
  unsigned DurationMs = 1500;
  uint64_t Seed = 42;
  bool Telemetry = true;
  bool Overhead = false;
  std::string OutPath = "BENCH_service.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (std::strcmp(argv[I], "--tus") == 0) {
      if (const char *V = Next())
        Units = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--producers") == 0) {
      if (const char *V = Next())
        Producers = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--readers") == 0) {
      if (const char *V = Next())
        Readers = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--ops") == 0) {
      if (const char *V = Next())
        OpsPerProducer = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--duration-ms") == 0) {
      if (const char *V = Next())
        DurationMs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--seed") == 0) {
      if (const char *V = Next())
        Seed = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(argv[I], "--telemetry") == 0) {
      const char *V = Next();
      if (V && std::strcmp(V, "on") == 0)
        Telemetry = true;
      else if (V && std::strcmp(V, "off") == 0)
        Telemetry = false;
      else {
        std::fprintf(stderr, "--telemetry expects on|off\n");
        return 2;
      }
    } else if (std::strcmp(argv[I], "--overhead") == 0) {
      Overhead = true;
    } else if (std::strcmp(argv[I], "--out") == 0) {
      if (const char *V = Next())
        OutPath = V;
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--tus N] [--producers N] "
                   "[--readers N] [--ops N] [--duration-ms D] [--seed S] "
                   "[--telemetry on|off] [--overhead] [--out FILE]\n");
      return 2;
    }
  }
  if (Units < 2)
    Units = 2;
  if (Producers < 1)
    Producers = 1;
  if (Readers < 1)
    Readers = 1;

  std::vector<FuzzTu> Corpus = generateFuzzCorpus(Seed, Units);
  std::vector<TuSource> TUs;
  for (const FuzzTu &Tu : Corpus)
    TUs.push_back({Tu.FileName, Tu.Program.render()});

  DaemonConfig Config;
  Config.Summary.Lint = false;
  Config.IngestQueueDepth = Producers; // Some shedding under full load.
  Config.RetryAfterMillis = 2;
  // --telemetry off is the PR 3 contract daemon: null registries, no
  // clock reads on the request path. The overhead gate compares the two.
  CounterRegistry DaemonCounters;
  HistogramRegistry DaemonHist;
  if (Telemetry) {
    Config.Counters = &DaemonCounters;
    Config.Hist = &DaemonHist;
  } else {
    Config.FlightRecorderDepth = 0; // Fully off: no clock on the path.
  }
  if (Overhead && !Telemetry) {
    std::fprintf(stderr,
                 "--overhead compares against a telemetry-off daemon; run "
                 "it with --telemetry on\n");
    return 2;
  }
  SummaryOptions OracleOpts = Config.Summary;
  AdvisoryDaemon Daemon(std::move(Config));

  auto Connect = [&]() -> int {
    int Fds[2];
    if (!makeSocketPair(Fds))
      reportFatalError("bench_service: socketpair failed");
    if (!Daemon.adoptConnection(Fds[0]))
      reportFatalError("bench_service: daemon refused a connection");
    return Fds[1];
  };

  std::printf("bench_service: %zu TUs, %u producers x %u ops, %u readers x "
              "%u ms (seed %llu, telemetry %s)\n",
              TUs.size(), Producers, OpsPerProducer, Readers, DurationMs,
              static_cast<unsigned long long>(Seed),
              Telemetry ? "on" : "off");

  //===--------------------------------------------------------------------===//
  // Phase 1: ingest latency under N producers
  //===--------------------------------------------------------------------===//
  // Client-observed round-trip latency, recorded in microseconds into
  // the shared log-bucketed Histogram (each producer thread writes its
  // own shard; the merged snapshot is deterministic).
  Histogram IngestLat;
  std::atomic<uint64_t> Retries{0};
  std::atomic<unsigned> IngestFailures{0};
  auto IngestT0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    for (unsigned P = 0; P < Producers; ++P) {
      Threads.emplace_back([&, P] {
        ServiceClient C(Connect(), 30000);
        for (unsigned I = 0; I < OpsPerProducer; ++I) {
          const TuSource &Tu = TUs[(P + I * Producers) % TUs.size()];
          unsigned R = 0;
          auto T0 = std::chrono::steady_clock::now();
          ServiceReply Reply =
              C.putWithRetry(Opcode::PutSource,
                             encodePutSource(Tu.Name, Tu.Source), 1000, &R);
          IngestLat.record(wallMicros(T0));
          Retries += R;
          if (!Reply.ok())
            ++IngestFailures;
        }
      });
    }
    for (auto &T : Threads)
      T.join();
  }
  double IngestWallMs = wallMs(IngestT0);
  if (IngestFailures.load())
    reportFatalError("bench_service: ingest failures under load");

  HistogramSnapshot IngestSnap = IngestLat.snapshot();
  double P50 = static_cast<double>(IngestSnap.quantile(0.50)) / 1000.0;
  double P99 = static_cast<double>(IngestSnap.quantile(0.99)) / 1000.0;
  uint64_t IngestOps = IngestSnap.Count;

  //===--------------------------------------------------------------------===//
  // Phase 2: advice QPS under M readers — best of 3 rounds. One wall-
  // clock round is hostage to scheduler luck on a shared container; the
  // max across rounds measures serving capacity, which is the quantity
  // the ±5% telemetry-overhead gate compares.
  //===--------------------------------------------------------------------===//
  std::atomic<unsigned> AdviceFailures{0};
  // One timed reader round against the given connector; returns the
  // round's QPS and accumulates request count / wall time if asked.
  auto QpsRound = [&](const std::function<int()> &Conn, uint64_t *OpsOut,
                      double *WallOut) -> double {
    std::atomic<uint64_t> Ok{0};
    auto T0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> Threads;
      for (unsigned R = 0; R < Readers; ++R) {
        Threads.emplace_back([&] {
          ServiceClient C(Conn(), 30000);
          auto Deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(DurationMs);
          while (std::chrono::steady_clock::now() < Deadline) {
            ServiceReply Reply = C.getAdvice(false);
            if (Reply.Transport && Reply.Op == Opcode::Advice)
              ++Ok;
            else
              ++AdviceFailures;
          }
        });
      }
      for (auto &T : Threads)
        T.join();
    }
    double Ms = wallMs(T0);
    if (OpsOut)
      *OpsOut += Ok.load();
    if (WallOut)
      *WallOut += Ms;
    return Ms > 0 ? static_cast<double>(Ok.load()) / (Ms / 1000.0) : 0.0;
  };

  uint64_t AdviceRequests = 0;
  double AdviceWallMs = 0.0;
  double Qps = 0.0;
  constexpr unsigned QpsRounds = 3;
  for (unsigned Round = 0; Round < QpsRounds; ++Round)
    Qps = std::max(Qps, QpsRound(Connect, &AdviceRequests, &AdviceWallMs));
  if (AdviceFailures.load())
    reportFatalError("bench_service: advice failures under load");

  //===--------------------------------------------------------------------===//
  // The invariant: serve equals oneshot, byte for byte
  //===--------------------------------------------------------------------===//
  std::sort(TUs.begin(), TUs.end(),
            [](const TuSource &A, const TuSource &B) { return A.Name < B.Name; });
  IncrementalOptions O;
  O.Summary = OracleOpts;
  IncrementalResult Oracle = runIncrementalAdvice(TUs, O);
  if (!Oracle.Ok)
    reportFatalError("bench_service: oracle corpus failed to compile");

  ServiceClient C(Connect(), 30000);
  ServiceReply Served = C.getAdvice(false);
  bool Identical = Served.Transport && Served.Op == Opcode::Advice &&
                   Served.Text == Oracle.AdviceText;

  //===--------------------------------------------------------------------===//
  // Telemetry cross-checks (with --telemetry on)
  //===--------------------------------------------------------------------===//
  // The daemon's own PutSource latency histogram must have seen exactly
  // one observation per PutSource frame: every producer op plus every
  // RetryAfter resend. Counts are scheduling-independent, so this is an
  // equality, not a tolerance.
  bool TelemetryOk = true;
  HistogramSnapshot DaemonPut;
  if (Telemetry) {
    DaemonPut = DaemonHist.get("service.latency.PutSource").snapshot();
    uint64_t Expected = IngestOps + Retries.load();
    if (DaemonPut.Count != Expected) {
      std::fprintf(stderr,
                   "bench_service: daemon PutSource histogram count %llu != "
                   "ops+retries %llu\n",
                   static_cast<unsigned long long>(DaemonPut.Count),
                   static_cast<unsigned long long>(Expected));
      TelemetryOk = false;
    }
    // The wire endpoint must serve the same merged snapshot the
    // in-process registry renders.
    ServiceReply M = C.getMetrics(0);
    std::string Want = "\"service.latency.PutSource\": {\"count\": " +
                       std::to_string(DaemonPut.Count);
    if (!M.Transport || M.Op != Opcode::Metrics ||
        M.Text.find(Want) == std::string::npos) {
      std::fprintf(stderr,
                   "bench_service: GetMetrics disagrees with the in-process "
                   "registry (want substring %s)\n",
                   Want.c_str());
      TelemetryOk = false;
    }
  }

  //===--------------------------------------------------------------------===//
  // --overhead: the telemetry tax, measured honestly
  //===--------------------------------------------------------------------===//
  // Comparing two separate bench invocations confounds the tax with
  // machine drift between them (run-to-run QPS moves more than the 5%
  // budget). Instead a second daemon with telemetry fully off (null
  // registries, flight recorder depth 0 — no clock reads at all) serves
  // the same corpus, and single requests alternate between the two
  // daemons so drift hits both configurations pairwise.
  double QpsOn = 0.0, QpsOff = 0.0, QpsRatio = 1.0;
  bool OffIdentical = true;
  if (Overhead) {
    DaemonConfig OffConfig;
    OffConfig.Summary = OracleOpts;
    OffConfig.IngestQueueDepth = Producers;
    OffConfig.RetryAfterMillis = 2;
    OffConfig.FlightRecorderDepth = 0;
    AdvisoryDaemon OffDaemon(std::move(OffConfig));
    auto ConnectOff = [&]() -> int {
      int Fds[2];
      if (!makeSocketPair(Fds))
        reportFatalError("bench_service: socketpair failed");
      if (!OffDaemon.adoptConnection(Fds[0]))
        reportFatalError("bench_service: off-daemon refused a connection");
      return Fds[1];
    };
    {
      ServiceClient Feeder(ConnectOff(), 30000);
      for (const TuSource &Tu : TUs)
        if (!Feeder
                 .putWithRetry(Opcode::PutSource,
                               encodePutSource(Tu.Name, Tu.Source), 1000)
                 .ok())
          reportFatalError("bench_service: off-daemon ingest failed");
      ServiceReply R = Feeder.getAdvice(false);
      OffIdentical = R.Transport && R.Op == Opcode::Advice &&
                     R.Text == Oracle.AdviceText;
    }
    // One thread alternates single requests between the two daemons, so
    // every on-request is bracketed by off-requests issued microseconds
    // apart — the tightest pairing ambient load allows. Competing reader
    // pools or adjacent timed windows both showed ±5% swings from
    // scheduler slice allocation alone (the container may have a single
    // core); per-request alternation cancels that drift pairwise. Each
    // round's ratio is (sum of off latencies) / (sum of on latencies),
    // i.e. the on/off QPS ratio at saturation, and the gated statistic
    // is the MEDIAN round ratio so a preemption spike landing inside
    // one round cannot tip the gate.
    constexpr unsigned OverheadRounds = 7;
    std::vector<double> Ratios;
    ServiceClient Con(Connect(), 30000);
    ServiceClient Coff(ConnectOff(), 30000);
    for (unsigned Round = 0; Round < OverheadRounds; ++Round) {
      uint64_t OnUs = 0, OffUs = 0, Pairs = 0;
      auto Deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(DurationMs);
      while (std::chrono::steady_clock::now() < Deadline) {
        bool OnFirst = (Pairs % 2 == 0);
        for (int Leg = 0; Leg < 2; ++Leg) {
          bool IsOn = (Leg == 0) == OnFirst;
          auto S = std::chrono::steady_clock::now();
          ServiceReply Reply = (IsOn ? Con : Coff).getAdvice(false);
          auto E = std::chrono::steady_clock::now();
          if (!(Reply.Transport && Reply.Op == Opcode::Advice))
            ++AdviceFailures;
          uint64_t Us = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(E - S)
                  .count());
          (IsOn ? OnUs : OffUs) += Us;
        }
        ++Pairs;
      }
      if (OnUs > 0 && OffUs > 0 && Pairs > 0) {
        QpsOn = std::max(QpsOn, static_cast<double>(Pairs) /
                                    (static_cast<double>(OnUs) / 1e6));
        QpsOff = std::max(QpsOff, static_cast<double>(Pairs) /
                                      (static_cast<double>(OffUs) / 1e6));
        Ratios.push_back(static_cast<double>(OffUs) /
                         static_cast<double>(OnUs));
      }
    }
    if (!Ratios.empty()) {
      std::sort(Ratios.begin(), Ratios.end());
      QpsRatio = Ratios[Ratios.size() / 2];
    }
    if (AdviceFailures.load())
      reportFatalError("bench_service: advice failures in overhead rounds");
    OffDaemon.stop();
  }
  Daemon.stop();

  std::printf("  ingest  %llu ops in %.1f ms: p50 %.3f ms, p99 %.3f ms, "
              "%llu retries\n",
              static_cast<unsigned long long>(IngestOps), IngestWallMs, P50,
              P99, static_cast<unsigned long long>(Retries.load()));
  std::printf("  advice  %llu requests in %.1f ms: %.1f qps (best of %u "
              "rounds)\n",
              static_cast<unsigned long long>(AdviceRequests), AdviceWallMs,
              Qps, QpsRounds);
  std::printf("  advice vs oneshot: %s\n",
              Identical ? "identical" : "DIVERGED");
  if (Overhead)
    std::printf("  overhead  median on/off qps ratio %.3f (best %.1f on, "
                "%.1f off), off-daemon advice %s\n",
                QpsRatio, QpsOn, QpsOff,
                OffIdentical ? "identical" : "DIVERGED");
  if (Telemetry)
    std::printf("  daemon  PutSource x %llu: p50 %llu us, p99 %llu us "
                "(telemetry %s)\n",
                static_cast<unsigned long long>(DaemonPut.Count),
                static_cast<unsigned long long>(DaemonPut.quantile(0.50)),
                static_cast<unsigned long long>(DaemonPut.quantile(0.99)),
                TelemetryOk ? "consistent" : "INCONSISTENT");

  std::string Json;
  Json += "{\n";
  Json += "  \"bench\": \"service\",\n";
  Json += "  \"tus\": " + std::to_string(TUs.size()) + ",\n";
  Json += "  \"seed\": " + std::to_string(Seed) + ",\n";
  Json += "  \"producers\": " + std::to_string(Producers) + ",\n";
  Json += "  \"readers\": " + std::to_string(Readers) + ",\n";
  Json += std::string("  \"telemetry\": \"") + (Telemetry ? "on" : "off") +
          "\",\n";
  Json += "  \"ingest_ops\": " + std::to_string(IngestOps) + ",\n";
  Json += "  \"ingest_wall_ms\": " + std::to_string(IngestWallMs) + ",\n";
  Json += "  \"ingest_p50_ms\": " + std::to_string(P50) + ",\n";
  Json += "  \"ingest_p99_ms\": " + std::to_string(P99) + ",\n";
  Json += "  \"ingest_retries\": " + std::to_string(Retries.load()) + ",\n";
  Json += "  \"advice_requests\": " + std::to_string(AdviceRequests) + ",\n";
  Json += "  \"advice_wall_ms\": " + std::to_string(AdviceWallMs) + ",\n";
  Json += "  \"advice_qps\": " + std::to_string(Qps) + ",\n";
  Json += "  \"daemon_put_source_count\": " +
          std::to_string(DaemonPut.Count) + ",\n";
  Json += "  \"daemon_put_source_p50_us\": " +
          std::to_string(DaemonPut.quantile(0.50)) + ",\n";
  Json += "  \"daemon_put_source_p99_us\": " +
          std::to_string(DaemonPut.quantile(0.99)) + ",\n";
  Json += std::string("  \"telemetry_consistent\": ") +
          (TelemetryOk ? "true" : "false") + ",\n";
  if (Overhead) {
    Json += "  \"advice_qps_on\": " + std::to_string(QpsOn) + ",\n";
    Json += "  \"advice_qps_off\": " + std::to_string(QpsOff) + ",\n";
    Json += "  \"overhead_qps_ratio\": " + std::to_string(QpsRatio) + ",\n";
    Json += std::string("  \"advice_identical_off\": ") +
            (OffIdentical ? "true" : "false") + ",\n";
  }
  Json += std::string("  \"advice_identical\": ") +
          (Identical ? "true" : "false") + "\n";
  Json += "}\n";
  writeTextFile(OutPath, Json);
  std::printf("wrote %s\n", OutPath.c_str());

  // Smoke gates: byte divergence or a telemetry miscount is wrong
  // regardless of throughput.
  return Identical && TelemetryOk && OffIdentical ? 0 : 1;
}
