//===- bench/bench_service.cpp - Advisory daemon service benchmark --------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The SLO-as-a-service daemon under load, measured end to end through
// the wire protocol (socketpair transport, same code path as TCP):
//
//   - ingest latency: N producer connections stream PutSource upserts
//     from a generated corpus (RetryAfter honored and counted); the
//     artifact carries the p50/p99 round-trip latency;
//   - advice throughput: M reader connections hammer GET_ADVICE for a
//     fixed duration; the artifact carries the answered QPS;
//   - the serve-equals-oneshot invariant: after all the load, the
//     daemon's advice must be byte-identical to a monolithic
//     runIncrementalAdvice over the same TU set. The bench exits 1 on
//     divergence even before bench_compare.py sees the artifact.
//
// Wall times are real wall clock, so the JSON artifact is NOT
// byte-stable across runs; scripts/bench_compare.py --service gates
// the invariant flags and generous ratio floors, never exact numbers.
//
//   bench_service [--tus N] [--producers N] [--readers N] [--ops N]
//                 [--duration-ms D] [--seed S] [--out FILE]
//
// Writes BENCH_service.json.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "fuzz/ProgramFuzzer.h"
#include "support/Error.h"
#include "pipeline/Incremental.h"
#include "service/AdvisoryDaemon.h"
#include "service/ServiceClient.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <unistd.h>

using namespace slo;
using namespace slo::bench;
using namespace slo::service;

namespace {

double wallMs(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

double percentile(std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

} // namespace

int main(int argc, char **argv) {
  unsigned Units = 24, Producers = 4, Readers = 4, OpsPerProducer = 60;
  unsigned DurationMs = 1500;
  uint64_t Seed = 42;
  std::string OutPath = "BENCH_service.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (std::strcmp(argv[I], "--tus") == 0) {
      if (const char *V = Next())
        Units = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--producers") == 0) {
      if (const char *V = Next())
        Producers = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--readers") == 0) {
      if (const char *V = Next())
        Readers = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--ops") == 0) {
      if (const char *V = Next())
        OpsPerProducer = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--duration-ms") == 0) {
      if (const char *V = Next())
        DurationMs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (std::strcmp(argv[I], "--seed") == 0) {
      if (const char *V = Next())
        Seed = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(argv[I], "--out") == 0) {
      if (const char *V = Next())
        OutPath = V;
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--tus N] [--producers N] "
                   "[--readers N] [--ops N] [--duration-ms D] [--seed S] "
                   "[--out FILE]\n");
      return 2;
    }
  }
  if (Units < 2)
    Units = 2;
  if (Producers < 1)
    Producers = 1;
  if (Readers < 1)
    Readers = 1;

  std::vector<FuzzTu> Corpus = generateFuzzCorpus(Seed, Units);
  std::vector<TuSource> TUs;
  for (const FuzzTu &Tu : Corpus)
    TUs.push_back({Tu.FileName, Tu.Program.render()});

  DaemonConfig Config;
  Config.Summary.Lint = false;
  Config.IngestQueueDepth = Producers; // Some shedding under full load.
  Config.RetryAfterMillis = 2;
  SummaryOptions OracleOpts = Config.Summary;
  AdvisoryDaemon Daemon(std::move(Config));

  auto Connect = [&]() -> int {
    int Fds[2];
    if (!makeSocketPair(Fds))
      reportFatalError("bench_service: socketpair failed");
    if (!Daemon.adoptConnection(Fds[0]))
      reportFatalError("bench_service: daemon refused a connection");
    return Fds[1];
  };

  std::printf("bench_service: %zu TUs, %u producers x %u ops, %u readers x "
              "%u ms (seed %llu)\n",
              TUs.size(), Producers, OpsPerProducer, Readers, DurationMs,
              static_cast<unsigned long long>(Seed));

  //===--------------------------------------------------------------------===//
  // Phase 1: ingest latency under N producers
  //===--------------------------------------------------------------------===//
  std::vector<std::vector<double>> LatPerProducer(Producers);
  std::atomic<uint64_t> Retries{0};
  std::atomic<unsigned> IngestFailures{0};
  auto IngestT0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    for (unsigned P = 0; P < Producers; ++P) {
      Threads.emplace_back([&, P] {
        ServiceClient C(Connect(), 30000);
        LatPerProducer[P].reserve(OpsPerProducer);
        for (unsigned I = 0; I < OpsPerProducer; ++I) {
          const TuSource &Tu = TUs[(P + I * Producers) % TUs.size()];
          unsigned R = 0;
          auto T0 = std::chrono::steady_clock::now();
          ServiceReply Reply =
              C.putWithRetry(Opcode::PutSource,
                             encodePutSource(Tu.Name, Tu.Source), 1000, &R);
          LatPerProducer[P].push_back(wallMs(T0));
          Retries += R;
          if (!Reply.ok())
            ++IngestFailures;
        }
      });
    }
    for (auto &T : Threads)
      T.join();
  }
  double IngestWallMs = wallMs(IngestT0);
  if (IngestFailures.load())
    reportFatalError("bench_service: ingest failures under load");

  std::vector<double> Lat;
  for (const auto &L : LatPerProducer)
    Lat.insert(Lat.end(), L.begin(), L.end());
  std::sort(Lat.begin(), Lat.end());
  double P50 = percentile(Lat, 0.50);
  double P99 = percentile(Lat, 0.99);
  uint64_t IngestOps = Lat.size();

  //===--------------------------------------------------------------------===//
  // Phase 2: advice QPS under M readers
  //===--------------------------------------------------------------------===//
  std::atomic<uint64_t> AdviceOk{0};
  std::atomic<unsigned> AdviceFailures{0};
  auto AdviceT0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    for (unsigned R = 0; R < Readers; ++R) {
      Threads.emplace_back([&] {
        ServiceClient C(Connect(), 30000);
        auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(DurationMs);
        while (std::chrono::steady_clock::now() < Deadline) {
          ServiceReply Reply = C.getAdvice(false);
          if (Reply.Transport && Reply.Op == Opcode::Advice)
            ++AdviceOk;
          else
            ++AdviceFailures;
        }
      });
    }
    for (auto &T : Threads)
      T.join();
  }
  double AdviceWallMs = wallMs(AdviceT0);
  if (AdviceFailures.load())
    reportFatalError("bench_service: advice failures under load");
  double Qps =
      AdviceWallMs > 0
          ? static_cast<double>(AdviceOk.load()) / (AdviceWallMs / 1000.0)
          : 0.0;

  //===--------------------------------------------------------------------===//
  // The invariant: serve equals oneshot, byte for byte
  //===--------------------------------------------------------------------===//
  std::sort(TUs.begin(), TUs.end(),
            [](const TuSource &A, const TuSource &B) { return A.Name < B.Name; });
  IncrementalOptions O;
  O.Summary = OracleOpts;
  IncrementalResult Oracle = runIncrementalAdvice(TUs, O);
  if (!Oracle.Ok)
    reportFatalError("bench_service: oracle corpus failed to compile");

  ServiceClient C(Connect(), 30000);
  ServiceReply Served = C.getAdvice(false);
  bool Identical = Served.Transport && Served.Op == Opcode::Advice &&
                   Served.Text == Oracle.AdviceText;
  Daemon.stop();

  std::printf("  ingest  %llu ops in %.1f ms: p50 %.3f ms, p99 %.3f ms, "
              "%llu retries\n",
              static_cast<unsigned long long>(IngestOps), IngestWallMs, P50,
              P99, static_cast<unsigned long long>(Retries.load()));
  std::printf("  advice  %llu requests in %.1f ms: %.1f qps\n",
              static_cast<unsigned long long>(AdviceOk.load()), AdviceWallMs,
              Qps);
  std::printf("  advice vs oneshot: %s\n",
              Identical ? "identical" : "DIVERGED");

  std::string Json;
  Json += "{\n";
  Json += "  \"bench\": \"service\",\n";
  Json += "  \"tus\": " + std::to_string(TUs.size()) + ",\n";
  Json += "  \"seed\": " + std::to_string(Seed) + ",\n";
  Json += "  \"producers\": " + std::to_string(Producers) + ",\n";
  Json += "  \"readers\": " + std::to_string(Readers) + ",\n";
  Json += "  \"ingest_ops\": " + std::to_string(IngestOps) + ",\n";
  Json += "  \"ingest_wall_ms\": " + std::to_string(IngestWallMs) + ",\n";
  Json += "  \"ingest_p50_ms\": " + std::to_string(P50) + ",\n";
  Json += "  \"ingest_p99_ms\": " + std::to_string(P99) + ",\n";
  Json += "  \"ingest_retries\": " + std::to_string(Retries.load()) + ",\n";
  Json += "  \"advice_requests\": " + std::to_string(AdviceOk.load()) + ",\n";
  Json += "  \"advice_wall_ms\": " + std::to_string(AdviceWallMs) + ",\n";
  Json += "  \"advice_qps\": " + std::to_string(Qps) + ",\n";
  Json += std::string("  \"advice_identical\": ") +
          (Identical ? "true" : "false") + "\n";
  Json += "}\n";
  writeTextFile(OutPath, Json);
  std::printf("wrote %s\n", OutPath.c_str());

  // Smoke gate: byte divergence is wrong regardless of throughput.
  return Identical ? 0 : 1;
}
