//===- bench/bench_case_studies.cpp - The §3.4 case studies ---------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper §3.4 ("Experiences"):
//  1. A SPEC2006 C++ benchmark had a hot structure larger than an L2
//     cache line whose four hot fields were scattered; grouping them
//     (found identically by the PBO and ISPBO affinity graphs) gave
//     +2.5%.
//  2. A SPEC2006 C benchmark dominated by three loops over a two-field
//     record gained almost 40% from peeling.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

namespace {

/// Case 1: group the four scattered hot fields by forcing a reorder-only
/// split plan (no cold part, hot fields first), exactly the source-level
/// change the paper's engineers made from the advisor's output.
void caseHotStruct() {
  const Workload &W = caseStudyHotStruct();
  Built Base = buildWorkload(W);
  RunResult BaseRun = runWith(*Base.M, W.RefParams);

  Built B = buildWorkload(W);
  RecordType *Big = B.Ctx->getTypes().lookupRecord("big");
  LegalityResult Legal = analyzeLegality(*B.M);

  // Verify first that PBO and ISPBO affinity graphs identify the same
  // four hot fields (the paper's observation).
  FeedbackFile Train;
  runWith(*B.M, W.TrainParams, &Train);
  auto HotFieldsOf = [&](WeightScheme S) {
    SchemeInputs In;
    In.M = B.M.get();
    In.TrainProfile = &Train;
    FieldStatsResult Stats = computeSchemeFieldStats(S, In);
    std::vector<double> Rel = Stats.get(Big)->relativeHotness();
    std::vector<std::string> Hot;
    for (unsigned F = 0; F < Big->getNumFields(); ++F)
      if (Rel[F] > 50.0)
        Hot.push_back(Big->getField(F).Name);
    return Hot;
  };
  std::vector<std::string> PboHot = HotFieldsOf(WeightScheme::PBO);
  std::vector<std::string> IspboHot = HotFieldsOf(WeightScheme::ISPBO);
  std::printf("Case 1: >cache-line struct with scattered hot fields\n");
  std::printf("  PBO affinity graph's hot fields  :");
  for (const std::string &N : PboHot)
    std::printf(" %s", N.c_str());
  std::printf("\n  ISPBO affinity graph's hot fields:");
  for (const std::string &N : IspboHot)
    std::printf(" %s", N.c_str());
  std::printf("\n  identical: %s (paper: 'the exact same 4 fields')\n",
              PboHot == IspboHot ? "yes" : "NO");

  // Group the hot fields at the front (reorder-only plan).
  TypePlan Plan;
  Plan.Rec = Big;
  Plan.Kind = TransformKind::Split;
  for (const std::string &N : PboHot)
    Plan.HotFields.push_back(Big->findField(N)->Index);
  // The remaining fields keep their declaration order behind the group.
  for (unsigned F = 0; F < Big->getNumFields(); ++F) {
    const std::string &Name = Big->getField(F).Name;
    bool IsHot = false;
    for (const std::string &H : PboHot)
      IsHot |= H == Name;
    if (!IsHot)
      Plan.HotFields.push_back(F);
  }
  Plan.Reason = "grouping hot fields (case study)";
  applyPlans(*B.M, {Plan}, Legal);

  RunResult Opt = runWith(*B.M, W.RefParams);
  requireSameOutput(BaseRun, Opt, "case study 1");
  std::printf("  performance after grouping: %+.1f%%  (paper: +2.5%%)\n\n",
              perfPercent(BaseRun.Cycles, Opt.Cycles));
}

/// Case 2: the two-field record peel.
void caseTwoField() {
  const Workload &W = caseStudyTwoField();
  Built Base = buildWorkload(W);
  RunResult BaseRun = runWith(*Base.M, W.RefParams);

  Built B = buildWorkload(W);
  PipelineOptions Opts;
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts);
  RunResult Opt = runWith(*B.M, W.RefParams);
  requireSameOutput(BaseRun, Opt, "case study 2");

  std::printf("Case 2: three loops over a two-field record\n");
  for (const std::string &Line : P.Summary.Log)
    std::printf("  %s\n", Line.c_str());
  std::printf("  performance after peeling: %+.1f%%  (paper: almost "
              "+40%%, more with\n  further unroll/hint tuning)\n",
              perfPercent(BaseRun.Cycles, Opt.Cycles));
}

} // namespace

int main() {
  std::printf("Paper §3.4 case studies\n\n");
  caseHotStruct();
  caseTwoField();
  return 0;
}
