//===- bench/bench_table1_legality.cpp - Reproduces Table 1 ---------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Table 1: "Types and transformable types, with and without CSTF,
// CSTT, ATKN". For every benchmark: the total number of record types,
// how many pass the practical legality tests, how many the points-to
// refinement actually proves legal, and how many pass when the three
// cast/address tests are blanket-relaxed (the paper's optimistic upper
// bound for a field-sensitive points-to analysis). By construction
// Legal <= Proven <= Relax; the harness aborts if a run ever violates
// the inclusion.
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "analysis/PointsTo.h"
#include "bench/BenchUtils.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace slo;
using namespace slo::bench;

namespace {

bool contains(const std::vector<RecordType *> &Set, RecordType *R) {
  return std::find(Set.begin(), Set.end(), R) != Set.end();
}

/// Aborts unless Inner is a subset of Outer.
void requireSubset(const std::vector<RecordType *> &Inner,
                   const std::vector<RecordType *> &Outer,
                   const char *InnerName, const char *OuterName,
                   const std::string &Workload) {
  for (RecordType *R : Inner) {
    if (!contains(Outer, R)) {
      std::fprintf(stderr,
                   "FATAL: %s: type '%s' is in the %s set but not in the "
                   "%s set\n",
                   Workload.c_str(), R->getRecordName().c_str(), InnerName,
                   OuterName);
      std::exit(1);
    }
  }
}

/// Per-workload measurements, computed concurrently and reduced in
/// workload order so the table and the sample-diagnostic selection stay
/// deterministic.
struct LegalityRow {
  unsigned Types = 0;
  unsigned NumLegal = 0;
  unsigned NumProven = 0;
  unsigned NumRelax = 0;
  std::string SampleJson; // First discharge diagnostic, if any.
};

} // namespace

int main() {
  std::printf("Table 1: types and transformable types, with and without "
              "CSTF, CSTT, ATKN\n");
  std::printf("(paper values in parentheses; Proven is this "
              "implementation's points-to refinement)\n\n");
  std::printf("%-12s %11s %13s %7s %8s %7s %13s %7s\n", "Benchmark",
              "Types", "Legal", "%", "Proven", "%", "Relax", "%");
  std::printf("%s\n", std::string(86, '-').c_str());

  const std::vector<Workload> &Workloads = allWorkloads();
  std::vector<LegalityRow> Rows =
      parallelMap(Workloads.size(), [&](size_t I) -> LegalityRow {
        const Workload &W = Workloads[I];
        Built B = buildWorkload(W);
        LegalityResult Legal = analyzeLegality(*B.M);
        PointsToResult PT = analyzePointsTo(*B.M);
        DiagnosticEngine Diags;
        RefinementResult Refined = refineLegality(*B.M, Legal, PT, &Diags);

        std::vector<RecordType *> LegalSet = Legal.legalTypes(false);
        std::vector<RecordType *> RelaxSet = Legal.legalTypes(true);
        std::vector<RecordType *> ProvenSet = Refined.provenTypes();
        requireSubset(LegalSet, ProvenSet, "Legal", "Proven", W.Name);
        requireSubset(ProvenSet, RelaxSet, "Proven", "Relax", W.Name);

        LegalityRow R;
        R.Types = static_cast<unsigned>(Legal.types().size());
        R.NumLegal = static_cast<unsigned>(LegalSet.size());
        R.NumProven = static_cast<unsigned>(ProvenSet.size());
        R.NumRelax = static_cast<unsigned>(RelaxSet.size());
        if (R.NumProven > R.NumLegal) {
          for (const Diagnostic &D : Diags.all()) {
            if (D.Severity == DiagSeverity::Remark && !D.Fact.empty() &&
                D.Code != "PROVEN") {
              R.SampleJson = D.renderJson();
              break;
            }
          }
        }
        return R;
      });

  double SumLegalPct = 0.0, SumProvenPct = 0.0, SumRelaxPct = 0.0;
  unsigned N = 0;
  // One discharge diagnostic from the first workload (in table order)
  // where Proven > Legal, printed as JSON below the table.
  std::string SampleWorkload;
  std::string SampleJson;
  for (size_t I = 0; I < Workloads.size(); ++I) {
    const Workload &W = Workloads[I];
    const LegalityRow &R = Rows[I];
    double LegalPct = 100.0 * R.NumLegal / R.Types;
    double ProvenPct = 100.0 * R.NumProven / R.Types;
    double RelaxPct = 100.0 * R.NumRelax / R.Types;
    SumLegalPct += LegalPct;
    SumProvenPct += ProvenPct;
    SumRelaxPct += RelaxPct;
    ++N;
    std::printf("%-12s %4u (%4u) %6u (%4u) %6.1f %8u %6.1f %6u (%4u) "
                "%6.1f\n",
                W.Name.c_str(), R.Types, W.Paper.Types, R.NumLegal,
                W.Paper.Legal, LegalPct, R.NumProven, ProvenPct,
                R.NumRelax, W.Paper.Relax, RelaxPct);
    if (SampleJson.empty() && !R.SampleJson.empty()) {
      SampleWorkload = W.Name;
      SampleJson = R.SampleJson;
    }
  }
  std::printf("%s\n", std::string(86, '-').c_str());
  std::printf("%-12s %11s %13s %6.1f %8s %6.1f %13s %6.1f\n", "Average:",
              "", "", SumLegalPct / N, "", SumProvenPct / N, "",
              SumRelaxPct / N);
  std::printf("\npaper averages: legal 20.9%%, relaxed 65.7%%\n");

  if (!SampleJson.empty()) {
    std::printf("\nsample discharge diagnostic (%s):\n%s\n",
                SampleWorkload.c_str(), SampleJson.c_str());
  } else {
    std::fprintf(stderr, "FATAL: no workload had Proven > Legal with a "
                         "discharge diagnostic\n");
    return 1;
  }
  return 0;
}
