//===- bench/bench_table1_legality.cpp - Reproduces Table 1 ---------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Table 1: "Types and transformable types, with and without CSTF,
// CSTT, ATKN". For every benchmark: the total number of record types,
// how many pass the practical legality tests, and how many pass when the
// three cast/address tests are relaxed (the paper's upper bound for a
// field-sensitive points-to analysis).
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"
#include "bench/BenchUtils.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

int main() {
  std::printf("Table 1: types and transformable types, with and without "
              "CSTF, CSTT, ATKN\n");
  std::printf("(paper values in parentheses)\n\n");
  std::printf("%-12s %11s %13s %7s %13s %7s\n", "Benchmark", "Types",
              "Legal", "%", "Relax", "%");
  std::printf("%s\n", std::string(70, '-').c_str());

  double SumLegalPct = 0.0, SumRelaxPct = 0.0;
  unsigned N = 0;
  for (const Workload &W : allWorkloads()) {
    Built B = buildWorkload(W);
    LegalityResult Legal = analyzeLegality(*B.M);
    unsigned Types = static_cast<unsigned>(Legal.types().size());
    unsigned NumLegal =
        static_cast<unsigned>(Legal.legalTypes(false).size());
    unsigned NumRelax =
        static_cast<unsigned>(Legal.legalTypes(true).size());
    double LegalPct = 100.0 * NumLegal / Types;
    double RelaxPct = 100.0 * NumRelax / Types;
    SumLegalPct += LegalPct;
    SumRelaxPct += RelaxPct;
    ++N;
    std::printf("%-12s %4u (%4u) %6u (%4u) %6.1f %6u (%4u) %6.1f\n",
                W.Name.c_str(), Types, W.Paper.Types, NumLegal,
                W.Paper.Legal, LegalPct, NumRelax, W.Paper.Relax,
                RelaxPct);
  }
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("%-12s %11s %13s %6.1f %13s %6.1f\n", "Average:", "", "",
              SumLegalPct / N, "", SumRelaxPct / N);
  std::printf("\npaper averages: legal 20.9%%, relaxed 65.7%%\n");
  return 0;
}
