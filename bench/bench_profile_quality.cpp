//===- bench/bench_profile_quality.cpp - Sampled-profile quality ----------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The paper collects its d-cache profiles with HP Caliper, a sampling
// profiler ("data is acquired via sampling of the performance monitoring
// unit", §3.1) — so the advice the framework gives rests on sampled,
// skid-displaced estimates, not exact counts. This harness quantifies
// how much profile quality that costs: for every workload it sweeps the
// sampling period and reports, per period,
//
//   tau            Kendall tau-b rank agreement between the sampled and
//                  the exact per-field miss counts,
//   topk_overlap   fraction of the exact top-5 hottest fields that the
//                  sampled profile also ranks in its top 5,
//   advice_stable  whether planning from the sampled profile (DMISS)
//                  selects the *identical* transform set as planning
//                  from the exact profile, and
//   opt_misses     first-level misses of the resulting transformed build
//                  on the reference input.
//
// Each sampled profile is the merge of two collection runs with
// different seeds (the paper's multi-run accumulation), round-tripped
// through the feedback text format onto a fresh compilation — the same
// path a real cross-process collection takes. Everything (cycles,
// sampling jitter, skid) is deterministic for fixed seeds, so the
// BENCH_profile_quality.json artifact is byte-stable and can be gated
// strictly by scripts/bench_compare.py. The gate's contract: at the
// default period (61) the advice is stable on every workload.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "observability/SampledPmu.h"
#include "profile/FeedbackIO.h"
#include "support/Format.h"

#include <cmath>
#include <cstdio>
#include <set>

using namespace slo;
using namespace slo::bench;

namespace {

/// The sweep. kDefaultPeriod is the documented collection default
/// (slo_driver --sample-period); the gate enforces advice stability
/// there, the other points show where quality degrades. Collection runs
/// use zero skid, like a skid-corrected profiler: uncorrected skid
/// (slo_driver --sample-skid) lands a third of samples on neighboring
/// fields per skid step and wrecks rank agreement even at period 1.
const uint64_t kPeriods[] = {1, 16, 61, 256, 2048};
constexpr uint64_t kDefaultPeriod = 61;
constexpr unsigned kSkid = 0;
constexpr unsigned kRunsMerged = 2;

/// Per-field miss counts keyed symbolically, so exact and sampled
/// profiles collected on different compilations compare.
using FieldKey = std::pair<std::string, unsigned>;
using MissMap = std::map<FieldKey, uint64_t>;

MissMap missByField(const FeedbackFile &FB) {
  MissMap Out;
  for (const auto &KV : FB.allFieldStats())
    if (KV.second.Misses)
      Out[{KV.first.first->getRecordName(), KV.first.second}] +=
          KV.second.Misses;
  return Out;
}

/// Kendall tau-b over the union of both key sets (a field one side never
/// sampled counts as 0 there). 1.0 when there are no discordant or
/// tied-breaking pairs — including the degenerate no-data case.
double kendallTau(const MissMap &A, const MissMap &B) {
  std::set<FieldKey> Keys;
  for (const auto &KV : A)
    Keys.insert(KV.first);
  for (const auto &KV : B)
    Keys.insert(KV.first);
  std::vector<std::pair<uint64_t, uint64_t>> V;
  for (const FieldKey &K : Keys) {
    auto IA = A.find(K);
    auto IB = B.find(K);
    V.push_back({IA == A.end() ? 0 : IA->second,
                 IB == B.end() ? 0 : IB->second});
  }
  long long Concordant = 0, Discordant = 0, TiesA = 0, TiesB = 0;
  for (size_t I = 0; I < V.size(); ++I)
    for (size_t J = I + 1; J < V.size(); ++J) {
      int DX = V[I].first < V[J].first ? -1 : V[I].first > V[J].first ? 1 : 0;
      int DY =
          V[I].second < V[J].second ? -1 : V[I].second > V[J].second ? 1 : 0;
      if (DX == 0 && DY == 0)
        continue;
      if (DX == 0)
        ++TiesA;
      else if (DY == 0)
        ++TiesB;
      else if (DX == DY)
        ++Concordant;
      else
        ++Discordant;
    }
  double Denom =
      std::sqrt(static_cast<double>(Concordant + Discordant + TiesA) *
                static_cast<double>(Concordant + Discordant + TiesB));
  return Denom > 0.0
             ? static_cast<double>(Concordant - Discordant) / Denom
             : 1.0;
}

/// The hottest-by-misses fields, count ties broken by key so the set is
/// deterministic.
std::set<FieldKey> topFields(const MissMap &M, size_t K) {
  std::vector<std::pair<uint64_t, FieldKey>> V;
  for (const auto &KV : M)
    V.push_back({KV.second, KV.first});
  std::sort(V.begin(), V.end(), [](const auto &L, const auto &R) {
    return L.first != R.first ? L.first > R.first : L.second < R.second;
  });
  if (V.size() > K)
    V.resize(K);
  std::set<FieldKey> Out;
  for (const auto &P : V)
    Out.insert(P.second);
  return Out;
}

double topKOverlap(const MissMap &Exact, const MissMap &Sampled) {
  std::set<FieldKey> Ref = topFields(Exact, 5);
  if (Ref.empty())
    return 1.0;
  std::set<FieldKey> Got = topFields(Sampled, 5);
  size_t Hit = 0;
  for (const FieldKey &K : Ref)
    Hit += Got.count(K);
  return static_cast<double>(Hit) / static_cast<double>(Ref.size());
}

/// Canonical description of the advice. Two granularities:
///
///   Advice     the transform set — which records get which transform
///              kind, which fields are removed as dead/unused, and the
///              peel grouping. This is what the paper's advisor reports
///              and what the stability gate enforces.
///   Partition  additionally the exact hot/cold membership of every
///              split. Membership of fields sitting near the T_s
///              threshold is a tiebreak sampling noise may flip, so this
///              stricter signature is reported, not gated.
///
/// Field order within a part is excluded from both: reorder-by-hotness
/// sorts near-equally-hot fields whose relative order is not advice.
enum class SignatureKind { Advice, Partition };

std::string planSignature(const std::vector<TypePlan> &Plans,
                          SignatureKind Kind) {
  std::vector<std::string> Parts;
  for (const TypePlan &P : Plans) {
    if (P.isNoop())
      continue;
    std::string S = P.Rec->getRecordName();
    S += '=';
    S += transformKindName(P.Kind);
    auto List = [&S](const char *Tag, std::vector<unsigned> V) {
      std::sort(V.begin(), V.end());
      S += Tag;
      for (unsigned F : V) {
        S += std::to_string(F);
        S += ',';
      }
    };
    // Whether a cold part (and thus a link pointer) exists is advice;
    // which borderline fields it contains is partition detail.
    S += P.ColdFields.empty() ? " link:no" : " link:yes";
    if (Kind == SignatureKind::Partition)
      List(" cold:", P.ColdFields);
    std::vector<std::vector<unsigned>> Groups = P.PeelGroups;
    for (std::vector<unsigned> &G : Groups)
      std::sort(G.begin(), G.end());
    std::sort(Groups.begin(), Groups.end());
    S += " peel:";
    for (const std::vector<unsigned> &G : Groups) {
      for (unsigned F : G) {
        S += std::to_string(F);
        S += ',';
      }
      S += ';';
    }
    List(" dead:", P.DeadFields);
    List(" unused:", P.UnusedFields);
    Parts.push_back(std::move(S));
  }
  std::sort(Parts.begin(), Parts.end());
  std::string Sig;
  for (const std::string &P : Parts) {
    Sig += P;
    Sig += '\n';
  }
  return Sig;
}

/// Collection seeds must be deterministic (no clocks) yet decorrelated
/// across (workload, period, run); SampledPmu::split()s its jitter and
/// skid streams off whatever we hand it.
uint64_t collectionSeed(size_t WorkloadIdx, uint64_t Period, unsigned Run) {
  return 0x510ACA11ull ^ (WorkloadIdx * 0x9E3779B97F4A7C15ull) ^
         (Period << 8) ^ Run;
}

/// One sampled collection run on the train input: the serialized profile
/// plus how many miss samples the PMU actually took.
struct Collected {
  std::string Text;
  uint64_t MissSamples = 0;
};

Collected collectSampled(const Workload &W, uint64_t Period, uint64_t Seed) {
  Built B = buildWorkload(W);
  FeedbackFile FB;
  SampledPmuConfig Cfg;
  Cfg.Period = Period;
  Cfg.Skid = kSkid;
  Cfg.Seed = Seed;
  SampledPmu Pmu(Cfg);
  CounterRegistry Counters;
  RunHooks Hooks;
  Hooks.Counters = &Counters;
  Hooks.Pmu = &Pmu;
  runWith(*B.M, W.TrainParams, &FB, Hooks);
  Collected R;
  R.Text = serializeFeedback(*B.M, FB);
  std::map<std::string, uint64_t> Snap = Counters.snapshot();
  auto It = Snap.find("profile.samples_miss");
  R.MissSamples = It == Snap.end() ? 0 : It->second;
  return R;
}

/// Merges the serialized collection runs onto a fresh compilation, plans
/// and transforms with DMISS weights, and measures the result on the
/// reference input.
struct Planned {
  std::string AdviceSig;
  std::string PartitionSig;
  unsigned Transformed = 0;
  uint64_t OptMisses = 0;
  MissMap Misses;
};

Planned planFromProfiles(const Workload &W,
                         const std::vector<std::string> &Texts,
                         const RunResult &BaseRun) {
  Built B = buildWorkload(W);
  FeedbackFile Merged;
  for (const std::string &T : Texts) {
    FeedbackFile One;
    FeedbackMatchResult MR = deserializeFeedback(*B.M, T, One);
    if (!MR.Ok)
      reportFatalError("profile round-trip rejected for " + W.Name + ": " +
                       MR.Error);
    Merged.merge(One);
  }
  Planned R;
  R.Misses = missByField(Merged);
  PipelineOptions Opts;
  Opts.Scheme = WeightScheme::DMISS;
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts, &Merged);
  RunResult Opt = runWith(*B.M, W.RefParams);
  requireSameOutput(BaseRun, Opt, W.Name);
  R.AdviceSig = planSignature(P.Plans, SignatureKind::Advice);
  R.PartitionSig = planSignature(P.Plans, SignatureKind::Partition);
  R.Transformed = P.Summary.TypesTransformed;
  R.OptMisses = Opt.FirstLevelMisses;
  return R;
}

struct Row {
  std::string Name;
  uint64_t Period;
  bool AdviceStable;
  bool PartitionStable;
  double Tau;
  double TopK;
  uint64_t MissSamples;
  uint64_t OptMisses;
  uint64_t ExactOptMisses;
  uint64_t BaseMisses;
  unsigned Transformed;
};

} // namespace

int main() {
  std::printf("Profile quality: sampled (Caliper stand-in) vs exact "
              "d-cache profiles\n");
  std::printf("(DMISS planning; skid %u, %u merged runs per period; "
              "default period %llu)\n\n",
              kSkid, kRunsMerged,
              static_cast<unsigned long long>(kDefaultPeriod));
  std::printf("%-12s %7s %6s %6s %7s %5s %10s %12s %7s\n", "Benchmark",
              "period", "tau", "top5", "advice", "part", "samples",
              "opt_misses", "vs_ex");
  std::printf("%s\n", std::string(80, '-').c_str());

  const std::vector<Workload> &Workloads = allWorkloads();
  std::vector<std::vector<Row>> PerWorkload = parallelMap(
      Workloads.size(), [&](size_t I) -> std::vector<Row> {
        const Workload &W = Workloads[I];
        Built Base = buildWorkload(W);
        RunResult BaseRun = runWith(*Base.M, W.RefParams);

        // The exact reference: one uninstrumented-PMU collection run,
        // round-tripped through the same text format so both sides of
        // every comparison crossed identical machinery.
        Built Ex = buildWorkload(W);
        FeedbackFile Exact;
        runWith(*Ex.M, W.TrainParams, &Exact);
        std::string ExactText = serializeFeedback(*Ex.M, Exact);
        Planned Ref = planFromProfiles(W, {ExactText}, BaseRun);

        std::vector<Row> Rows;
        for (uint64_t Period : kPeriods) {
          std::vector<std::string> Texts;
          uint64_t MissSamples = 0;
          for (unsigned Run = 0; Run < kRunsMerged; ++Run) {
            Collected C =
                collectSampled(W, Period, collectionSeed(I, Period, Run));
            Texts.push_back(std::move(C.Text));
            MissSamples += C.MissSamples;
          }
          Planned S = planFromProfiles(W, Texts, BaseRun);
          Row R;
          R.Name = W.Name;
          R.Period = Period;
          R.AdviceStable = S.AdviceSig == Ref.AdviceSig;
          R.PartitionStable = S.PartitionSig == Ref.PartitionSig;
          R.Tau = kendallTau(Ref.Misses, S.Misses);
          R.TopK = topKOverlap(Ref.Misses, S.Misses);
          R.MissSamples = MissSamples;
          R.OptMisses = S.OptMisses;
          R.ExactOptMisses = Ref.OptMisses;
          R.BaseMisses = BaseRun.FirstLevelMisses;
          R.Transformed = S.Transformed;
          Rows.push_back(std::move(R));
        }
        return Rows;
      });

  std::string Json = formatString(
      "{\n  \"bench\": \"profile_quality\",\n"
      "  \"default_period\": %llu,\n  \"skid\": %u,\n"
      "  \"runs_merged\": %u,\n  \"rows\": [\n",
      static_cast<unsigned long long>(kDefaultPeriod), kSkid, kRunsMerged);
  bool FirstJsonRow = true;
  unsigned UnstableAtDefault = 0;
  for (const std::vector<Row> &Rows : PerWorkload) {
    for (const Row &R : Rows) {
      if (R.Period == kDefaultPeriod && !R.AdviceStable)
        ++UnstableAtDefault;
      std::printf("%-12s %7llu %6.3f %6.2f %7s %5s %10llu %12llu %7s\n",
                  R.Name.c_str(), static_cast<unsigned long long>(R.Period),
                  R.Tau, R.TopK, R.AdviceStable ? "yes" : "NO",
                  R.PartitionStable ? "yes" : "no",
                  static_cast<unsigned long long>(R.MissSamples),
                  static_cast<unsigned long long>(R.OptMisses),
                  R.OptMisses == R.ExactOptMisses ? "=" : "!=");

      if (!FirstJsonRow)
        Json += ",\n";
      FirstJsonRow = false;
      Json += formatString(
          "    {\"benchmark\": \"%s\", \"period\": %llu, "
          "\"advice_stable\": %s, \"partition_stable\": %s, "
          "\"tau\": %.4f, "
          "\"topk_overlap\": %.4f, \"miss_samples\": %llu, "
          "\"opt_misses\": %llu, \"exact_opt_misses\": %llu, "
          "\"base_misses\": %llu, \"transformed\": %u}",
          jsonEscape(R.Name).c_str(),
          static_cast<unsigned long long>(R.Period),
          R.AdviceStable ? "true" : "false",
          R.PartitionStable ? "true" : "false", R.Tau, R.TopK,
          static_cast<unsigned long long>(R.MissSamples),
          static_cast<unsigned long long>(R.OptMisses),
          static_cast<unsigned long long>(R.ExactOptMisses),
          static_cast<unsigned long long>(R.BaseMisses), R.Transformed);
    }
  }
  Json += "\n  ]\n}\n";
  writeTextFile("BENCH_profile_quality.json", Json);

  std::printf("%s\n", std::string(80, '-').c_str());
  std::printf("advice unstable at default period %llu: %u workload(s)\n",
              static_cast<unsigned long long>(kDefaultPeriod),
              UnstableAtDefault);
  std::printf("\nwrote BENCH_profile_quality.json (%u worker threads)\n",
              benchParallelism());
  return 0;
}
