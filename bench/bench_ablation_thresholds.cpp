//===- bench/bench_ablation_thresholds.cpp - T_s and E sweeps -------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The paper notes that "T_s and the scaling factor E are subject to
// continuous tweaking" (§2.4). This ablation sweeps both knobs on the
// mcf workload: the splitting threshold T_s (how cold a field must be to
// be split out) under PBO, and the ISPBO separability exponent E, whose
// effect on the hotness histogram the paper approximates with raised
// back-edge probabilities (ISPBO.W).
//
//===----------------------------------------------------------------------===//

#include "advisor/Correlation.h"
#include "bench/BenchUtils.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

int main() {
  const Workload *W = findWorkload("181.mcf");
  Built Base = buildWorkload(*W);
  RunResult BaseRun = runWith(*Base.M, W->RefParams);

  std::printf("Ablation: splitting threshold T_s sweep (PBO weights, "
              "mcf)\n\n");
  std::printf("%8s %6s %6s %13s\n", "T_s [%]", "Tt", "S/D", "Performance");
  struct TsRow {
    unsigned Transformed = 0;
    unsigned SplitDead = 0;
    double Perf = 0.0;
  };
  const std::vector<double> TsValues = {0.5, 1.0, 3.0, 7.5, 15.0, 30.0};
  std::vector<TsRow> TsRows =
      parallelMap(TsValues.size(), [&](size_t I) -> TsRow {
        Built B = buildWorkload(*W);
        FeedbackFile Train;
        runWith(*B.M, W->TrainParams, &Train);
        PipelineOptions Opts;
        Opts.Scheme = WeightScheme::PBO;
        Opts.Planner.SplitThresholdPBO = TsValues[I];
        PipelineResult P = runStructLayoutPipeline(*B.M, Opts, &Train);
        RunResult R = runWith(*B.M, W->RefParams);
        requireSameOutput(BaseRun, R, "T_s sweep");
        return {P.Summary.TypesTransformed, P.Summary.FieldsSplitOrDead,
                perfPercent(BaseRun.Cycles, R.Cycles)};
      });
  for (size_t I = 0; I < TsValues.size(); ++I)
    std::printf("%8.1f %6u %6u %+12.1f%%\n", TsValues[I],
                TsRows[I].Transformed, TsRows[I].SplitDead,
                TsRows[I].Perf);
  std::printf("(paper default: 3%% with PBO, 7.5%% with ISPBO; very "
              "large T_s splits hot fields\nout and hurts, very small "
              "T_s leaves cold fields in)\n\n");

  // E sweep: how well does ISPBO with each exponent track the PBO
  // baseline hotness (the paper's correlation methodology), and what
  // does the resulting split achieve?
  std::printf("Ablation: ISPBO exponent E sweep (mcf)\n\n");
  std::printf("%6s %10s %6s %13s\n", "E", "r vs PBO", "S/D",
              "Performance");
  // The PBO baseline hotness for the correlation.
  std::vector<double> Baseline;
  {
    Built B = buildWorkload(*W);
    FeedbackFile Train;
    runWith(*B.M, W->TrainParams, &Train);
    SchemeInputs In;
    In.M = B.M.get();
    In.TrainProfile = &Train;
    FieldStatsResult S = computeSchemeFieldStats(WeightScheme::PBO, In);
    Baseline =
        S.get(B.Ctx->getTypes().lookupRecord("node"))->relativeHotness();
  }
  struct ERow {
    double Corr = 0.0;
    unsigned SplitDead = 0;
    double Perf = 0.0;
  };
  const std::vector<double> EValues = {1.0, 1.25, 1.5, 2.0, 3.0};
  std::vector<ERow> ERows =
      parallelMap(EValues.size(), [&](size_t I) -> ERow {
        Built B = buildWorkload(*W);
        SchemeInputs In;
        In.M = B.M.get();
        In.Exponent = EValues[I];
        FieldStatsResult S =
            computeSchemeFieldStats(WeightScheme::ISPBO, In);
        std::vector<double> Rel =
            S.get(B.Ctx->getTypes().lookupRecord("node"))
                ->relativeHotness();
        double Corr = pearsonCorrelation(Baseline, Rel);

        PipelineOptions Opts;
        Opts.Scheme = WeightScheme::ISPBO;
        Opts.IspboExponent = EValues[I];
        PipelineResult P = runStructLayoutPipeline(*B.M, Opts);
        RunResult R = runWith(*B.M, W->RefParams);
        requireSameOutput(BaseRun, R, "E sweep");
        return {Corr, P.Summary.FieldsSplitOrDead,
                perfPercent(BaseRun.Cycles, R.Cycles)};
      });
  for (size_t I = 0; I < EValues.size(); ++I)
    std::printf("%6.2f %10.3f %6u %+12.1f%%\n", EValues[I], ERows[I].Corr,
                ERows[I].SplitDead, ERows[I].Perf);
  std::printf("(paper default E = 1.5: 'since S is either bigger or "
              "smaller than 1.0 the\nscaling improves the separability "
              "between hot and cold fields')\n");
  return 0;
}
