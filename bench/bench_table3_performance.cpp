//===- bench/bench_table3_performance.cpp - Reproduces Table 3 ------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Table 3: "Transformable/transformed types and performance
// impact". For every benchmark: whether a profile was used, the number
// of record types (T), transformed types (Tt), split-out plus dead
// fields (S/D), and the performance effect of the transformations on the
// reference input. Like the paper, mcf and moldyn are shown both with
// and without PBO to expose second-order effects.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

namespace {

struct Row {
  std::string Name;
  bool Pbo;
  unsigned Types;
  unsigned Transformed;
  unsigned SplitDead;
  double Perf;
  double PaperPerf;
  bool PaperKnown;
};

Row measure(const Workload &W, bool UsePbo, uint64_t BaseCycles,
            const RunResult &BaseRun) {
  Built B = buildWorkload(W);
  FeedbackFile Train;
  PipelineOptions Opts;
  if (UsePbo) {
    runWith(*B.M, W.TrainParams, &Train);
    Opts.Scheme = WeightScheme::PBO;
  } else {
    Opts.Scheme = WeightScheme::ISPBO;
  }
  PipelineResult P =
      runStructLayoutPipeline(*B.M, Opts, UsePbo ? &Train : nullptr);

  RunResult Opt = runWith(*B.M, W.RefParams);
  requireSameOutput(BaseRun, Opt, W.Name);

  Row R;
  R.Name = W.Name;
  R.Pbo = UsePbo;
  R.Types = static_cast<unsigned>(P.Legality.types().size());
  R.Transformed = P.Summary.TypesTransformed;
  R.SplitDead = P.Summary.FieldsSplitOrDead;
  R.Perf = perfPercent(BaseCycles, Opt.Cycles);
  R.PaperPerf = UsePbo ? W.Paper.PerfPbo : W.Paper.PerfNoPbo;
  R.PaperKnown = W.Paper.PerfKnown;
  return R;
}

} // namespace

int main() {
  std::printf("Table 3: transformable/transformed types and performance "
              "impact\n");
  std::printf("(reference inputs; performance = cycle improvement over "
              "the untransformed build)\n\n");
  std::printf("%-12s %-5s %4s %4s %5s %13s %10s\n", "Benchmark", "PBO",
              "T", "Tt", "S/D", "Performance", "(paper)");
  std::printf("%s\n", std::string(60, '-').c_str());

  for (const Workload &W : allWorkloads()) {
    // One baseline per benchmark.
    Built Base = buildWorkload(W);
    RunResult BaseRun = runWith(*Base.M, W.RefParams);

    // The paper shows both rows for mcf and moldyn; one row otherwise.
    bool BothModes = W.Name == "181.mcf" || W.Name == "moldyn";
    for (int UsePbo = 0; UsePbo <= (BothModes ? 1 : 0); ++UsePbo) {
      Row R = measure(W, UsePbo != 0, BaseRun.Cycles, BaseRun);
      char PaperBuf[32];
      if (R.PaperKnown)
        std::snprintf(PaperBuf, sizeof(PaperBuf), "(%+.1f%%)",
                      R.PaperPerf);
      else
        std::snprintf(PaperBuf, sizeof(PaperBuf), "(n/a)");
      std::printf("%-12s %-5s %4u %4u %5u %+12.1f%% %10s\n",
                  R.Name.c_str(), R.Pbo ? "yes" : "no", R.Types,
                  R.Transformed, R.SplitDead, R.Perf, PaperBuf);
    }
  }
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("paper: gains 16.7-17.3%% (mcf), 78.2%% (art), "
              "21.8-30.9%% (moldyn);\n"
              "       the other benchmarks range from -1.5%% (noise) to "
              "small gains\n");
  return 0;
}
