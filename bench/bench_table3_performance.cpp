//===- bench/bench_table3_performance.cpp - Reproduces Table 3 ------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Table 3: "Transformable/transformed types and performance
// impact". For every benchmark: whether a profile was used, the number
// of record types (T), transformed types (Tt), split-out plus dead
// fields (S/D), and the performance effect of the transformations on the
// reference input. Like the paper, mcf and moldyn are shown both with
// and without PBO to expose second-order effects.
//
// Workloads run concurrently on the shared harness pool (one
// Interpreter/CacheSim per task); rows are reduced in workload order, so
// the table and the BENCH_table3.json artifact are deterministic and
// per-workload cycle counts are identical to a serial run
// (SLO_BENCH_THREADS=1 forces one).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "examples/DriverUtils.h"
#include "support/Format.h"

#include <atomic>
#include <chrono>
#include <cstdio>

using namespace slo;
using namespace slo::bench;

namespace {

/// Host microseconds spent inside simulator runs, summed across the
/// worker pool. Compile/pipeline time is excluded on purpose: the
/// engine choice only moves simulation wall time, and this is the
/// number the bench_compare.py engine gate ratios.
std::atomic<uint64_t> SimMicros{0};

RunResult timedRun(const Module &M,
                   const std::map<std::string, int64_t> &Params,
                   FeedbackFile *Profile, const RunHooks &Hooks) {
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = runWith(M, Params, Profile, Hooks);
  SimMicros += std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
  return R;
}

struct Row {
  std::string Name;
  bool Pbo;
  unsigned Types;
  unsigned Transformed;
  unsigned SplitDead;
  uint64_t BaseCycles;
  uint64_t OptCycles;
  uint64_t BaseMisses; // First-level miss events, untransformed build.
  uint64_t OptMisses;  // Same, transformed build (what the gate watches).
  double Perf;
  double PaperPerf;
  bool PaperKnown;
};

Row measure(const Workload &W, bool UsePbo, const RunResult &BaseRun,
            Tracer *Trace) {
  Built B = buildWorkload(W);
  FeedbackFile Train;
  PipelineOptions Opts;
  Opts.Trace = Trace;
  if (UsePbo) {
    TraceSpan S(Trace, ("train/" + W.Name).c_str(), "workload");
    timedRun(*B.M, W.TrainParams, &Train, {Trace, nullptr, nullptr});
    Opts.Scheme = WeightScheme::PBO;
  } else {
    Opts.Scheme = WeightScheme::ISPBO;
  }
  PipelineResult P =
      runStructLayoutPipeline(*B.M, Opts, UsePbo ? &Train : nullptr);

  RunResult Opt;
  {
    TraceSpan S(Trace, ("opt-run/" + W.Name).c_str(), "workload");
    Opt = timedRun(*B.M, W.RefParams, nullptr, {Trace, nullptr, nullptr});
  }
  requireSameOutput(BaseRun, Opt, W.Name);

  Row R;
  R.Name = W.Name;
  R.Pbo = UsePbo;
  R.Types = static_cast<unsigned>(P.Legality.types().size());
  R.Transformed = P.Summary.TypesTransformed;
  R.SplitDead = P.Summary.FieldsSplitOrDead;
  R.BaseCycles = BaseRun.Cycles;
  R.OptCycles = Opt.Cycles;
  R.BaseMisses = BaseRun.FirstLevelMisses;
  R.OptMisses = Opt.FirstLevelMisses;
  R.Perf = perfPercent(BaseRun.Cycles, Opt.Cycles);
  R.PaperPerf = UsePbo ? W.Paper.PerfPbo : W.Paper.PerfNoPbo;
  R.PaperKnown = W.Paper.PerfKnown;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string V;
    if (driver::valuedFlag("--engine", argc, argv, I, V)) {
      if (!driver::parseEngineArg("--engine", V, benchEngine()))
        return 2;
    } else {
      std::fprintf(stderr,
                   "usage: bench_table3_performance [--engine=walker|vm]\n");
      return 2;
    }
  }

  std::printf("Table 3: transformable/transformed types and performance "
              "impact\n");
  std::printf("(reference inputs; performance = cycle improvement over "
              "the untransformed build)\n\n");
  std::printf("%-12s %-5s %4s %4s %5s %13s %10s\n", "Benchmark", "PBO",
              "T", "Tt", "S/D", "Performance", "(paper)");
  std::printf("%s\n", std::string(60, '-').c_str());

  const std::vector<Workload> &Workloads = allWorkloads();
  // One shared Tracer across all workers (record() is mutex-guarded);
  // its thread ids let chrome://tracing show the pool's schedule.
  Tracer Trace;
  // One task per benchmark: baseline run plus one row per mode. The
  // paper shows both PBO modes for mcf and moldyn; one row otherwise.
  std::vector<std::vector<Row>> PerWorkload = parallelMap(
      Workloads.size(), [&](size_t I) -> std::vector<Row> {
        const Workload &W = Workloads[I];
        Built Base = buildWorkload(W);
        RunResult BaseRun;
        {
          TraceSpan S(&Trace, ("base-run/" + W.Name).c_str(), "workload");
          BaseRun = timedRun(*Base.M, W.RefParams, nullptr,
                             {&Trace, nullptr, nullptr});
        }
        bool BothModes = W.Name == "181.mcf" || W.Name == "moldyn";
        std::vector<Row> Rows;
        for (int UsePbo = 0; UsePbo <= (BothModes ? 1 : 0); ++UsePbo)
          Rows.push_back(measure(W, UsePbo != 0, BaseRun, &Trace));
        return Rows;
      });

  double SimWallMs = static_cast<double>(SimMicros.load()) / 1000.0;
  std::string Json = formatString(
      "{\n  \"table\": \"table3\",\n  \"engine\": \"%s\",\n"
      "  \"sim_wall_ms\": %.3f,\n  \"rows\": [\n",
      benchEngineName(), SimWallMs);
  bool FirstJsonRow = true;
  for (const std::vector<Row> &Rows : PerWorkload) {
    for (const Row &R : Rows) {
      char PaperBuf[32];
      if (R.PaperKnown)
        std::snprintf(PaperBuf, sizeof(PaperBuf), "(%+.1f%%)",
                      R.PaperPerf);
      else
        std::snprintf(PaperBuf, sizeof(PaperBuf), "(n/a)");
      std::printf("%-12s %-5s %4u %4u %5u %+12.1f%% %10s\n",
                  R.Name.c_str(), R.Pbo ? "yes" : "no", R.Types,
                  R.Transformed, R.SplitDead, R.Perf, PaperBuf);

      if (!FirstJsonRow)
        Json += ",\n";
      FirstJsonRow = false;
      Json += formatString(
          "    {\"benchmark\": \"%s\", \"pbo\": %s, \"types\": %u, "
          "\"transformed\": %u, \"split_dead\": %u, "
          "\"base_cycles\": %llu, \"opt_cycles\": %llu, "
          "\"base_misses\": %llu, \"opt_misses\": %llu, "
          "\"perf_percent\": %.3f}",
          jsonEscape(R.Name).c_str(), R.Pbo ? "true" : "false", R.Types,
          R.Transformed, R.SplitDead,
          static_cast<unsigned long long>(R.BaseCycles),
          static_cast<unsigned long long>(R.OptCycles),
          static_cast<unsigned long long>(R.BaseMisses),
          static_cast<unsigned long long>(R.OptMisses), R.Perf);
    }
  }
  Json += "\n  ]\n}\n";
  writeTextFile("BENCH_table3.json", Json);
  writeTextFile("BENCH_table3_trace.json", Trace.renderChromeJson());

  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("paper: gains 16.7-17.3%% (mcf), 78.2%% (art), "
              "21.8-30.9%% (moldyn);\n"
              "       the other benchmarks range from -1.5%% (noise) to "
              "small gains\n");
  std::printf("\nengine=%s, %.1f ms of simulator wall time\n",
              benchEngineName(), SimWallMs);
  std::printf("wrote BENCH_table3.json and BENCH_table3_trace.json "
              "(%u worker threads)\n",
              benchParallelism());
  return 0;
}
