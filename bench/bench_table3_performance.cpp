//===- bench/bench_table3_performance.cpp - Reproduces Table 3 ------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Table 3: "Transformable/transformed types and performance
// impact". For every benchmark: whether a profile was used, the number
// of record types (T), transformed types (Tt), split-out plus dead
// fields (S/D), and the performance effect of the transformations on the
// reference input. Like the paper, mcf and moldyn are shown both with
// and without PBO to expose second-order effects.
//
// Workloads run concurrently on the shared harness pool (one
// Interpreter/CacheSim per task); rows are reduced in workload order, so
// the table and the BENCH_table3.json artifact are deterministic and
// per-workload cycle counts are identical to a serial run
// (SLO_BENCH_THREADS=1 forces one).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "support/Format.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

namespace {

struct Row {
  std::string Name;
  bool Pbo;
  unsigned Types;
  unsigned Transformed;
  unsigned SplitDead;
  uint64_t BaseCycles;
  uint64_t OptCycles;
  double Perf;
  double PaperPerf;
  bool PaperKnown;
};

Row measure(const Workload &W, bool UsePbo, uint64_t BaseCycles,
            const RunResult &BaseRun) {
  Built B = buildWorkload(W);
  FeedbackFile Train;
  PipelineOptions Opts;
  if (UsePbo) {
    runWith(*B.M, W.TrainParams, &Train);
    Opts.Scheme = WeightScheme::PBO;
  } else {
    Opts.Scheme = WeightScheme::ISPBO;
  }
  PipelineResult P =
      runStructLayoutPipeline(*B.M, Opts, UsePbo ? &Train : nullptr);

  RunResult Opt = runWith(*B.M, W.RefParams);
  requireSameOutput(BaseRun, Opt, W.Name);

  Row R;
  R.Name = W.Name;
  R.Pbo = UsePbo;
  R.Types = static_cast<unsigned>(P.Legality.types().size());
  R.Transformed = P.Summary.TypesTransformed;
  R.SplitDead = P.Summary.FieldsSplitOrDead;
  R.BaseCycles = BaseCycles;
  R.OptCycles = Opt.Cycles;
  R.Perf = perfPercent(BaseCycles, Opt.Cycles);
  R.PaperPerf = UsePbo ? W.Paper.PerfPbo : W.Paper.PerfNoPbo;
  R.PaperKnown = W.Paper.PerfKnown;
  return R;
}

} // namespace

int main() {
  std::printf("Table 3: transformable/transformed types and performance "
              "impact\n");
  std::printf("(reference inputs; performance = cycle improvement over "
              "the untransformed build)\n\n");
  std::printf("%-12s %-5s %4s %4s %5s %13s %10s\n", "Benchmark", "PBO",
              "T", "Tt", "S/D", "Performance", "(paper)");
  std::printf("%s\n", std::string(60, '-').c_str());

  const std::vector<Workload> &Workloads = allWorkloads();
  // One task per benchmark: baseline run plus one row per mode. The
  // paper shows both PBO modes for mcf and moldyn; one row otherwise.
  std::vector<std::vector<Row>> PerWorkload = parallelMap(
      Workloads.size(), [&](size_t I) -> std::vector<Row> {
        const Workload &W = Workloads[I];
        Built Base = buildWorkload(W);
        RunResult BaseRun = runWith(*Base.M, W.RefParams);
        bool BothModes = W.Name == "181.mcf" || W.Name == "moldyn";
        std::vector<Row> Rows;
        for (int UsePbo = 0; UsePbo <= (BothModes ? 1 : 0); ++UsePbo)
          Rows.push_back(measure(W, UsePbo != 0, BaseRun.Cycles, BaseRun));
        return Rows;
      });

  std::string Json = "{\n  \"table\": \"table3\",\n  \"rows\": [\n";
  bool FirstJsonRow = true;
  for (const std::vector<Row> &Rows : PerWorkload) {
    for (const Row &R : Rows) {
      char PaperBuf[32];
      if (R.PaperKnown)
        std::snprintf(PaperBuf, sizeof(PaperBuf), "(%+.1f%%)",
                      R.PaperPerf);
      else
        std::snprintf(PaperBuf, sizeof(PaperBuf), "(n/a)");
      std::printf("%-12s %-5s %4u %4u %5u %+12.1f%% %10s\n",
                  R.Name.c_str(), R.Pbo ? "yes" : "no", R.Types,
                  R.Transformed, R.SplitDead, R.Perf, PaperBuf);

      if (!FirstJsonRow)
        Json += ",\n";
      FirstJsonRow = false;
      Json += formatString(
          "    {\"benchmark\": \"%s\", \"pbo\": %s, \"types\": %u, "
          "\"transformed\": %u, \"split_dead\": %u, "
          "\"base_cycles\": %llu, \"opt_cycles\": %llu, "
          "\"perf_percent\": %.3f}",
          jsonEscape(R.Name).c_str(), R.Pbo ? "true" : "false", R.Types,
          R.Transformed, R.SplitDead,
          static_cast<unsigned long long>(R.BaseCycles),
          static_cast<unsigned long long>(R.OptCycles), R.Perf);
    }
  }
  Json += "\n  ]\n}\n";
  writeTextFile("BENCH_table3.json", Json);

  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("paper: gains 16.7-17.3%% (mcf), 78.2%% (art), "
              "21.8-30.9%% (moldyn);\n"
              "       the other benchmarks range from -1.5%% (noise) to "
              "small gains\n");
  std::printf("\nwrote BENCH_table3.json (%u worker threads)\n",
              benchParallelism());
  return 0;
}
