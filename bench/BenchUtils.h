//===- bench/BenchUtils.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction harnesses: compiling a
/// workload, running it on the scaled cache hierarchy, collecting PBO
/// feedback, and formatting percentages the way the paper does.
///
/// All harness runs use CacheConfig::scaledItanium(): the hierarchy is
/// scaled down with the problem sizes (see EXPERIMENTS.md) so that each
/// data structure occupies the same cache level it would occupy in the
/// paper's full-size runs.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_BENCH_BENCHUTILS_H
#define SLO_BENCH_BENCHUTILS_H

#include "frontend/Frontend.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"
#include "support/Error.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <memory>
#include <string>

namespace slo {
namespace bench {

/// A compiled workload (context + linked module).
struct Built {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

inline Built buildWorkload(const Workload &W) {
  Built B;
  B.Ctx = std::make_unique<IRContext>();
  B.M = compileProgramOrDie(*B.Ctx, W.Name, W.Sources);
  return B;
}

/// Runs with the given parameter set on the scaled hierarchy.
inline RunResult runWith(const Module &M,
                         const std::map<std::string, int64_t> &Params,
                         FeedbackFile *Profile = nullptr) {
  RunOptions O;
  O.IntParams = Params;
  O.Cache = CacheConfig::scaledItanium();
  O.Profile = Profile;
  RunResult R = runProgram(M, std::move(O));
  if (R.Trapped)
    reportFatalError("benchmark run trapped: " + R.TrapReason);
  return R;
}

/// The paper's performance metric: percent improvement of optimized over
/// base ("performance effects range from -1.5% up to 78.2%").
inline double perfPercent(uint64_t BaseCycles, uint64_t OptCycles) {
  return 100.0 * (static_cast<double>(BaseCycles) /
                      static_cast<double>(OptCycles) -
                  1.0);
}

/// Checks observable-output equality and aborts on mismatch: a harness
/// must never report numbers from a miscompiled program.
inline void requireSameOutput(const RunResult &A, const RunResult &B,
                              const std::string &What) {
  if (A.PrintedInts != B.PrintedInts || A.PrintedFloats != B.PrintedFloats)
    reportFatalError("output mismatch after transformation in " + What);
}

} // namespace bench
} // namespace slo

#endif // SLO_BENCH_BENCHUTILS_H
