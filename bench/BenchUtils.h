//===- bench/BenchUtils.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction harnesses: compiling a
/// workload, running it on the scaled cache hierarchy, collecting PBO
/// feedback, and formatting percentages the way the paper does.
///
/// All harness runs use CacheConfig::scaledItanium(): the hierarchy is
/// scaled down with the problem sizes (see EXPERIMENTS.md) so that each
/// data structure occupies the same cache level it would occupy in the
/// paper's full-size runs.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_BENCH_BENCHUTILS_H
#define SLO_BENCH_BENCHUTILS_H

#include "frontend/Frontend.h"
#include "observability/CounterRegistry.h"
#include "observability/MissAttribution.h"
#include "observability/Tracer.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"
#include "support/Error.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace slo {
namespace bench {

/// A compiled workload (context + linked module).
struct Built {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

inline Built buildWorkload(const Workload &W) {
  Built B;
  B.Ctx = std::make_unique<IRContext>();
  B.M = compileProgramOrDie(*B.Ctx, W.Name, W.Sources);
  return B;
}

/// Optional observability hooks for a harness run; all null by default.
struct RunHooks {
  Tracer *Trace = nullptr;
  CounterRegistry *Counters = nullptr;
  MissAttribution *Attribution = nullptr;
  /// When set, d-cache events are observed through the Caliper stand-in
  /// and the profile (if any) is populated from its scaled sample
  /// estimates instead of the exact per-access counts.
  SampledPmu *Pmu = nullptr;
};

/// Engine used by every harness run. Set once from --engine=walker|vm
/// in a harness main; Auto resolves against SLO_ENGINE, defaulting to
/// the tree walker. Both engines are bit-identical in every simulated
/// number (cycles, misses, attribution), so the choice only moves wall
/// time — which is exactly what the bench_compare.py engine gate
/// watches.
inline ExecEngine &benchEngine() {
  static ExecEngine E = ExecEngine::Auto;
  return E;
}

/// The resolved engine's name, for artifact labeling (a VM artifact that
/// says "walker" means the selection silently fell through).
inline const char *benchEngineName() {
  return resolveEngine(benchEngine()) == ExecEngine::VM ? "vm" : "walker";
}

/// Runs with the given parameter set on the scaled hierarchy.
inline RunResult runWith(const Module &M,
                         const std::map<std::string, int64_t> &Params,
                         FeedbackFile *Profile = nullptr,
                         const RunHooks &Hooks = RunHooks()) {
  RunOptions O;
  O.IntParams = Params;
  O.Cache = CacheConfig::scaledItanium();
  O.Profile = Profile;
  O.Trace = Hooks.Trace;
  O.Counters = Hooks.Counters;
  O.Attribution = Hooks.Attribution;
  O.Pmu = Hooks.Pmu;
  O.Engine = benchEngine();
  RunResult R = runProgram(M, std::move(O));
  if (R.Trapped)
    reportFatalError("benchmark run trapped: " + R.TrapReason);
  return R;
}

/// The paper's performance metric: percent improvement of optimized over
/// base ("performance effects range from -1.5% up to 78.2%").
inline double perfPercent(uint64_t BaseCycles, uint64_t OptCycles) {
  return 100.0 * (static_cast<double>(BaseCycles) /
                      static_cast<double>(OptCycles) -
                  1.0);
}

/// Checks observable-output equality and aborts on mismatch: a harness
/// must never report numbers from a miscompiled program.
inline void requireSameOutput(const RunResult &A, const RunResult &B,
                              const std::string &What) {
  if (A.PrintedInts != B.PrintedInts || A.PrintedFloats != B.PrintedFloats)
    reportFatalError("output mismatch after transformation in " + What);
}

/// Worker count for the parallel harness: SLO_BENCH_THREADS when set
/// (=1 forces the serial path, for determinism comparisons), otherwise
/// the hardware concurrency.
inline unsigned benchParallelism() {
  if (const char *E = std::getenv("SLO_BENCH_THREADS")) {
    long V = std::strtol(E, nullptr, 10);
    if (V >= 1)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

/// Runs F(0..N-1) on a thread pool and returns the results indexed by
/// task — reduction stays in task order no matter how the tasks were
/// scheduled, so table output is deterministic. Each task must be
/// independent (build its own modules, interpreters, and cache sims);
/// shared modules are read-only under the pre-decoding interpreter.
template <typename Fn>
auto parallelMap(size_t N, Fn F) -> std::vector<decltype(F(size_t{}))> {
  using R = decltype(F(size_t{}));
  std::vector<R> Out(N);
  size_t Threads = std::min<size_t>(benchParallelism(), N);
  if (Threads <= 1) {
    for (size_t I = 0; I < N; ++I)
      Out[I] = F(I);
    return Out;
  }
  ThreadPool Pool(static_cast<unsigned>(Threads));
  for (size_t I = 0; I < N; ++I)
    Pool.enqueue([&Out, &F, I] { Out[I] = F(I); });
  Pool.wait();
  return Out;
}

/// Minimal JSON string escaping for the machine-readable bench outputs.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Writes \p Text to \p Path, aborting on failure: a bench that claims
/// to have emitted a JSON artifact must actually have done so.
inline void writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    reportFatalError("cannot write " + Path);
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
}

} // namespace bench
} // namespace slo

#endif // SLO_BENCH_BENCHUTILS_H
