//===- bench/bench_ablation_cache.cpp - Cache geometry sensitivity --------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The paper's gains come from hot-field density in cache lines, so they
// depend on the hierarchy's geometry. This ablation runs the art peel
// and the moldyn split under several hierarchies (the scaled default,
// halved/doubled last level, and larger lines) to show where the
// crossovers are -- the kind of sensitivity a layout-optimizing compiler
// team tracks when retargeting.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

namespace {

struct Variant {
  const char *Name;
  CacheConfig Config;
};

std::vector<Variant> variants() {
  std::vector<Variant> Out;
  Out.push_back({"scaled default (512K L3)", CacheConfig::scaledItanium()});
  {
    CacheConfig C = CacheConfig::scaledItanium();
    C.L3.SizeBytes /= 2;
    Out.push_back({"half L3 (256K)", C});
  }
  {
    CacheConfig C = CacheConfig::scaledItanium();
    C.L3.SizeBytes *= 4;
    Out.push_back({"4x L3 (2M, everything fits)", C});
  }
  {
    CacheConfig C = CacheConfig::scaledItanium();
    C.L2.LineBytes = 256;
    C.L3.LineBytes = 256;
    Out.push_back({"256B outer lines", C});
  }
  {
    CacheConfig C = CacheConfig::scaledItanium();
    C.MemoryLatency = 60;
    Out.push_back({"fast memory (60 cyc)", C});
  }
  return Out;
}

double measure(const Workload &W, const CacheConfig &Config) {
  auto Run = [&](Module &M) {
    RunOptions O;
    O.IntParams = W.RefParams;
    O.Cache = Config;
    RunResult R = runProgram(M, std::move(O));
    if (R.Trapped)
      reportFatalError("ablation run trapped: " + R.TrapReason);
    return R;
  };
  Built Base = buildWorkload(W);
  RunResult BaseRun = Run(*Base.M);
  Built Opt = buildWorkload(W);
  PipelineOptions Opts;
  PipelineResult P = runStructLayoutPipeline(*Opt.M, Opts);
  (void)P;
  RunResult OptRun = Run(*Opt.M);
  requireSameOutput(BaseRun, OptRun, W.Name + " cache ablation");
  return perfPercent(BaseRun.Cycles, OptRun.Cycles);
}

} // namespace

int main() {
  std::printf("Ablation: transformation benefit vs cache geometry\n\n");
  std::printf("%-30s %12s %12s\n", "Hierarchy", "179.art", "moldyn");
  std::printf("%s\n", std::string(56, '-').c_str());
  const Workload *Art = findWorkload("179.art");
  const Workload *Moldyn = findWorkload("moldyn");
  const std::vector<Variant> Variants = variants();
  // Flatten to (variant, workload) tasks; reduce in variant order.
  std::vector<double> Perf =
      parallelMap(Variants.size() * 2, [&](size_t I) {
        const Variant &V = Variants[I / 2];
        return measure(I % 2 == 0 ? *Art : *Moldyn, V.Config);
      });
  for (size_t I = 0; I < Variants.size(); ++I)
    std::printf("%-30s %+11.1f%% %+11.1f%%\n", Variants[I].Name,
                Perf[2 * I], Perf[2 * I + 1]);
  std::printf("\nExpected shape: gains shrink when the last level is "
              "large enough to hold the\nuntransformed data (nothing to "
              "win) and when memory is fast (less to hide).\n");
  return 0;
}
