//===- bench/bench_table2_hotness.cpp - Reproduces Table 2 ----------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Table 2: relative hotness of 181.mcf's node_t fields under nine
// weighting mechanisms (PBO, PPBO, SPBO, ISPBO, ISPBO.NO, ISPBO.W,
// DMISS, DLAT, DMISS.NO) and the linear correlation r of each scheme to
// the PBO baseline, plus r' which disregards the hottest field
// (`potential`). The footer also reproduces the paper's cross-scheme
// correlation observations (ISPBO vs ISPBO.W ~0.94, DMISS vs DLAT ~0.96,
// DMISS vs DMISS.NO ~0.996).
//
//===----------------------------------------------------------------------===//

#include "advisor/Correlation.h"
#include "analysis/WeightSchemes.h"
#include "bench/BenchUtils.h"
#include "observability/SampledPmu.h"

#include <cstdio>
#include <vector>

using namespace slo;
using namespace slo::bench;

int main() {
  const Workload *W = findWorkload("181.mcf");
  Built B = buildWorkload(*W);

  // Feedback files: training input (PBO, DMISS, DLAT), reference input
  // (PPBO), and an uninstrumented sampling run (DMISS.NO). In this
  // reproduction "uninstrumented" means edge profiling off, cache
  // sampling with a PMU-like period. The three profiling runs share one
  // module — the interpreter pre-decodes without mutating it, so they
  // run concurrently, each with its own Interpreter and CacheSim.
  FeedbackFile Train, Ref, NoInstr;
  parallelMap(3, [&](size_t Task) -> int {
    switch (Task) {
    case 0:
      runWith(*B.M, W->TrainParams, &Train);
      break;
    case 1:
      runWith(*B.M, W->RefParams, &Ref);
      break;
    default: {
      RunOptions O;
      O.IntParams = W->TrainParams;
      O.Cache = CacheConfig::scaledItanium();
      O.Profile = &NoInstr;
      SampledPmuConfig PC;
      PC.Period = 16; // Sampled, like the PMU.
      SampledPmu Pmu(PC);
      O.Pmu = &Pmu;
      RunResult R = runProgram(*B.M, std::move(O));
      if (R.Trapped)
        reportFatalError("uninstrumented run trapped: " + R.TrapReason);
      break;
    }
    }
    return 0;
  });

  const WeightScheme Schemes[] = {
      WeightScheme::PBO,      WeightScheme::PPBO,
      WeightScheme::SPBO,     WeightScheme::ISPBO,
      WeightScheme::ISPBO_NO, WeightScheme::ISPBO_W,
      WeightScheme::DMISS,    WeightScheme::DLAT,
      WeightScheme::DMISS_NO,
  };

  RecordType *Node = B.Ctx->getTypes().lookupRecord("node");
  std::vector<std::vector<double>> Rel; // Per scheme: relative hotness.
  for (WeightScheme S : Schemes) {
    SchemeInputs In;
    In.M = B.M.get();
    In.TrainProfile = &Train;
    In.RefProfile = &Ref;
    In.UninstrumentedProfile = &NoInstr;
    FieldStatsResult Stats = computeSchemeFieldStats(S, In);
    Rel.push_back(Stats.get(Node)->relativeHotness());
  }

  std::printf("Table 2: relative field hotness of 181.mcf node under the "
              "weighting schemes\n\n");
  std::printf("%-14s", "Field");
  for (WeightScheme S : Schemes)
    std::printf("%9s", weightSchemeName(S));
  std::printf("\n%s\n", std::string(14 + 9 * 9, '-').c_str());
  for (unsigned F = 0; F < Node->getNumFields(); ++F) {
    std::printf("%-14s", Node->getField(F).Name.c_str());
    for (size_t S = 0; S < Rel.size(); ++S)
      std::printf("%9.1f", Rel[S][F]);
    std::printf("\n");
  }

  // Correlations against the PBO baseline; r' drops the hottest field.
  const std::vector<double> &Baseline = Rel[0];
  unsigned Hottest = 0;
  for (unsigned F = 1; F < Baseline.size(); ++F)
    if (Baseline[F] > Baseline[Hottest])
      Hottest = F;
  std::printf("%s\n", std::string(14 + 9 * 9, '-').c_str());
  std::printf("%-14s", "r");
  for (size_t S = 0; S < Rel.size(); ++S)
    std::printf("%9.3f", pearsonCorrelation(Baseline, Rel[S]));
  std::printf("\n%-14s", "r'");
  for (size_t S = 0; S < Rel.size(); ++S)
    std::printf("%9.3f",
                pearsonCorrelationExcluding(Baseline, Rel[S], Hottest));
  std::printf("\n");
  std::printf("(r' disregards the hottest field '%s', like the paper "
              "disregards 'potential')\n",
              Node->getField(Hottest).Name.c_str());
  std::printf("paper: PPBO r=0.986, SPBO r=0.693, ISPBO r=0.891, "
              "ISPBO.NO r=0.811, ISPBO.W r=0.782,\n"
              "       DMISS r=0.687 (r'=0.211), DLAT r=0.686 (r'=0.207)\n");

  // Cross-scheme observations from §2.3.
  auto Corr = [&](size_t A, size_t C) {
    return pearsonCorrelation(Rel[A], Rel[C]);
  };
  std::printf("\nCross-scheme correlations (paper values):\n");
  std::printf("  ISPBO  vs ISPBO.W : %6.3f (0.94)\n", Corr(3, 5));
  std::printf("  DMISS  vs DLAT    : %6.3f (0.96)\n", Corr(6, 7));
  std::printf("  DMISS  vs DMISS.NO: %6.3f (0.996) -- instrumentation "
              "barely disturbs sampling\n",
              Corr(6, 8));
  return 0;
}
