//===- bench/bench_fig1_transforms.cpp - Reproduces Figure 1 --------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Figure 1: an array of record types with interleaved hot and cold
// fields (a), the same array after structure splitting with link
// pointers (b), and after structure peeling (c). This harness builds the
// same program three times, applies the corresponding transformation,
// prints the memory layouts, and measures a hot-field traversal under
// the cache model so the figure's point (hot-field density) is visible
// in numbers.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "ir/IRPrinter.h"
#include "transform/StructPeel.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

namespace {

// One hot field, three cold fields, like the paper's illustration. The
// peelable variant keeps the array behind a single global pointer with
// no escapes; the splittable variant passes the pointer to a helper.
const char *programSource(bool Peelable) {
  return Peelable ? R"(
    extern void print_i64(long v);
    struct elem { long hot1; long cold1; long hot2; long cold2; };
    struct elem *arr;
    long param_n; long param_iters;
    int main() {
      arr = (struct elem*) malloc(param_n * sizeof(struct elem));
      for (long i = 0; i < param_n; i++) {
        arr[i].hot1 = i; arr[i].hot2 = i * 2;
        arr[i].cold1 = i * 3; arr[i].cold2 = i * 4;
      }
      long s = 0;
      for (long r = 0; r < 2; r++)
        for (long k = 0; k < param_iters; k++)
          for (long m = 0; m < 2; m++)
            for (long i = 0; i < param_n; i++)
              s += arr[i].hot1 + arr[i].hot2;
      for (long i = 0; i < param_n; i++)
        s += arr[i].cold1 + arr[i].cold2;
      print_i64(s);
      free(arr);
      return 0;
    }
  )"
                  : R"(
    extern void print_i64(long v);
    struct elem { long hot1; long cold1; long hot2; long cold2; };
    struct elem *arr;
    long param_n; long param_iters;
    void pin(struct elem *p) { }
    int main() {
      arr = (struct elem*) malloc(param_n * sizeof(struct elem));
      pin(arr);
      for (long i = 0; i < param_n; i++) {
        arr[i].hot1 = i; arr[i].hot2 = i * 2;
        arr[i].cold1 = i * 3; arr[i].cold2 = i * 4;
      }
      long s = 0;
      for (long r = 0; r < 2; r++)
        for (long k = 0; k < param_iters; k++)
          for (long m = 0; m < 2; m++)
            for (long i = 0; i < param_n; i++)
              s += arr[i].hot1 + arr[i].hot2;
      for (long i = 0; i < param_n; i++)
        s += arr[i].cold1 + arr[i].cold2;
      print_i64(s);
      free(arr);
      return 0;
    }
  )";
}

const std::map<std::string, int64_t> Params = {{"param_n", 30000},
                                               {"param_iters", 8}};

} // namespace

int main() {
  std::printf("Figure 1: an array of record types (a), after splitting "
              "(b), after peeling (c)\n\n");

  // (a) Baseline.
  IRContext CtxA;
  auto MA = compileProgramOrDie(CtxA, "fig1a", {programSource(false)});
  RunResult A = runWith(*MA, Params);
  std::printf("(a) original array of structs:\n%s",
              printRecordLayout(*CtxA.getTypes().lookupRecord("elem"))
                  .c_str());
  std::printf("    hot-loop cycles: %llu\n\n",
              static_cast<unsigned long long>(A.Cycles));

  // (b) Structure splitting (link pointers).
  IRContext CtxB;
  auto MB = compileProgramOrDie(CtxB, "fig1b", {programSource(false)});
  PipelineOptions OptsB;
  PipelineResult PB = runStructLayoutPipeline(*MB, OptsB);
  std::printf("(b) after structure splitting:\n");
  for (const AppliedTransform &T : PB.Summary.Applied) {
    if (T.Split.HotRec)
      std::printf("%s", printRecordLayout(*T.Split.HotRec).c_str());
    if (T.Split.ColdRec)
      std::printf("%s", printRecordLayout(*T.Split.ColdRec).c_str());
  }
  RunResult Rb = runWith(*MB, Params);
  requireSameOutput(A, Rb, "fig1 splitting");
  std::printf("    hot-loop cycles: %llu (%+.1f%%)\n\n",
              static_cast<unsigned long long>(Rb.Cycles),
              perfPercent(A.Cycles, Rb.Cycles));

  // (c) Structure peeling (no link pointers). The peelable program
  // variant omits the escaping call.
  IRContext CtxRefC;
  auto MRefC = compileProgramOrDie(CtxRefC, "fig1c", {programSource(true)});
  RunResult BaseC = runWith(*MRefC, Params);
  IRContext CtxC;
  auto MC = compileProgramOrDie(CtxC, "fig1c", {programSource(true)});
  PipelineOptions OptsC;
  PipelineResult PC = runStructLayoutPipeline(*MC, OptsC);
  std::printf("(c) after structure peeling:\n");
  for (const AppliedTransform &T : PC.Summary.Applied)
    for (RecordType *G : T.Peel.GroupRecs)
      std::printf("%s", printRecordLayout(*G).c_str());
  RunResult Rc = runWith(*MC, Params);
  requireSameOutput(BaseC, Rc, "fig1 peeling");
  std::printf("    hot-loop cycles: %llu (%+.1f%% vs its own baseline "
              "%llu)\n\n",
              static_cast<unsigned long long>(Rc.Cycles),
              perfPercent(BaseC.Cycles, Rc.Cycles),
              static_cast<unsigned long long>(BaseC.Cycles));

  std::printf("The paper's point: (b) keeps the hot fields dense at the "
              "cost of a link pointer\nand an extra allocation; (c) gets "
              "the same density without link pointers when\nthe stricter "
              "peeling conditions hold.\n");
  return 0;
}
