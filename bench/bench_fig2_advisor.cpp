//===- bench/bench_fig2_advisor.cpp - Reproduces Figure 2 -----------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Paper Figure 2: "The advisory tool's output" -- the annotated layout
// of 181.mcf's node type with per-field hotness bars, read/write bars,
// d-cache miss counts and average latencies, and affinity edges. This
// harness runs the PBO collection on the mcf-like workload and prints
// the same report, followed by the VCG graph control file the paper's
// tool also emits.
//
//===----------------------------------------------------------------------===//

#include "advisor/AdvisorReport.h"
#include "bench/BenchUtils.h"

#include <cstdio>

using namespace slo;
using namespace slo::bench;

int main() {
  const Workload *W = findWorkload("181.mcf");
  Built B = buildWorkload(*W);

  FeedbackFile Train;
  runWith(*B.M, W->TrainParams, &Train);

  PipelineOptions Opts;
  Opts.Scheme = WeightScheme::PBO;
  Opts.AnalyzeOnly = true;
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts, &Train);

  // Figure 2 shows the node type; print it first, then the whole report
  // (the paper's tool prints all types sorted by hotness).
  AdvisorInputs In;
  In.M = B.M.get();
  In.Legal = &P.Legality;
  In.Stats = &P.Stats;
  In.Cache = &Train;
  In.Plans = &P.Plans;

  RecordType *Node = B.Ctx->getTypes().lookupRecord("node");
  std::printf("Figure 2: the advisory tool's output for 181.mcf's node "
              "type\n\n");
  std::printf("%s\n", renderTypeReport(In, Node).c_str());

  std::printf("---- full report (all referenced types, hottest first) "
              "----\n\n");
  std::printf("%s", renderAdvisorReport(In).c_str());

  std::printf("---- VCG control file for the node affinity graph ----\n");
  std::printf("%s", renderVcgGraph(*P.Stats.get(Node)).c_str());
  return 0;
}
