file(REMOVE_RECURSE
  "CMakeFiles/cfg_analysis_test.dir/cfg_analysis_test.cpp.o"
  "CMakeFiles/cfg_analysis_test.dir/cfg_analysis_test.cpp.o.d"
  "cfg_analysis_test"
  "cfg_analysis_test.pdb"
  "cfg_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
