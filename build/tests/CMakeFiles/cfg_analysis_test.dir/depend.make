# Empty dependencies file for cfg_analysis_test.
# This may be replaced when dependencies are built.
