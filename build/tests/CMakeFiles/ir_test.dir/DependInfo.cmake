
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/ir_test.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/slo_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/slo_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/advisor/CMakeFiles/slo_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/slo_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/slo_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/slo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/slo_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/slo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
