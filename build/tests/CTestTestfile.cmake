# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/ir_edge_test[1]_include.cmake")
