file(REMOVE_RECURSE
  "libslo_pipeline.a"
)
