file(REMOVE_RECURSE
  "CMakeFiles/slo_pipeline.dir/Pipeline.cpp.o"
  "CMakeFiles/slo_pipeline.dir/Pipeline.cpp.o.d"
  "libslo_pipeline.a"
  "libslo_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
