# Empty dependencies file for slo_pipeline.
# This may be replaced when dependencies are built.
