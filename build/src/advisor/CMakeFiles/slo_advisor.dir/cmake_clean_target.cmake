file(REMOVE_RECURSE
  "libslo_advisor.a"
)
