
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/AdvisorReport.cpp" "src/advisor/CMakeFiles/slo_advisor.dir/AdvisorReport.cpp.o" "gcc" "src/advisor/CMakeFiles/slo_advisor.dir/AdvisorReport.cpp.o.d"
  "/root/repo/src/advisor/Correlation.cpp" "src/advisor/CMakeFiles/slo_advisor.dir/Correlation.cpp.o" "gcc" "src/advisor/CMakeFiles/slo_advisor.dir/Correlation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/slo_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/slo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/slo_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/slo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
