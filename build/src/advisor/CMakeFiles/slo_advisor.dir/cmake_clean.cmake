file(REMOVE_RECURSE
  "CMakeFiles/slo_advisor.dir/AdvisorReport.cpp.o"
  "CMakeFiles/slo_advisor.dir/AdvisorReport.cpp.o.d"
  "CMakeFiles/slo_advisor.dir/Correlation.cpp.o"
  "CMakeFiles/slo_advisor.dir/Correlation.cpp.o.d"
  "libslo_advisor.a"
  "libslo_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
