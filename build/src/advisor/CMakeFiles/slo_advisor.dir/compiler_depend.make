# Empty compiler generated dependencies file for slo_advisor.
# This may be replaced when dependencies are built.
