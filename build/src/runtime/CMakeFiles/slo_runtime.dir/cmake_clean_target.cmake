file(REMOVE_RECURSE
  "libslo_runtime.a"
)
