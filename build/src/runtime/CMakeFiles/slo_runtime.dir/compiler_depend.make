# Empty compiler generated dependencies file for slo_runtime.
# This may be replaced when dependencies are built.
