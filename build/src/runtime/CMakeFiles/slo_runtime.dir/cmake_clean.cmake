file(REMOVE_RECURSE
  "CMakeFiles/slo_runtime.dir/CacheSim.cpp.o"
  "CMakeFiles/slo_runtime.dir/CacheSim.cpp.o.d"
  "CMakeFiles/slo_runtime.dir/Interpreter.cpp.o"
  "CMakeFiles/slo_runtime.dir/Interpreter.cpp.o.d"
  "libslo_runtime.a"
  "libslo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
