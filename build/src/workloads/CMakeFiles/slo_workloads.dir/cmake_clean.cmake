file(REMOVE_RECURSE
  "CMakeFiles/slo_workloads.dir/Generator.cpp.o"
  "CMakeFiles/slo_workloads.dir/Generator.cpp.o.d"
  "CMakeFiles/slo_workloads.dir/HandwrittenSources.cpp.o"
  "CMakeFiles/slo_workloads.dir/HandwrittenSources.cpp.o.d"
  "CMakeFiles/slo_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/slo_workloads.dir/Workloads.cpp.o.d"
  "libslo_workloads.a"
  "libslo_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
