# Empty compiler generated dependencies file for slo_workloads.
# This may be replaced when dependencies are built.
