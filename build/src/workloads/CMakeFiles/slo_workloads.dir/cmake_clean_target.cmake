file(REMOVE_RECURSE
  "libslo_workloads.a"
)
