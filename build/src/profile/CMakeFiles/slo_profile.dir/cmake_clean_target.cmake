file(REMOVE_RECURSE
  "libslo_profile.a"
)
