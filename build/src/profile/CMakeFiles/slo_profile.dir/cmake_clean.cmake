file(REMOVE_RECURSE
  "CMakeFiles/slo_profile.dir/FeedbackFile.cpp.o"
  "CMakeFiles/slo_profile.dir/FeedbackFile.cpp.o.d"
  "CMakeFiles/slo_profile.dir/FeedbackIO.cpp.o"
  "CMakeFiles/slo_profile.dir/FeedbackIO.cpp.o.d"
  "libslo_profile.a"
  "libslo_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
