# Empty dependencies file for slo_profile.
# This may be replaced when dependencies are built.
