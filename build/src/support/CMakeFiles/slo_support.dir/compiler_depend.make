# Empty compiler generated dependencies file for slo_support.
# This may be replaced when dependencies are built.
