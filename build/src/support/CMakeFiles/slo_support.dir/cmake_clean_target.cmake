file(REMOVE_RECURSE
  "libslo_support.a"
)
