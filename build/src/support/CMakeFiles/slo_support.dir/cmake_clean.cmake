file(REMOVE_RECURSE
  "CMakeFiles/slo_support.dir/Error.cpp.o"
  "CMakeFiles/slo_support.dir/Error.cpp.o.d"
  "CMakeFiles/slo_support.dir/Format.cpp.o"
  "CMakeFiles/slo_support.dir/Format.cpp.o.d"
  "libslo_support.a"
  "libslo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
