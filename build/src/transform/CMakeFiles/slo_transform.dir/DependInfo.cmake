
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/GlobalVarLayout.cpp" "src/transform/CMakeFiles/slo_transform.dir/GlobalVarLayout.cpp.o" "gcc" "src/transform/CMakeFiles/slo_transform.dir/GlobalVarLayout.cpp.o.d"
  "/root/repo/src/transform/LayoutPlanner.cpp" "src/transform/CMakeFiles/slo_transform.dir/LayoutPlanner.cpp.o" "gcc" "src/transform/CMakeFiles/slo_transform.dir/LayoutPlanner.cpp.o.d"
  "/root/repo/src/transform/RewriteUtils.cpp" "src/transform/CMakeFiles/slo_transform.dir/RewriteUtils.cpp.o" "gcc" "src/transform/CMakeFiles/slo_transform.dir/RewriteUtils.cpp.o.d"
  "/root/repo/src/transform/StructPeel.cpp" "src/transform/CMakeFiles/slo_transform.dir/StructPeel.cpp.o" "gcc" "src/transform/CMakeFiles/slo_transform.dir/StructPeel.cpp.o.d"
  "/root/repo/src/transform/StructSplit.cpp" "src/transform/CMakeFiles/slo_transform.dir/StructSplit.cpp.o" "gcc" "src/transform/CMakeFiles/slo_transform.dir/StructSplit.cpp.o.d"
  "/root/repo/src/transform/Transform.cpp" "src/transform/CMakeFiles/slo_transform.dir/Transform.cpp.o" "gcc" "src/transform/CMakeFiles/slo_transform.dir/Transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/slo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/slo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slo_support.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/slo_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
