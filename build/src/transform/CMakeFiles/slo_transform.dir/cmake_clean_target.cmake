file(REMOVE_RECURSE
  "libslo_transform.a"
)
