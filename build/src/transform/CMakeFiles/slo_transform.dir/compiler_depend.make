# Empty compiler generated dependencies file for slo_transform.
# This may be replaced when dependencies are built.
