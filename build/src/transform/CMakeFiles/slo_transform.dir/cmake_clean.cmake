file(REMOVE_RECURSE
  "CMakeFiles/slo_transform.dir/GlobalVarLayout.cpp.o"
  "CMakeFiles/slo_transform.dir/GlobalVarLayout.cpp.o.d"
  "CMakeFiles/slo_transform.dir/LayoutPlanner.cpp.o"
  "CMakeFiles/slo_transform.dir/LayoutPlanner.cpp.o.d"
  "CMakeFiles/slo_transform.dir/RewriteUtils.cpp.o"
  "CMakeFiles/slo_transform.dir/RewriteUtils.cpp.o.d"
  "CMakeFiles/slo_transform.dir/StructPeel.cpp.o"
  "CMakeFiles/slo_transform.dir/StructPeel.cpp.o.d"
  "CMakeFiles/slo_transform.dir/StructSplit.cpp.o"
  "CMakeFiles/slo_transform.dir/StructSplit.cpp.o.d"
  "CMakeFiles/slo_transform.dir/Transform.cpp.o"
  "CMakeFiles/slo_transform.dir/Transform.cpp.o.d"
  "libslo_transform.a"
  "libslo_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
