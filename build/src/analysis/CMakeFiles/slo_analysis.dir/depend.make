# Empty dependencies file for slo_analysis.
# This may be replaced when dependencies are built.
