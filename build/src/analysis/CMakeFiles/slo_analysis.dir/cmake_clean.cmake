file(REMOVE_RECURSE
  "CMakeFiles/slo_analysis.dir/Affinity.cpp.o"
  "CMakeFiles/slo_analysis.dir/Affinity.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/BlockFrequency.cpp.o"
  "CMakeFiles/slo_analysis.dir/BlockFrequency.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/BranchProbability.cpp.o"
  "CMakeFiles/slo_analysis.dir/BranchProbability.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/slo_analysis.dir/CallGraph.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/slo_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/InterProcFrequency.cpp.o"
  "CMakeFiles/slo_analysis.dir/InterProcFrequency.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/Legality.cpp.o"
  "CMakeFiles/slo_analysis.dir/Legality.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/slo_analysis.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/StaticEstimator.cpp.o"
  "CMakeFiles/slo_analysis.dir/StaticEstimator.cpp.o.d"
  "CMakeFiles/slo_analysis.dir/WeightSchemes.cpp.o"
  "CMakeFiles/slo_analysis.dir/WeightSchemes.cpp.o.d"
  "libslo_analysis.a"
  "libslo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
