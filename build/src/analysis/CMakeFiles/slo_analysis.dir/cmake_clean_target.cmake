file(REMOVE_RECURSE
  "libslo_analysis.a"
)
