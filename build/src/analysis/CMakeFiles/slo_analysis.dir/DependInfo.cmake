
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Affinity.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/Affinity.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/Affinity.cpp.o.d"
  "/root/repo/src/analysis/BlockFrequency.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/BlockFrequency.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/BlockFrequency.cpp.o.d"
  "/root/repo/src/analysis/BranchProbability.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/BranchProbability.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/BranchProbability.cpp.o.d"
  "/root/repo/src/analysis/CallGraph.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/CallGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/InterProcFrequency.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/InterProcFrequency.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/InterProcFrequency.cpp.o.d"
  "/root/repo/src/analysis/Legality.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/Legality.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/Legality.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/StaticEstimator.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/StaticEstimator.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/StaticEstimator.cpp.o.d"
  "/root/repo/src/analysis/WeightSchemes.cpp" "src/analysis/CMakeFiles/slo_analysis.dir/WeightSchemes.cpp.o" "gcc" "src/analysis/CMakeFiles/slo_analysis.dir/WeightSchemes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/slo_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/slo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
