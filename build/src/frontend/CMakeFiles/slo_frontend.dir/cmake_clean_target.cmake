file(REMOVE_RECURSE
  "libslo_frontend.a"
)
