# Empty dependencies file for slo_frontend.
# This may be replaced when dependencies are built.
