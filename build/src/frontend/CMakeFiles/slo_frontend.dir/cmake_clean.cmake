file(REMOVE_RECURSE
  "CMakeFiles/slo_frontend.dir/Frontend.cpp.o"
  "CMakeFiles/slo_frontend.dir/Frontend.cpp.o.d"
  "CMakeFiles/slo_frontend.dir/IRGen.cpp.o"
  "CMakeFiles/slo_frontend.dir/IRGen.cpp.o.d"
  "CMakeFiles/slo_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/slo_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/slo_frontend.dir/Parser.cpp.o"
  "CMakeFiles/slo_frontend.dir/Parser.cpp.o.d"
  "libslo_frontend.a"
  "libslo_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
