file(REMOVE_RECURSE
  "CMakeFiles/slo_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/slo_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/slo_ir.dir/Function.cpp.o"
  "CMakeFiles/slo_ir.dir/Function.cpp.o.d"
  "CMakeFiles/slo_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/slo_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/slo_ir.dir/Instructions.cpp.o"
  "CMakeFiles/slo_ir.dir/Instructions.cpp.o.d"
  "CMakeFiles/slo_ir.dir/Linker.cpp.o"
  "CMakeFiles/slo_ir.dir/Linker.cpp.o.d"
  "CMakeFiles/slo_ir.dir/Module.cpp.o"
  "CMakeFiles/slo_ir.dir/Module.cpp.o.d"
  "CMakeFiles/slo_ir.dir/Type.cpp.o"
  "CMakeFiles/slo_ir.dir/Type.cpp.o.d"
  "CMakeFiles/slo_ir.dir/Value.cpp.o"
  "CMakeFiles/slo_ir.dir/Value.cpp.o.d"
  "CMakeFiles/slo_ir.dir/Verifier.cpp.o"
  "CMakeFiles/slo_ir.dir/Verifier.cpp.o.d"
  "libslo_ir.a"
  "libslo_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
