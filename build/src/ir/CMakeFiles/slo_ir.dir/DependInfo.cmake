
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/BasicBlock.cpp" "src/ir/CMakeFiles/slo_ir.dir/BasicBlock.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/ir/CMakeFiles/slo_ir.dir/Function.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/Function.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/ir/CMakeFiles/slo_ir.dir/IRPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Instructions.cpp" "src/ir/CMakeFiles/slo_ir.dir/Instructions.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/Instructions.cpp.o.d"
  "/root/repo/src/ir/Linker.cpp" "src/ir/CMakeFiles/slo_ir.dir/Linker.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/Linker.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/ir/CMakeFiles/slo_ir.dir/Module.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/Module.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/ir/CMakeFiles/slo_ir.dir/Type.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/Type.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/ir/CMakeFiles/slo_ir.dir/Value.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/Value.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/slo_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/slo_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/slo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
