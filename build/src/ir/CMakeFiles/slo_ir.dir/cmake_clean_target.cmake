file(REMOVE_RECURSE
  "libslo_ir.a"
)
