# Empty dependencies file for slo_ir.
# This may be replaced when dependencies are built.
