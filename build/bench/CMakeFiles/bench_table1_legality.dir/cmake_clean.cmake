file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_legality.dir/bench_table1_legality.cpp.o"
  "CMakeFiles/bench_table1_legality.dir/bench_table1_legality.cpp.o.d"
  "bench_table1_legality"
  "bench_table1_legality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_legality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
