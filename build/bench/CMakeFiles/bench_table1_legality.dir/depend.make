# Empty dependencies file for bench_table1_legality.
# This may be replaced when dependencies are built.
