file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hotness.dir/bench_table2_hotness.cpp.o"
  "CMakeFiles/bench_table2_hotness.dir/bench_table2_hotness.cpp.o.d"
  "bench_table2_hotness"
  "bench_table2_hotness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hotness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
