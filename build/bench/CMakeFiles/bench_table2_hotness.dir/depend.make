# Empty dependencies file for bench_table2_hotness.
# This may be replaced when dependencies are built.
