file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hotsplit.dir/bench_ablation_hotsplit.cpp.o"
  "CMakeFiles/bench_ablation_hotsplit.dir/bench_ablation_hotsplit.cpp.o.d"
  "bench_ablation_hotsplit"
  "bench_ablation_hotsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hotsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
