# Empty compiler generated dependencies file for bench_ablation_hotsplit.
# This may be replaced when dependencies are built.
