file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_advisor.dir/bench_fig2_advisor.cpp.o"
  "CMakeFiles/bench_fig2_advisor.dir/bench_fig2_advisor.cpp.o.d"
  "bench_fig2_advisor"
  "bench_fig2_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
