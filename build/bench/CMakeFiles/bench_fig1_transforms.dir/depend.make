# Empty dependencies file for bench_fig1_transforms.
# This may be replaced when dependencies are built.
