file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_transforms.dir/bench_fig1_transforms.cpp.o"
  "CMakeFiles/bench_fig1_transforms.dir/bench_fig1_transforms.cpp.o.d"
  "bench_fig1_transforms"
  "bench_fig1_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
