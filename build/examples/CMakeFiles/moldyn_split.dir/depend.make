# Empty dependencies file for moldyn_split.
# This may be replaced when dependencies are built.
