file(REMOVE_RECURSE
  "CMakeFiles/moldyn_split.dir/moldyn_split.cpp.o"
  "CMakeFiles/moldyn_split.dir/moldyn_split.cpp.o.d"
  "moldyn_split"
  "moldyn_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldyn_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
