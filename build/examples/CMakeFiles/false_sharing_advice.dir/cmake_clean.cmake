file(REMOVE_RECURSE
  "CMakeFiles/false_sharing_advice.dir/false_sharing_advice.cpp.o"
  "CMakeFiles/false_sharing_advice.dir/false_sharing_advice.cpp.o.d"
  "false_sharing_advice"
  "false_sharing_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_sharing_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
