# Empty dependencies file for false_sharing_advice.
# This may be replaced when dependencies are built.
