# Empty dependencies file for mcf_advisor.
# This may be replaced when dependencies are built.
