file(REMOVE_RECURSE
  "CMakeFiles/mcf_advisor.dir/mcf_advisor.cpp.o"
  "CMakeFiles/mcf_advisor.dir/mcf_advisor.cpp.o.d"
  "mcf_advisor"
  "mcf_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcf_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
