file(REMOVE_RECURSE
  "CMakeFiles/art_peeling.dir/art_peeling.cpp.o"
  "CMakeFiles/art_peeling.dir/art_peeling.cpp.o.d"
  "art_peeling"
  "art_peeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/art_peeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
