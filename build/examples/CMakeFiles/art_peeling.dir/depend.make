# Empty dependencies file for art_peeling.
# This may be replaced when dependencies are built.
