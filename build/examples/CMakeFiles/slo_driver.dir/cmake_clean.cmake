file(REMOVE_RECURSE
  "CMakeFiles/slo_driver.dir/slo_driver.cpp.o"
  "CMakeFiles/slo_driver.dir/slo_driver.cpp.o.d"
  "slo_driver"
  "slo_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
