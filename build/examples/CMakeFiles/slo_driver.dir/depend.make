# Empty dependencies file for slo_driver.
# This may be replaced when dependencies are built.
