//===- examples/slo_lint.cpp - Standalone lint driver ---------------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Runs the layout-hazard lint suite (analysis/lint/) over MiniC
// programs and prints the findings through DiagnosticEngine:
//
//   slo_lint [options] file1.minic [file2.minic ...]
//     --workloads        lint the 12 embedded Table-1 workloads too
//     --json             print findings as a JSON array
//     --counters         print the lint.* counter snapshot
//     --fail-on=S        exit 1 when a finding of severity S or worse
//                        exists: error (default) | warning | note |
//                        never
//
// Files passed together form ONE linked program (like slo_driver);
// each workload is linted as its own program. Exit codes: 0 clean
// (under the threshold), 1 findings at/above the threshold, 2 usage or
// compile error.
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"
#include "analysis/PointsTo.h"
#include "analysis/lint/Lint.h"
#include "frontend/Frontend.h"
#include "observability/CounterRegistry.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace slo;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: slo_lint [--workloads] [--json] [--counters]\n"
               "                [--fail-on=error|warning|note|never]\n"
               "                [file.minic ...]\n");
  return 2;
}

/// Severity at or above \p Threshold (Error is the most severe).
bool atLeast(DiagSeverity S, DiagSeverity Threshold) {
  auto Rank = [](DiagSeverity X) {
    switch (X) {
    case DiagSeverity::Error:
      return 3;
    case DiagSeverity::Warning:
      return 2;
    case DiagSeverity::Remark:
    case DiagSeverity::Note:
      return 1;
    }
    return 0;
  };
  return Rank(S) >= Rank(Threshold);
}

/// Lints one linked program; returns false on compile failure.
bool lintProgram(const std::string &Name,
                 const std::vector<std::string> &Sources, bool Json,
                 CounterRegistry *Counters, DiagSeverity FailOn, bool FailNever,
                 unsigned &FailingFindings) {
  IRContext Ctx;
  std::vector<std::string> CompileDiags;
  std::unique_ptr<Module> M =
      compileProgram(Ctx, Name, Sources, CompileDiags);
  if (!M) {
    std::fprintf(stderr, "%s: compile error: %s\n", Name.c_str(),
                 CompileDiags.empty() ? "?" : CompileDiags.front().c_str());
    return false;
  }
  LegalityResult Legal = analyzeLegality(*M);
  PointsToResult PT = analyzePointsTo(*M);
  LintOptions LO;
  LO.Counters = Counters;
  LintResult R = runLint(*M, &PT, &Legal, LO);

  DiagnosticEngine Diags;
  reportLintFindings(R, Diags);
  if (Json)
    std::printf("%s\n", Diags.renderJson().c_str());
  else if (!R.Findings.empty())
    std::printf("%s", Diags.renderText().c_str());
  std::printf("%s: %zu finding(s), %zu error(s), %zu pinned type(s)%s\n",
              Name.c_str(), R.Findings.size(),
              R.countSeverity(DiagSeverity::Error),
              R.Pinnings.Reasons.size(),
              R.HeapCoverageComplete ? "" : " [heap coverage incomplete]");
  if (!FailNever)
    for (const LintFinding &F : R.Findings)
      FailingFindings += atLeast(F.Severity, FailOn);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Workloads = false, Json = false, WantCounters = false;
  bool FailNever = false;
  DiagSeverity FailOn = DiagSeverity::Error;
  std::vector<std::string> Files;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--workloads") {
      Workloads = true;
    } else if (A == "--json") {
      Json = true;
    } else if (A == "--counters") {
      WantCounters = true;
    } else if (A.rfind("--fail-on=", 0) == 0) {
      std::string S = A.substr(10);
      if (S == "error")
        FailOn = DiagSeverity::Error;
      else if (S == "warning")
        FailOn = DiagSeverity::Warning;
      else if (S == "note")
        FailOn = DiagSeverity::Note;
      else if (S == "never")
        FailNever = true;
      else
        return usage();
    } else if (A.rfind("--", 0) == 0) {
      std::fprintf(stderr, "slo_lint: unknown option '%s'\n", A.c_str());
      return usage();
    } else {
      Files.push_back(A);
    }
  }
  if (!Workloads && Files.empty())
    return usage();

  CounterRegistry Counters;
  CounterRegistry *CountersPtr = WantCounters ? &Counters : nullptr;
  unsigned FailingFindings = 0;
  bool CompileOk = true;

  if (Workloads)
    for (const Workload &W : allWorkloads())
      CompileOk &= lintProgram(W.Name, W.Sources, Json, CountersPtr, FailOn,
                               FailNever, FailingFindings);

  if (!Files.empty()) {
    std::vector<std::string> Sources;
    for (const std::string &File : Files) {
      std::ifstream In(File);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", File.c_str());
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Sources.push_back(SS.str());
    }
    CompileOk &= lintProgram(Files.size() == 1 ? Files.front() : "program",
                             Sources, Json, CountersPtr, FailOn, FailNever,
                             FailingFindings);
  }

  if (WantCounters)
    std::printf("%s", Counters.renderText().c_str());
  if (!CompileOk)
    return 2;
  return FailingFindings ? 1 : 0;
}
