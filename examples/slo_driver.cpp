//===- examples/slo_driver.cpp - Command-line front door ------------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// A small driver exposing the whole toolchain on MiniC files, in the
// spirit of the paper's -ipo flow plus its advisory option:
//
//   slo_driver [options] file1.minic [file2.minic ...]
//     --advise          print the advisory report instead of transforming
//     --lint            run the layout-hazard lint suite; findings print
//                       as diagnostics and pinned types are demoted out
//                       of Proven before planning (slo_lint is the
//                       standalone front door)
//     --pbo             profile first, then use PBO weights
//     --scheme=NAME     ISPBO (default) | SPBO | ISPBO.NO | ISPBO.W | PBO
//                       | DMISS | DLAT (the cache schemes profile first,
//                       like --pbo)
//     --run             execute and report simulated cycles
//     --dump-ir         print the (transformed) IR
//     --diags           print legality/refinement diagnostics as text
//     --diags-json      print them as a JSON array (for tooling)
//     --param NAME=V    set an integer global before running
//     --trace-json=P    write Chrome trace_event spans (pipeline phases
//                       and interpreter runs) to P; chrome://tracing
//     --stats-json=P    write run counters, pipeline-phase latency
//                       histograms (the daemon's GetMetrics schema) +
//                       the per-field miss heatmap to P (implies --run;
//                       with --summary-cache: cache accounting +
//                       histograms)
//     --trace-summary   print the span summary table to stdout
//     --engine=E        execution engine for --pbo/--run: walker | vm
//                       (default: SLO_ENGINE, else the tree walker);
//                       both are bit-identical in every reported number
//
//   Sampled profile collection (the Caliper stand-in; see DESIGN.md):
//     --sample-period N   collect the profiling run's d-cache field
//                         events through the sampled PMU with mean
//                         period N instead of exactly (N=1 is exact)
//     --sample-skid K     displace miss samples onto the site of an
//                         access up to K events later (Itanium skid)
//     --sample-seed S     jitter/skid stream seed (default fixed)
//     --sample-latency-threshold T
//                         DLAT mode: latency from loads >= T cycles only
//     --profile-out=P     write the collected profile (feedback format)
//     --profile-in=P      skip collection, load a feedback file instead;
//                         corrupt files are structured errors, not UB
//
//   Incremental runs (advisory-only; see DESIGN.md "Summary cache"):
//     --summary-cache D   run the incremental FE->IPA->BE pipeline with
//                         per-TU summaries cached under directory D;
//                         each input file is one TU. Advice prints to
//                         stdout and is byte-identical between cold and
//                         warm runs; cache statistics go to stderr.
//     --advice-json=P     write the advice JSON artifact to P
//                         (incremental mode only)
//     --jobs N            FE fan-out width (default: hardware threads)
//
//===----------------------------------------------------------------------===//

#include "DriverUtils.h"

#include "advisor/AdvisorReport.h"
#include "frontend/Frontend.h"
#include "ir/IRPrinter.h"
#include "observability/CounterRegistry.h"
#include "observability/Histogram.h"
#include "observability/MissAttribution.h"
#include "observability/SampledPmu.h"
#include "observability/Tracer.h"
#include "pipeline/Incremental.h"
#include "pipeline/Pipeline.h"
#include "profile/FeedbackIO.h"
#include "runtime/Interpreter.h"
#include "support/Diagnostics.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace slo;

namespace {

struct DriverOptions {
  bool Advise = false;
  bool Lint = false;
  bool Pbo = false;
  bool Run = false;
  bool DumpIr = false;
  bool DiagsText = false;
  bool DiagsJson = false;
  bool TraceSummary = false;
  std::string TraceJsonPath;
  std::string StatsJsonPath;
  WeightScheme Scheme = WeightScheme::ISPBO;
  std::map<std::string, int64_t> Params;
  std::vector<std::string> Files;
  // Sampled collection (0 = exact collection, no PMU).
  uint64_t SamplePeriod = 0;
  unsigned SampleSkid = 0;
  uint64_t SampleSeed = SampledPmuConfig().Seed;
  uint64_t SampleLatencyThreshold = 0;
  std::string ProfileOutPath;
  std::string ProfileInPath;
  /// Auto resolves against SLO_ENGINE (default: the tree walker).
  ExecEngine Engine = ExecEngine::Auto;
  // Incremental mode (--summary-cache).
  std::string SummaryCacheDir;
  bool Incremental = false;
  std::string AdviceJsonPath;
  uint64_t Jobs = 0;
};

using driver::parseEngineArg;
using driver::parseU64Arg;
using driver::valuedFlag;

bool parseArgs(int argc, char **argv, DriverOptions &O) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    std::string V;
    if (A == "--advise") {
      O.Advise = true;
    } else if (A == "--lint") {
      O.Lint = true;
    } else if (A == "--pbo") {
      O.Pbo = true;
      O.Scheme = WeightScheme::PBO;
    } else if (A == "--run") {
      O.Run = true;
    } else if (A == "--dump-ir") {
      O.DumpIr = true;
    } else if (A == "--diags") {
      O.DiagsText = true;
    } else if (A == "--diags-json") {
      O.DiagsJson = true;
    } else if (A == "--trace-summary") {
      O.TraceSummary = true;
    } else if (A.rfind("--trace-json=", 0) == 0) {
      O.TraceJsonPath = A.substr(13);
    } else if (A.rfind("--stats-json=", 0) == 0) {
      O.StatsJsonPath = A.substr(13);
    } else if (A.rfind("--scheme=", 0) == 0) {
      std::string S = A.substr(9);
      if (S == "ISPBO")
        O.Scheme = WeightScheme::ISPBO;
      else if (S == "SPBO")
        O.Scheme = WeightScheme::SPBO;
      else if (S == "ISPBO.NO")
        O.Scheme = WeightScheme::ISPBO_NO;
      else if (S == "ISPBO.W")
        O.Scheme = WeightScheme::ISPBO_W;
      else if (S == "PBO") {
        O.Scheme = WeightScheme::PBO;
        O.Pbo = true;
      } else if (S == "DMISS") {
        O.Scheme = WeightScheme::DMISS;
        O.Pbo = true; // Cache schemes consume a collected profile.
      } else if (S == "DLAT") {
        O.Scheme = WeightScheme::DLAT;
        O.Pbo = true;
      } else {
        std::fprintf(stderr, "unknown scheme '%s'\n", S.c_str());
        return false;
      }
    } else if (valuedFlag("--sample-period", argc, argv, I, V)) {
      if (!parseU64Arg("--sample-period", V, O.SamplePeriod))
        return false;
    } else if (valuedFlag("--sample-skid", argc, argv, I, V)) {
      uint64_t K;
      if (!parseU64Arg("--sample-skid", V, K))
        return false;
      O.SampleSkid = static_cast<unsigned>(K);
    } else if (valuedFlag("--sample-seed", argc, argv, I, V)) {
      if (!parseU64Arg("--sample-seed", V, O.SampleSeed))
        return false;
    } else if (valuedFlag("--sample-latency-threshold", argc, argv, I, V)) {
      if (!parseU64Arg("--sample-latency-threshold", V,
                       O.SampleLatencyThreshold))
        return false;
    } else if (valuedFlag("--engine", argc, argv, I, V)) {
      if (!parseEngineArg("--engine", V, O.Engine))
        return false;
    } else if (valuedFlag("--summary-cache", argc, argv, I, V)) {
      O.SummaryCacheDir = V;
      O.Incremental = true;
    } else if (valuedFlag("--advice-json", argc, argv, I, V)) {
      O.AdviceJsonPath = V;
    } else if (valuedFlag("--jobs", argc, argv, I, V)) {
      if (!parseU64Arg("--jobs", V, O.Jobs))
        return false;
    } else if (valuedFlag("--profile-out", argc, argv, I, V)) {
      O.ProfileOutPath = V;
    } else if (valuedFlag("--profile-in", argc, argv, I, V)) {
      O.ProfileInPath = V;
    } else if (A == "--param" && I + 1 < argc) {
      std::string P = argv[++I];
      size_t Eq = P.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "--param expects NAME=VALUE\n");
        return false;
      }
      O.Params[P.substr(0, Eq)] = std::stoll(P.substr(Eq + 1));
    } else if (A.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return false;
    } else {
      O.Files.push_back(A);
    }
  }
  if (O.Files.empty()) {
    std::fprintf(stderr,
                 "usage: slo_driver [--advise] [--lint] [--pbo] [--run] "
                 "[--dump-ir] "
                 "[--diags] [--diags-json] [--scheme=NAME] [--param N=V] "
                 "[--trace-json=P] [--stats-json=P] [--trace-summary] "
                 "[--sample-period N] [--sample-skid K] [--sample-seed S] "
                 "[--sample-latency-threshold T] [--profile-out=P] "
                 "[--profile-in=P] [--engine=walker|vm] "
                 "[--summary-cache D] [--advice-json=P] [--jobs N] "
                 "file.minic...\n");
    return false;
  }
  if (!O.ProfileInPath.empty() && O.SamplePeriod > 0) {
    std::fprintf(stderr,
                 "--profile-in replaces collection; --sample-period has "
                 "nothing to sample\n");
    return false;
  }
  return true;
}

bool writeFileOrComplain(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
    return false;
  }
  Out << Text;
  return true;
}

/// Folds the tracer's phase spans into per-name latency histograms
/// ("pipeline.<span>", microseconds) so --stats-json carries p50/p99 in
/// the same schema the daemon's GetMetrics endpoint serves.
std::string renderPipelineHistogramsJson(const Tracer &Trace) {
  HistogramRegistry Hist;
  for (const Tracer::Event &E : Trace.events())
    Hist.record("pipeline." + E.Name, E.DurMicros);
  return Hist.renderJson();
}

} // namespace

int main(int argc, char **argv) {
  DriverOptions O;
  if (!parseArgs(argc, argv, O))
    return 2;
  // Outside incremental mode the stats artifact describes an execution;
  // with --summary-cache it carries cache accounting + histograms and
  // stays advisory-only.
  if (!O.StatsJsonPath.empty() && !O.Incremental)
    O.Run = true;

  std::vector<std::string> Sources;
  for (const std::string &File : O.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Sources.push_back(SS.str());
  }

  if (!O.Incremental && !O.AdviceJsonPath.empty()) {
    std::fprintf(stderr, "--advice-json requires --summary-cache\n");
    return 2;
  }
  if (O.Incremental) {
    if (O.Pbo || O.Run || O.DumpIr || !O.ProfileInPath.empty()) {
      std::fprintf(stderr,
                   "--summary-cache is advisory-only: it cannot be combined "
                   "with --pbo, --run, --dump-ir or --profile-in\n");
      return 2;
    }
    if (!isStaticScheme(O.Scheme)) {
      std::fprintf(stderr,
                   "--summary-cache needs a static scheme (profiles are "
                   "whole-program artifacts)\n");
      return 2;
    }
    // --stats-json enables the tracer too: its phase spans fold into
    // the artifact's latency histograms.
    Tracer Trace;
    Tracer *TracePtr = (!O.TraceJsonPath.empty() || O.TraceSummary ||
                        !O.StatsJsonPath.empty())
                           ? &Trace
                           : nullptr;
    IncrementalOptions IO;
    IO.Summary.Scheme = O.Scheme;
    IO.Summary.Lint = O.Lint;
    IO.CacheDir = O.SummaryCacheDir;
    IO.Threads = static_cast<unsigned>(O.Jobs);
    IO.Trace = TracePtr;
    std::vector<TuSource> TUs;
    for (size_t I = 0; I < O.Files.size(); ++I)
      TUs.push_back({O.Files[I], Sources[I]});
    IncrementalResult R = runIncrementalAdvice(TUs, IO);
    for (const Diagnostic &D : R.CacheDiags)
      std::fprintf(stderr, "%s\n", D.renderText().c_str());
    if (!R.Ok) {
      for (const std::string &E : R.Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      return 1;
    }
    // Advice on stdout (byte-identical cold vs warm); cache accounting on
    // stderr, outside the parity-compared stream.
    std::printf("%s", R.AdviceText.c_str());
    std::fprintf(stderr,
                 "incremental: tus=%zu reused=%u recomputed=%u "
                 "schema-invalidated=%u cache hits=%u misses=%u corrupt=%u "
                 "stores=%u\n",
                 TUs.size(), R.TusReused, R.TusRecomputed,
                 R.TusSchemaInvalidated, R.Cache.Hits, R.Cache.Misses,
                 R.Cache.Corrupt, R.Cache.Stores);
    if (!O.AdviceJsonPath.empty() &&
        !writeFileOrComplain(O.AdviceJsonPath, R.AdviceJson))
      return 1;
    if (!O.StatsJsonPath.empty()) {
      std::string Json = formatString(
          "{\n  \"incremental\": {\"tus\": %zu, \"reused\": %u, "
          "\"recomputed\": %u, \"schema_invalidated\": %u, "
          "\"cache_hits\": %u, \"cache_misses\": %u, "
          "\"cache_corrupt\": %u, \"cache_stores\": %u},\n",
          TUs.size(), R.TusReused, R.TusRecomputed, R.TusSchemaInvalidated,
          R.Cache.Hits, R.Cache.Misses, R.Cache.Corrupt, R.Cache.Stores);
      Json += "  \"histograms\": " + renderPipelineHistogramsJson(Trace);
      Json += "\n}\n";
      if (!writeFileOrComplain(O.StatsJsonPath, Json))
        return 1;
    }
    if (!O.TraceJsonPath.empty() &&
        !writeFileOrComplain(O.TraceJsonPath, Trace.renderChromeJson()))
      return 1;
    if (O.TraceSummary)
      std::printf("%s", Trace.renderTextSummary().c_str());
    return 0;
  }

  IRContext Ctx;
  std::vector<std::string> Diags;
  std::unique_ptr<Module> M =
      compileProgram(Ctx, "program", Sources, Diags);
  if (!M) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "error: %s\n", D.c_str());
    return 1;
  }

  // Observability: a Tracer when --trace-json/--trace-summary was given,
  // a counter registry and per-field miss sink when --stats-json was.
  // --stats-json also turns the tracer on: phase spans fold into the
  // artifact's latency histograms.
  CounterRegistry Counters;
  MissAttribution Attribution;
  bool WantStats = !O.StatsJsonPath.empty();
  Tracer Trace;
  Tracer *TracePtr =
      (!O.TraceJsonPath.empty() || O.TraceSummary || WantStats) ? &Trace
                                                                : nullptr;

  FeedbackFile Train;
  bool HaveProfile = false;
  if (!O.ProfileInPath.empty()) {
    // The PBO use phase on a persisted profile. A corrupt or truncated
    // file is a structured diagnostic and a clean exit, never UB.
    DiagnosticEngine FeedbackDiags;
    FeedbackMatchResult MR =
        loadFeedbackFile(*M, O.ProfileInPath, Train, FeedbackDiags);
    std::fprintf(stderr, "%s", FeedbackDiags.renderText().c_str());
    if (!MR.Ok)
      return 1;
    HaveProfile = true;
  } else if (O.Pbo) {
    TraceSpan S(TracePtr, "profile-collection", "run");
    RunOptions PO;
    PO.IntParams = O.Params;
    PO.Profile = &Train;
    PO.Trace = TracePtr;
    PO.Engine = O.Engine;
    // Sampled collection: the field d-cache events of the profiling run
    // come from the Caliper stand-in instead of exact counting. Its
    // telemetry lands in the stats artifact as profile.samples_*.
    SampledPmuConfig PmuCfg;
    PmuCfg.Period = O.SamplePeriod ? O.SamplePeriod : 1;
    PmuCfg.Skid = O.SampleSkid;
    PmuCfg.Seed = O.SampleSeed;
    PmuCfg.LatencyThreshold = O.SampleLatencyThreshold;
    SampledPmu Pmu(PmuCfg);
    if (O.SamplePeriod > 0) {
      PO.Pmu = &Pmu;
      if (WantStats)
        PO.Counters = &Counters;
    }
    RunResult R = runProgram(*M, std::move(PO));
    if (R.Trapped) {
      std::fprintf(stderr, "profiling run trapped: %s\n",
                   R.TrapReason.c_str());
      return 1;
    }
    HaveProfile = true;
  }

  if (!O.ProfileOutPath.empty()) {
    if (!HaveProfile) {
      std::fprintf(stderr,
                   "--profile-out needs a collected profile (use --pbo, a "
                   "cache scheme, or --profile-in)\n");
      return 1;
    }
    if (!writeFileOrComplain(O.ProfileOutPath, serializeFeedback(*M, Train)))
      return 1;
  }

  PipelineOptions POpts;
  POpts.Scheme = O.Scheme;
  POpts.AnalyzeOnly = O.Advise;
  POpts.Lint = O.Lint;
  POpts.Trace = TracePtr;
  POpts.Counters = WantStats ? &Counters : nullptr;
  PipelineResult R =
      runStructLayoutPipeline(*M, POpts, HaveProfile ? &Train : nullptr);

  if (O.Lint) {
    for (const LintFinding &F : R.Lint.Findings)
      std::printf("lint: %s: lint.%s: %s%s%s\n", severityName(F.Severity),
                  lintKindName(F.Kind), F.Message.c_str(),
                  F.Fact.empty() ? "" : " -- ", F.Fact.c_str());
    std::printf("lint: %zu finding(s), %zu error(s), %zu pinned type(s)\n",
                R.Lint.Findings.size(),
                R.Lint.countSeverity(DiagSeverity::Error),
                R.Lint.Pinnings.Reasons.size());
  }

  if (O.Advise) {
    AdvisorInputs In;
    In.M = M.get();
    In.Legal = &R.Legality;
    In.Stats = &R.Stats;
    In.Cache = HaveProfile ? &Train : nullptr;
    In.Plans = &R.Plans;
    In.Refined = &R.Refined;
    std::printf("%s", renderAdvisorReport(In).c_str());
  } else {
    for (const std::string &Line : R.Summary.Log)
      std::printf("%s\n", Line.c_str());
    if (R.Summary.TypesTransformed == 0)
      std::printf("no types transformed\n");
  }

  if (O.DiagsText)
    std::printf("%s", R.Diags.renderText().c_str());
  if (O.DiagsJson)
    std::printf("%s\n", R.Diags.renderJson().c_str());

  if (O.DumpIr)
    std::printf("%s", printModule(*M).c_str());

  if (O.Run) {
    RunOptions RO;
    RO.IntParams = O.Params;
    RO.Trace = TracePtr;
    RO.Engine = O.Engine;
    if (WantStats) {
      RO.Counters = &Counters;
      RO.Attribution = &Attribution;
    }
    RunResult Res = runProgram(*M, std::move(RO));
    if (Res.Trapped) {
      std::fprintf(stderr, "run trapped: %s\n", Res.TrapReason.c_str());
      return 1;
    }
    std::printf("exit=%lld instructions=%llu cycles=%llu l1miss=%llu "
                "l2miss=%llu l3miss=%llu\n",
                static_cast<long long>(Res.ExitCode),
                static_cast<unsigned long long>(Res.Instructions),
                static_cast<unsigned long long>(Res.Cycles),
                static_cast<unsigned long long>(Res.L1.Misses),
                static_cast<unsigned long long>(Res.L2.Misses),
                static_cast<unsigned long long>(Res.L3.Misses));
    for (int64_t V : Res.PrintedInts)
      std::printf("print_i64: %lld\n", static_cast<long long>(V));
    for (double V : Res.PrintedFloats)
      std::printf("print_f64: %g\n", V);

    if (WantStats) {
      // One artifact: the counter snapshot (pipeline + run), the run
      // totals, and the per-field miss heatmap whose site misses
      // partition first_level_misses exactly.
      std::string Json = "{\n";
      Json += formatString(
          "  \"run\": {\"exit\": %lld, \"instructions\": %llu, "
          "\"cycles\": %llu, \"mem_stall_cycles\": %llu, \"loads\": %llu, "
          "\"stores\": %llu, \"first_level_misses\": %llu, "
          "\"heap_live_allocs\": %llu, \"heap_live_bytes\": %llu},\n",
          static_cast<long long>(Res.ExitCode),
          static_cast<unsigned long long>(Res.Instructions),
          static_cast<unsigned long long>(Res.Cycles),
          static_cast<unsigned long long>(Res.MemStallCycles),
          static_cast<unsigned long long>(Res.Loads),
          static_cast<unsigned long long>(Res.Stores),
          static_cast<unsigned long long>(Res.FirstLevelMisses),
          static_cast<unsigned long long>(Res.HeapLiveAllocs),
          static_cast<unsigned long long>(Res.HeapLiveBytes));
      Json += "  \"counters\": " + Counters.renderJson() + ",\n";
      Json += "  \"histograms\": " + renderPipelineHistogramsJson(Trace) +
              ",\n";
      Json += "  \"miss_attribution\": ";
      std::string Heatmap = Attribution.renderHeatmapJson();
      // Indent the nested object to keep the artifact readable.
      Json += Heatmap;
      Json += "}\n";
      if (!writeFileOrComplain(O.StatsJsonPath, Json))
        return 1;
    }
  }

  if (!O.TraceJsonPath.empty() &&
      !writeFileOrComplain(O.TraceJsonPath, Trace.renderChromeJson()))
    return 1;
  if (O.TraceSummary)
    std::printf("%s", Trace.renderTextSummary().c_str());
  return 0;
}
