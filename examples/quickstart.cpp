//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Compiles a small MiniC program with an obviously improvable structure
// layout, runs the full FE -> IPA -> BE pipeline, and shows: the legality
// verdicts, the planned transformation, the new record layouts, and the
// before/after simulated cycle counts.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"

#include <cstdio>

using namespace slo;

static const char *Program = R"(
  extern void print_i64(long v);
  struct record {
    long hits;        // hot: every lookup touches it
    long created_at;  // cold
    long next_key;    // hot
    long owner_id;    // cold
    long debug_tag;   // dead: written, never read
    long reserved;    // unused: never touched
  };
  struct record *table;
  void publish(struct record *p) { }   // pointers escape: split, not peel
  int main() {
    long n = 10000;
    table = (struct record*) malloc(n * sizeof(struct record));
    publish(table);
    for (long i = 0; i < n; i++) {
      table[i].hits = 0;
      table[i].created_at = i;
      table[i].next_key = (i + 7919) % n;  // full-period strided walk
      table[i].owner_id = i % 64;
      table[i].debug_tag = i;
    }
    // Hot phase: pointer-chasing lookups touching hits/next_key only.
    long key = 0;
    long sum = 0;
    for (long r = 0; r < 8; r++)
      for (long k = 0; k < 5; k++)
        for (long m = 0; m < 2; m++)
          for (long step = 0; step < n; step++) {
            table[key].hits = table[key].hits + 1;
            key = table[key].next_key;
            sum += key;
          }
    // Cold phase: one administrative sweep.
    long admin = 0;
    for (long i = 0; i < n; i++)
      admin += table[i].created_at + table[i].owner_id;
    print_i64(sum);
    print_i64(admin);
    free(table);
    return 0;
  }
)";

int main() {
  // 1. Compile (the frontend verifies the produced IR).
  IRContext Ctx;
  std::vector<std::string> Diags;
  std::unique_ptr<Module> M = compileMiniC(Ctx, "quickstart", Program, Diags);
  if (!M) {
    std::fprintf(stderr, "compile error: %s\n", Diags[0].c_str());
    return 1;
  }

  // 2. Baseline run on the simulated Itanium-like memory hierarchy.
  IRContext RefCtx;
  std::unique_ptr<Module> Ref =
      compileMiniC(RefCtx, "quickstart", Program, Diags);
  RunResult Before = runProgram(*Ref);
  std::printf("== baseline ==\n");
  std::printf("  cycles       : %llu\n",
              static_cast<unsigned long long>(Before.Cycles));
  std::printf("  L1 misses    : %llu\n",
              static_cast<unsigned long long>(Before.L1.Misses));
  std::printf("  record layout:\n%s\n",
              printRecordLayout(*Ctx.getTypes().lookupRecord("record"))
                  .c_str());

  // 3. The whole framework in one call: legality tests, affinity and
  //    hotness analysis (static ISPBO weights), heuristics, rewriting.
  PipelineOptions Opts;
  PipelineResult R = runStructLayoutPipeline(*M, Opts);

  std::printf("== analysis ==\n");
  for (const TypePlan &P : R.Plans)
    std::printf("  %-10s -> %-9s %s\n", P.Rec->getRecordName().c_str(),
                transformKindName(P.Kind), P.Reason.c_str());
  for (const std::string &Line : R.Summary.Log)
    std::printf("  %s\n", Line.c_str());

  std::printf("\n== new layouts ==\n");
  for (const AppliedTransform &A : R.Summary.Applied) {
    if (A.Split.HotRec)
      std::printf("%s", printRecordLayout(*A.Split.HotRec).c_str());
    if (A.Split.ColdRec)
      std::printf("%s", printRecordLayout(*A.Split.ColdRec).c_str());
  }

  // 4. Re-run the transformed program: identical output, fewer cycles.
  RunResult After = runProgram(*M);
  std::printf("\n== transformed ==\n");
  std::printf("  cycles       : %llu\n",
              static_cast<unsigned long long>(After.Cycles));
  std::printf("  L1 misses    : %llu\n",
              static_cast<unsigned long long>(After.L1.Misses));
  bool SameOutput = Before.PrintedInts == After.PrintedInts;
  std::printf("  output equal : %s\n", SameOutput ? "yes" : "NO (bug!)");
  double Speedup = 100.0 * (static_cast<double>(Before.Cycles) /
                                static_cast<double>(After.Cycles) -
                            1.0);
  std::printf("  performance  : %+.1f%%\n", Speedup);
  return SameOutput ? 0 : 1;
}
