//===- examples/DriverUtils.h - Shared CLI parsing helpers -----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flag-parsing helpers shared by the command-line drivers (slo_driver,
/// slo_fuzz, the bench binaries). Every numeric flag goes through
/// parseU64Arg, which rejects trailing junk and prints a diagnostic —
/// `--runs=abc` silently becoming 0 once made a fuzz leg "pass" without
/// running a single program.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_EXAMPLES_DRIVERUTILS_H
#define SLO_EXAMPLES_DRIVERUTILS_H

#include "runtime/Interpreter.h"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace slo {
namespace driver {

/// Accepts "--flag=V" or "--flag V"; fills \p Value and returns true when
/// \p A is \p Flag in either spelling.
inline bool valuedFlag(const std::string &Flag, int argc, char **argv, int &I,
                       std::string &Value) {
  std::string A = argv[I];
  if (A.rfind(Flag + "=", 0) == 0) {
    Value = A.substr(Flag.size() + 1);
    return true;
  }
  if (A == Flag && I + 1 < argc) {
    Value = argv[++I];
    return true;
  }
  return false;
}

/// Strict non-negative integer parse: the whole string must be digits
/// (no trailing junk, no empty value). Diagnoses on stderr and returns
/// false on anything else, so a typo can never silently become 0.
inline bool parseU64Arg(const std::string &Flag, const std::string &Value,
                        uint64_t &Out) {
  try {
    size_t Pos = 0;
    unsigned long long V = std::stoull(Value, &Pos);
    if (Pos != Value.size())
      throw std::invalid_argument(Value);
    Out = V;
    return true;
  } catch (...) {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
                 Flag.c_str(), Value.c_str());
    return false;
  }
}

/// Parses an --engine value ("walker" or "vm"); diagnoses and returns
/// false on anything else.
inline bool parseEngineArg(const std::string &Flag, const std::string &Value,
                           ExecEngine &Out) {
  if (parseEngineName(Value, Out))
    return true;
  std::fprintf(stderr, "%s expects 'walker' or 'vm', got '%s'\n", Flag.c_str(),
               Value.c_str());
  return false;
}

} // namespace driver
} // namespace slo

#endif // SLO_EXAMPLES_DRIVERUTILS_H
