//===- examples/moldyn_split.cpp - Splitting with and without PBO ---------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Runs the moldyn-like workload under both compilation modes the paper
// compares in Table 3: profile-based (PBO) and the non-profile ISPBO
// heuristics, showing which fields each mode splits out and the
// resulting speedups.
//
//   $ ./moldyn_split
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace slo;

static RunOptions withParams(const std::map<std::string, int64_t> &P) {
  RunOptions O;
  O.IntParams = P;
  O.Cache = CacheConfig::scaledItanium(); // See EXPERIMENTS.md.
  return O;
}

static void describePlan(const PipelineResult &R) {
  for (const AppliedTransform &A : R.Summary.Applied) {
    std::printf("  %s: hot {", A.Plan.Rec->getRecordName().c_str());
    for (size_t I = 0; I < A.Plan.HotFields.size(); ++I)
      std::printf("%s%s", I ? ", " : "",
                  A.Plan.Rec->getField(A.Plan.HotFields[I]).Name.c_str());
    std::printf("}  cold {");
    for (size_t I = 0; I < A.Plan.ColdFields.size(); ++I)
      std::printf("%s%s", I ? ", " : "",
                  A.Plan.Rec->getField(A.Plan.ColdFields[I]).Name.c_str());
    std::printf("}\n");
  }
}

int main() {
  const Workload *W = findWorkload("moldyn");

  IRContext RefCtx;
  std::unique_ptr<Module> Ref =
      compileProgramOrDie(RefCtx, W->Name, W->Sources);
  RunResult Before = runProgram(*Ref, withParams(W->RefParams));
  if (Before.Trapped) {
    std::fprintf(stderr, "baseline trapped: %s\n",
                 Before.TrapReason.c_str());
    return 1;
  }
  std::printf("baseline cycles: %llu\n\n",
              static_cast<unsigned long long>(Before.Cycles));

  struct ModeResult {
    const char *Name;
    double Perf;
    bool Same;
  };
  std::vector<ModeResult> Results;

  for (int UsePbo = 0; UsePbo < 2; ++UsePbo) {
    IRContext Ctx;
    std::unique_ptr<Module> M =
        compileProgramOrDie(Ctx, W->Name, W->Sources);
    FeedbackFile Train;
    PipelineOptions Opts;
    if (UsePbo) {
      // Profile collection on the *training* input (the PBO workflow).
      RunOptions ProfOpts = withParams(W->TrainParams);
      ProfOpts.Profile = &Train;
      runProgram(*M, std::move(ProfOpts));
      Opts.Scheme = WeightScheme::PBO;
    } else {
      Opts.Scheme = WeightScheme::ISPBO;
    }
    PipelineResult R =
        runStructLayoutPipeline(*M, Opts, UsePbo ? &Train : nullptr);

    std::printf("== %s ==\n", UsePbo ? "PBO (T_s = 3%)"
                                     : "ISPBO, no profile (T_s = 7.5%)");
    describePlan(R);
    RunResult After = runProgram(*M, withParams(W->RefParams));
    if (After.Trapped) {
      std::fprintf(stderr, "transformed run trapped: %s\n",
                   After.TrapReason.c_str());
      return 1;
    }
    double Perf = 100.0 * (static_cast<double>(Before.Cycles) /
                               static_cast<double>(After.Cycles) -
                           1.0);
    bool Same = Before.PrintedFloats == After.PrintedFloats;
    std::printf("  performance: %+.1f%%  output equal: %s\n\n", Perf,
                Same ? "yes" : "NO");
    Results.push_back({UsePbo ? "PBO" : "ISPBO", Perf, Same});
  }

  std::printf("paper reference: +21.8%% (no PBO), +30.9%% (PBO)\n");
  for (const ModeResult &R : Results)
    if (!R.Same)
      return 1;
  return 0;
}
