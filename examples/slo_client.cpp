//===- examples/slo_client.cpp - Advisory daemon client -------------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Command-line client for slo_served. Operations execute in argument
// order on one connection (except --hammer and --fuzz-frames, which own
// their connections):
//
//   slo_client (--port=N | --port-file=P) [ops...]
//     --ping                  protocol version round-trip
//     --put-source MOD=FILE   compile FILE as module MOD on the daemon
//     --put-summary FILE      upload a serialized ModuleSummary
//     --put-profile MOD=FILE  merge a feedback file into MOD's profile
//     --get-advice            print program-wide advice (stdout)
//     --json                  ... as JSON (affects --get-advice)
//     --get-profile MOD       print MOD's accumulated profile (stdout)
//     --stats                 print service counters + ingest digests
//     --batch                 send all --put-* ops as one Batch frame
//     --shutdown              ask the daemon to drain and stop
//     --hammer N              N threads re-ingest the --put-source TUs
//                             and read advice concurrently; every reply
//                             must be byte-identical (exit 1 otherwise)
//     --hammer-rounds R       rounds per hammer thread (default 10)
//     --fuzz-frames N         fire N malformed frames (the frame
//                             fuzzer); exit 1 if the daemon crashes,
//                             wedges, or answers garbage with success
//     --seed S                fuzzer seed (default 1)
//     --timeout-ms=N          per-round-trip budget (default 10000)
//
// RetryAfter responses are honored with the suggested backoff — the
// client is the retry loop, the daemon only sheds load.
//
//===----------------------------------------------------------------------===//

#include "DriverUtils.h"

#include "service/FrameFuzzer.h"
#include "service/ServiceClient.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace slo;
using namespace slo::service;
using namespace slo::driver;

namespace {

struct Op {
  enum Kind {
    Ping,
    PutSource,
    PutSummary,
    PutProfile,
    GetAdvice,
    GetProfile,
    Stats,
    Shutdown
  } K;
  std::string Module; // PutSource/PutProfile/GetProfile
  std::string Path;   // PutSource/PutSummary/PutProfile
};

bool readFileOrDiag(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "slo_client: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// "MOD=PATH" argument split.
bool splitModArg(const std::string &Flag, const std::string &V,
                 std::string &Module, std::string &Path) {
  size_t Eq = V.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 == V.size()) {
    std::fprintf(stderr, "%s expects MOD=FILE, got '%s'\n", Flag.c_str(),
                 V.c_str());
    return false;
  }
  Module = V.substr(0, Eq);
  Path = V.substr(Eq + 1);
  return true;
}

bool reportReply(const char *What, const ServiceReply &R) {
  if (!R.Transport) {
    std::fprintf(stderr, "slo_client: %s: transport failure\n", What);
    return false;
  }
  if (R.Op == Opcode::Error) {
    std::fprintf(stderr, "slo_client: %s: error %u: %s\n", What, R.Code,
                 R.Message.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Port = 0, HammerThreads = 0, HammerRounds = 10, FuzzFrames = 0,
           Seed = 1, TimeoutMs = 10000;
  std::string PortFile;
  bool Json = false, UseBatch = false;
  std::vector<Op> Ops;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I], V;
    if (valuedFlag("--port", argc, argv, I, V)) {
      if (!parseU64Arg("--port", V, Port))
        return 1;
    } else if (valuedFlag("--port-file", argc, argv, I, V)) {
      PortFile = V;
    } else if (A == "--ping") {
      Ops.push_back({Op::Ping, "", ""});
    } else if (valuedFlag("--put-source", argc, argv, I, V)) {
      Op O{Op::PutSource, "", ""};
      if (!splitModArg("--put-source", V, O.Module, O.Path))
        return 1;
      Ops.push_back(O);
    } else if (valuedFlag("--put-summary", argc, argv, I, V)) {
      Ops.push_back({Op::PutSummary, "", V});
    } else if (valuedFlag("--put-profile", argc, argv, I, V)) {
      Op O{Op::PutProfile, "", ""};
      if (!splitModArg("--put-profile", V, O.Module, O.Path))
        return 1;
      Ops.push_back(O);
    } else if (A == "--get-advice") {
      Ops.push_back({Op::GetAdvice, "", ""});
    } else if (A == "--json") {
      Json = true;
    } else if (valuedFlag("--get-profile", argc, argv, I, V)) {
      Ops.push_back({Op::GetProfile, V, ""});
    } else if (A == "--stats") {
      Ops.push_back({Op::Stats, "", ""});
    } else if (A == "--batch") {
      UseBatch = true;
    } else if (A == "--shutdown") {
      Ops.push_back({Op::Shutdown, "", ""});
    } else if (valuedFlag("--hammer", argc, argv, I, V)) {
      if (!parseU64Arg("--hammer", V, HammerThreads))
        return 1;
    } else if (valuedFlag("--hammer-rounds", argc, argv, I, V)) {
      if (!parseU64Arg("--hammer-rounds", V, HammerRounds))
        return 1;
    } else if (valuedFlag("--fuzz-frames", argc, argv, I, V)) {
      if (!parseU64Arg("--fuzz-frames", V, FuzzFrames))
        return 1;
    } else if (valuedFlag("--seed", argc, argv, I, V)) {
      if (!parseU64Arg("--seed", V, Seed))
        return 1;
    } else if (valuedFlag("--timeout-ms", argc, argv, I, V)) {
      if (!parseU64Arg("--timeout-ms", V, TimeoutMs))
        return 1;
    } else {
      std::fprintf(stderr, "slo_client: unknown argument '%s' (see the "
                           "header comment for usage)\n",
                   A.c_str());
      return A == "--help" ? 0 : 1;
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  if (!PortFile.empty()) {
    std::string Text;
    if (!readFileOrDiag(PortFile, Text))
      return 1;
    if (!parseU64Arg("--port-file", Text.substr(0, Text.find('\n')), Port))
      return 1;
  }
  if (Port == 0 || Port > 65535) {
    std::fprintf(stderr, "slo_client: need --port=N or --port-file=P\n");
    return 1;
  }

  auto Connect = [&]() {
    return connectTcpLocalhost(static_cast<uint16_t>(Port));
  };
  auto MakeClient = [&]() -> std::unique_ptr<ServiceClient> {
    int Fd = Connect();
    if (Fd < 0) {
      std::fprintf(stderr, "slo_client: cannot connect to 127.0.0.1:%llu\n",
                   static_cast<unsigned long long>(Port));
      return nullptr;
    }
    return std::make_unique<ServiceClient>(Fd, static_cast<int>(TimeoutMs));
  };

  //===--------------------------------------------------------------------===//
  // Frame fuzz mode
  //===--------------------------------------------------------------------===//
  if (FuzzFrames) {
    FrameFuzzOptions FO;
    FO.Seed = Seed;
    FO.Count = FuzzFrames;
    FO.ReplyTimeoutMillis = static_cast<int>(TimeoutMs);
    FrameFuzzReport Report;
    bool Ok = runFrameFuzz(FO, Connect, Report);
    std::fprintf(stderr,
                 "slo_client: fuzz: sent %zu, replied %zu, probes-ok %zu, "
                 "violations %zu\n",
                 Report.Sent, Report.Replied, Report.ProbesOk,
                 Report.Violations);
    if (!Ok) {
      std::fprintf(stderr, "slo_client: fuzz: FIRST VIOLATION: %s\n",
                   Report.FirstViolation.c_str());
      return 1;
    }
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Hammer mode: concurrent re-ingest + advice reads, all byte-identical
  //===--------------------------------------------------------------------===//
  if (HammerThreads) {
    struct Tu {
      std::string Module, Source;
    };
    std::vector<Tu> Tus;
    for (const Op &O : Ops) {
      if (O.K != Op::PutSource)
        continue;
      Tu T;
      T.Module = O.Module;
      if (!readFileOrDiag(O.Path, T.Source))
        return 1;
      Tus.push_back(std::move(T));
    }
    if (Tus.empty()) {
      std::fprintf(stderr,
                   "slo_client: --hammer needs at least one --put-source\n");
      return 1;
    }
    std::atomic<bool> Failed{false};
    std::mutex OutMutex;
    std::string Expected;
    std::vector<std::thread> Threads;
    for (uint64_t T = 0; T < HammerThreads; ++T) {
      Threads.emplace_back([&, T] {
        auto C = MakeClient();
        if (!C) {
          Failed = true;
          return;
        }
        for (uint64_t R = 0; R < HammerRounds && !Failed; ++R) {
          const Tu &U = Tus[(T + R) % Tus.size()];
          ServiceReply PR = C->putWithRetry(
              Opcode::PutSource, encodePutSource(U.Module, U.Source));
          if (!reportReply("hammer put-source", PR)) {
            Failed = true;
            return;
          }
          ServiceReply AR = C->getAdvice(false);
          if (!AR.Transport || AR.Op != Opcode::Advice) {
            reportReply("hammer get-advice", AR);
            Failed = true;
            return;
          }
          std::lock_guard<std::mutex> Lock(OutMutex);
          if (Expected.empty())
            Expected = AR.Text;
          else if (AR.Text != Expected) {
            std::fprintf(stderr, "slo_client: hammer: advice bytes DIVERGED "
                                 "between concurrent readers\n");
            Failed = true;
            return;
          }
        }
      });
    }
    for (auto &T : Threads)
      T.join();
    if (Failed)
      return 1;
    std::fprintf(stderr,
                 "slo_client: hammer: %llu threads x %llu rounds, advice "
                 "byte-identical throughout\n",
                 static_cast<unsigned long long>(HammerThreads),
                 static_cast<unsigned long long>(HammerRounds));
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Sequential ops (optionally batched)
  //===--------------------------------------------------------------------===//
  auto C = MakeClient();
  if (!C)
    return 1;

  if (UseBatch) {
    std::vector<std::pair<Opcode, std::string>> Items;
    for (const Op &O : Ops) {
      std::string Text;
      switch (O.K) {
      case Op::PutSource:
        if (!readFileOrDiag(O.Path, Text))
          return 1;
        Items.push_back({Opcode::PutSource, encodePutSource(O.Module, Text)});
        break;
      case Op::PutSummary: {
        if (!readFileOrDiag(O.Path, Text))
          return 1;
        std::string Body;
        appendString(Body, Text);
        Items.push_back({Opcode::PutSummary, Body});
        break;
      }
      case Op::PutProfile:
        if (!readFileOrDiag(O.Path, Text))
          return 1;
        Items.push_back({Opcode::PutProfile, encodePutProfile(O.Module, Text)});
        break;
      default:
        std::fprintf(stderr,
                     "slo_client: --batch carries --put-* ops only\n");
        return 1;
      }
    }
    ServiceReply R = C->batch(Items);
    if (!reportReply("batch", R))
      return 1;
    for (size_t I = 0; I < R.Inner.size(); ++I)
      if (!reportReply(("batch item " + std::to_string(I)).c_str(),
                       R.Inner[I]))
        return 1;
    std::fprintf(stderr, "slo_client: batch of %zu applied\n",
                 R.Inner.size());
    return 0;
  }

  for (const Op &O : Ops) {
    std::string Text;
    switch (O.K) {
    case Op::Ping: {
      ServiceReply R = C->ping();
      if (!R.Transport || R.Op != Opcode::Pong)
        return reportReply("ping", R), 1;
      std::fprintf(stderr, "slo_client: pong (protocol v%u)\n", R.Version);
      break;
    }
    case Op::PutSource: {
      if (!readFileOrDiag(O.Path, Text))
        return 1;
      ServiceReply R = C->putWithRetry(Opcode::PutSource,
                                       encodePutSource(O.Module, Text));
      if (!reportReply("put-source", R))
        return 1;
      break;
    }
    case Op::PutSummary: {
      if (!readFileOrDiag(O.Path, Text))
        return 1;
      std::string Body;
      appendString(Body, Text);
      ServiceReply R = C->putWithRetry(Opcode::PutSummary, Body);
      if (!reportReply("put-summary", R))
        return 1;
      break;
    }
    case Op::PutProfile: {
      if (!readFileOrDiag(O.Path, Text))
        return 1;
      ServiceReply R = C->putWithRetry(Opcode::PutProfile,
                                       encodePutProfile(O.Module, Text));
      if (!reportReply("put-profile", R))
        return 1;
      break;
    }
    case Op::GetAdvice: {
      ServiceReply R = C->getAdvice(Json);
      if (!R.Transport || R.Op != Opcode::Advice)
        return reportReply("get-advice", R), 1;
      std::fwrite(R.Text.data(), 1, R.Text.size(), stdout);
      break;
    }
    case Op::GetProfile: {
      ServiceReply R = C->getProfile(O.Module);
      if (!R.Transport || R.Op != Opcode::Profile)
        return reportReply("get-profile", R), 1;
      std::fwrite(R.Text.data(), 1, R.Text.size(), stdout);
      break;
    }
    case Op::Stats: {
      ServiceReply R = C->getStats();
      if (!R.Transport || R.Op != Opcode::Stats)
        return reportReply("stats", R), 1;
      std::fprintf(stdout, "%s\n", R.Text.c_str());
      break;
    }
    case Op::Shutdown: {
      ServiceReply R = C->shutdown();
      if (!R.Transport || R.Op != Opcode::Ok)
        return reportReply("shutdown", R), 1;
      std::fprintf(stderr, "slo_client: daemon draining\n");
      break;
    }
    }
  }
  return 0;
}
