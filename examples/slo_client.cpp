//===- examples/slo_client.cpp - Advisory daemon client -------------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Command-line client for slo_served. Operations execute in argument
// order on one connection (except --hammer and --fuzz-frames, which own
// their connections):
//
//   slo_client (--port=N | --port-file=P) [ops...]
//     --ping                  protocol version round-trip
//     --put-source MOD=FILE   compile FILE as module MOD on the daemon
//     --put-summary FILE      upload a serialized ModuleSummary
//     --put-profile MOD=FILE  merge a feedback file into MOD's profile
//     --get-advice            print program-wide advice (stdout)
//     --json                  ... as JSON (affects --get-advice)
//     --get-profile MOD       print MOD's accumulated profile (stdout)
//     --stats                 print service counters + ingest digests
//     --metrics               print GetMetrics JSON (counters +
//                             latency histogram snapshots)
//     --metrics-prom          ... as Prometheus text exposition
//     --batch                 send all --put-* ops as one Batch frame
//     --shutdown              ask the daemon to drain and stop
//     --trace-json=P          wrap every op in a Traced frame and write
//                             one merged Chrome trace (client spans +
//                             the daemon's in-band stage spans, all
//                             tagged with one propagated trace id) to P
//     --trace-id=N            trace id to propagate (default: derived
//                             from the clock and pid)
//     --stall-ms N            adversarial: start a frame, stall N ms
//                             mid-frame, disconnect (exercises the
//                             daemon's timeout + flight-recorder dump)
//     --hammer N              N threads re-ingest the --put-source TUs
//                             and read advice concurrently; every reply
//                             must be byte-identical (exit 1 otherwise)
//     --hammer-rounds R       rounds per hammer thread (default 10)
//     --fuzz-frames N         fire N malformed frames (the frame
//                             fuzzer); exit 1 if the daemon crashes,
//                             wedges, or answers garbage with success
//     --seed S                fuzzer seed (default 1)
//     --timeout-ms=N          per-round-trip budget (default 10000)
//
// RetryAfter responses are honored with the suggested backoff — the
// client is the retry loop, the daemon only sheds load.
//
//===----------------------------------------------------------------------===//

#include "DriverUtils.h"

#include "service/FrameFuzzer.h"
#include "service/ServiceClient.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace slo;
using namespace slo::service;
using namespace slo::driver;

namespace {

struct Op {
  enum Kind {
    Ping,
    PutSource,
    PutSummary,
    PutProfile,
    GetAdvice,
    GetProfile,
    Stats,
    Metrics,
    MetricsProm,
    Shutdown
  } K;
  std::string Module; // PutSource/PutProfile/GetProfile
  std::string Path;   // PutSource/PutSummary/PutProfile
};

const char *opKindName(Op::Kind K) {
  switch (K) {
  case Op::Ping:
    return "ping";
  case Op::PutSource:
    return "put-source";
  case Op::PutSummary:
    return "put-summary";
  case Op::PutProfile:
    return "put-profile";
  case Op::GetAdvice:
    return "get-advice";
  case Op::GetProfile:
    return "get-profile";
  case Op::Stats:
    return "stats";
  case Op::Metrics:
    return "metrics";
  case Op::MetricsProm:
    return "metrics-prom";
  case Op::Shutdown:
    return "shutdown";
  }
  return "?";
}

/// Collects one merged Chrome trace: the client's request spans (pid 1)
/// and the daemon's in-band stage spans (pid 2), every event tagged
/// with the propagated trace id. Daemon span timestamps arrive relative
/// to the daemon's receipt of the request and are re-based at the
/// client's request start — no cross-process clock sync needed.
struct MergedTrace {
  uint64_t TraceId = 0;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  std::string Events;

  uint64_t sinceEpochUs(std::chrono::steady_clock::time_point T) const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(T - Epoch)
            .count());
  }

  void add(const std::string &Name, int Pid, uint64_t TsUs, uint64_t DurUs,
           uint64_t RequestId) {
    if (!Events.empty())
      Events += ",\n";
    char Id[32];
    std::snprintf(Id, sizeof Id, "0x%llx",
                  static_cast<unsigned long long>(TraceId));
    Events += "  {\"name\": \"" + Name + "\", \"ph\": \"X\", \"ts\": " +
              std::to_string(TsUs) + ", \"dur\": " + std::to_string(DurUs) +
              ", \"pid\": " + std::to_string(Pid) + ", \"tid\": 1" +
              ", \"args\": {\"trace_id\": \"" + Id +
              "\", \"request_id\": " + std::to_string(RequestId) + "}}";
  }

  std::string render() const {
    std::string Out = "{\"traceEvents\": [\n";
    Out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"args\": {\"name\": \"slo_client\"}},\n";
    Out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
           "\"args\": {\"name\": \"slo_served\"}}";
    if (!Events.empty())
      Out += ",\n" + Events;
    Out += "\n]}\n";
    return Out;
  }
};

bool readFileOrDiag(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "slo_client: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// "MOD=PATH" argument split.
bool splitModArg(const std::string &Flag, const std::string &V,
                 std::string &Module, std::string &Path) {
  size_t Eq = V.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 == V.size()) {
    std::fprintf(stderr, "%s expects MOD=FILE, got '%s'\n", Flag.c_str(),
                 V.c_str());
    return false;
  }
  Module = V.substr(0, Eq);
  Path = V.substr(Eq + 1);
  return true;
}

bool reportReply(const char *What, const ServiceReply &R) {
  if (!R.Transport) {
    std::fprintf(stderr, "slo_client: %s: transport failure\n", What);
    return false;
  }
  if (R.Op == Opcode::Error) {
    std::fprintf(stderr, "slo_client: %s: error %u: %s\n", What, R.Code,
                 R.Message.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Port = 0, HammerThreads = 0, HammerRounds = 10, FuzzFrames = 0,
           Seed = 1, TimeoutMs = 10000, TraceId = 0, StallMs = 0;
  std::string PortFile, TraceJsonPath;
  bool Json = false, UseBatch = false, HaveTraceId = false, HaveStall = false;
  std::vector<Op> Ops;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I], V;
    if (valuedFlag("--port", argc, argv, I, V)) {
      if (!parseU64Arg("--port", V, Port))
        return 1;
    } else if (valuedFlag("--port-file", argc, argv, I, V)) {
      PortFile = V;
    } else if (A == "--ping") {
      Ops.push_back({Op::Ping, "", ""});
    } else if (valuedFlag("--put-source", argc, argv, I, V)) {
      Op O{Op::PutSource, "", ""};
      if (!splitModArg("--put-source", V, O.Module, O.Path))
        return 1;
      Ops.push_back(O);
    } else if (valuedFlag("--put-summary", argc, argv, I, V)) {
      Ops.push_back({Op::PutSummary, "", V});
    } else if (valuedFlag("--put-profile", argc, argv, I, V)) {
      Op O{Op::PutProfile, "", ""};
      if (!splitModArg("--put-profile", V, O.Module, O.Path))
        return 1;
      Ops.push_back(O);
    } else if (A == "--get-advice") {
      Ops.push_back({Op::GetAdvice, "", ""});
    } else if (A == "--json") {
      Json = true;
    } else if (valuedFlag("--get-profile", argc, argv, I, V)) {
      Ops.push_back({Op::GetProfile, V, ""});
    } else if (A == "--stats") {
      Ops.push_back({Op::Stats, "", ""});
    } else if (A == "--metrics") {
      Ops.push_back({Op::Metrics, "", ""});
    } else if (A == "--metrics-prom") {
      Ops.push_back({Op::MetricsProm, "", ""});
    } else if (A.rfind("--trace-json=", 0) == 0) {
      TraceJsonPath = A.substr(13);
    } else if (valuedFlag("--trace-id", argc, argv, I, V)) {
      if (!parseU64Arg("--trace-id", V, TraceId))
        return 1;
      HaveTraceId = true;
    } else if (valuedFlag("--stall-ms", argc, argv, I, V)) {
      if (!parseU64Arg("--stall-ms", V, StallMs))
        return 1;
      HaveStall = true;
    } else if (A == "--batch") {
      UseBatch = true;
    } else if (A == "--shutdown") {
      Ops.push_back({Op::Shutdown, "", ""});
    } else if (valuedFlag("--hammer", argc, argv, I, V)) {
      if (!parseU64Arg("--hammer", V, HammerThreads))
        return 1;
    } else if (valuedFlag("--hammer-rounds", argc, argv, I, V)) {
      if (!parseU64Arg("--hammer-rounds", V, HammerRounds))
        return 1;
    } else if (valuedFlag("--fuzz-frames", argc, argv, I, V)) {
      if (!parseU64Arg("--fuzz-frames", V, FuzzFrames))
        return 1;
    } else if (valuedFlag("--seed", argc, argv, I, V)) {
      if (!parseU64Arg("--seed", V, Seed))
        return 1;
    } else if (valuedFlag("--timeout-ms", argc, argv, I, V)) {
      if (!parseU64Arg("--timeout-ms", V, TimeoutMs))
        return 1;
    } else {
      std::fprintf(stderr, "slo_client: unknown argument '%s' (see the "
                           "header comment for usage)\n",
                   A.c_str());
      return A == "--help" ? 0 : 1;
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  if (!PortFile.empty()) {
    std::string Text;
    if (!readFileOrDiag(PortFile, Text))
      return 1;
    if (!parseU64Arg("--port-file", Text.substr(0, Text.find('\n')), Port))
      return 1;
  }
  if (Port == 0 || Port > 65535) {
    std::fprintf(stderr, "slo_client: need --port=N or --port-file=P\n");
    return 1;
  }

  auto Connect = [&]() {
    return connectTcpLocalhost(static_cast<uint16_t>(Port));
  };
  auto MakeClient = [&]() -> std::unique_ptr<ServiceClient> {
    int Fd = Connect();
    if (Fd < 0) {
      std::fprintf(stderr, "slo_client: cannot connect to 127.0.0.1:%llu\n",
                   static_cast<unsigned long long>(Port));
      return nullptr;
    }
    return std::make_unique<ServiceClient>(Fd, static_cast<int>(TimeoutMs));
  };

  //===--------------------------------------------------------------------===//
  // Stall mode: start a frame, go silent, disconnect
  //===--------------------------------------------------------------------===//
  if (HaveStall) {
    int Fd = Connect();
    if (Fd < 0) {
      std::fprintf(stderr, "slo_client: cannot connect to 127.0.0.1:%llu\n",
                   static_cast<unsigned long long>(Port));
      return 1;
    }
    // Declare a 100-byte frame, deliver the opcode only, then stall:
    // the daemon's mid-frame timeout must fire and its flight recorder
    // must dump.
    std::string Partial;
    appendU32(Partial, 100);
    Partial.push_back(static_cast<char>(Opcode::PutSource));
    writeAll(Fd, Partial, static_cast<int>(TimeoutMs));
    std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));
    ::close(Fd);
    std::fprintf(stderr, "slo_client: stalled %llu ms mid-frame and hung up\n",
                 static_cast<unsigned long long>(StallMs));
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Frame fuzz mode
  //===--------------------------------------------------------------------===//
  if (FuzzFrames) {
    FrameFuzzOptions FO;
    FO.Seed = Seed;
    FO.Count = FuzzFrames;
    FO.ReplyTimeoutMillis = static_cast<int>(TimeoutMs);
    FrameFuzzReport Report;
    bool Ok = runFrameFuzz(FO, Connect, Report);
    std::fprintf(stderr,
                 "slo_client: fuzz: sent %zu, replied %zu, probes-ok %zu, "
                 "violations %zu\n",
                 Report.Sent, Report.Replied, Report.ProbesOk,
                 Report.Violations);
    if (!Ok) {
      std::fprintf(stderr, "slo_client: fuzz: FIRST VIOLATION: %s\n",
                   Report.FirstViolation.c_str());
      return 1;
    }
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Hammer mode: concurrent re-ingest + advice reads, all byte-identical
  //===--------------------------------------------------------------------===//
  if (HammerThreads) {
    struct Tu {
      std::string Module, Source;
    };
    std::vector<Tu> Tus;
    for (const Op &O : Ops) {
      if (O.K != Op::PutSource)
        continue;
      Tu T;
      T.Module = O.Module;
      if (!readFileOrDiag(O.Path, T.Source))
        return 1;
      Tus.push_back(std::move(T));
    }
    if (Tus.empty()) {
      std::fprintf(stderr,
                   "slo_client: --hammer needs at least one --put-source\n");
      return 1;
    }
    std::atomic<bool> Failed{false};
    std::mutex OutMutex;
    std::string Expected;
    std::vector<std::thread> Threads;
    for (uint64_t T = 0; T < HammerThreads; ++T) {
      Threads.emplace_back([&, T] {
        auto C = MakeClient();
        if (!C) {
          Failed = true;
          return;
        }
        for (uint64_t R = 0; R < HammerRounds && !Failed; ++R) {
          const Tu &U = Tus[(T + R) % Tus.size()];
          ServiceReply PR = C->putWithRetry(
              Opcode::PutSource, encodePutSource(U.Module, U.Source));
          if (!reportReply("hammer put-source", PR)) {
            Failed = true;
            return;
          }
          ServiceReply AR = C->getAdvice(false);
          if (!AR.Transport || AR.Op != Opcode::Advice) {
            reportReply("hammer get-advice", AR);
            Failed = true;
            return;
          }
          std::lock_guard<std::mutex> Lock(OutMutex);
          if (Expected.empty())
            Expected = AR.Text;
          else if (AR.Text != Expected) {
            std::fprintf(stderr, "slo_client: hammer: advice bytes DIVERGED "
                                 "between concurrent readers\n");
            Failed = true;
            return;
          }
        }
      });
    }
    for (auto &T : Threads)
      T.join();
    if (Failed)
      return 1;
    std::fprintf(stderr,
                 "slo_client: hammer: %llu threads x %llu rounds, advice "
                 "byte-identical throughout\n",
                 static_cast<unsigned long long>(HammerThreads),
                 static_cast<unsigned long long>(HammerRounds));
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Sequential ops (optionally batched)
  //===--------------------------------------------------------------------===//
  auto C = MakeClient();
  if (!C)
    return 1;

  if (UseBatch) {
    std::vector<std::pair<Opcode, std::string>> Items;
    for (const Op &O : Ops) {
      std::string Text;
      switch (O.K) {
      case Op::PutSource:
        if (!readFileOrDiag(O.Path, Text))
          return 1;
        Items.push_back({Opcode::PutSource, encodePutSource(O.Module, Text)});
        break;
      case Op::PutSummary: {
        if (!readFileOrDiag(O.Path, Text))
          return 1;
        std::string Body;
        appendString(Body, Text);
        Items.push_back({Opcode::PutSummary, Body});
        break;
      }
      case Op::PutProfile:
        if (!readFileOrDiag(O.Path, Text))
          return 1;
        Items.push_back({Opcode::PutProfile, encodePutProfile(O.Module, Text)});
        break;
      default:
        std::fprintf(stderr,
                     "slo_client: --batch carries --put-* ops only\n");
        return 1;
      }
    }
    ServiceReply R = C->batch(Items);
    if (!reportReply("batch", R))
      return 1;
    for (size_t I = 0; I < R.Inner.size(); ++I)
      if (!reportReply(("batch item " + std::to_string(I)).c_str(),
                       R.Inner[I]))
        return 1;
    std::fprintf(stderr, "slo_client: batch of %zu applied\n",
                 R.Inner.size());
    return 0;
  }

  // One merged trace across every op on this connection: client request
  // spans plus the daemon's in-band stage spans, all sharing one
  // propagated trace id.
  const bool Tracing = !TraceJsonPath.empty();
  MergedTrace Trace;
  if (Tracing)
    Trace.TraceId =
        HaveTraceId
            ? TraceId
            : (static_cast<uint64_t>(std::chrono::steady_clock::now()
                                         .time_since_epoch()
                                         .count()) ^
               (static_cast<uint64_t>(::getpid()) << 32));
  uint64_t NextRequestId = 1;

  auto RoundTrip = [&](Op::Kind K, Opcode Code, const std::string &Body,
                       bool Retry) -> ServiceReply {
    if (!Tracing)
      return Retry ? C->putWithRetry(Code, Body) : C->call(Code, Body);
    // Retries keep the request id: they are attempts of one logical
    // request, and each attempt contributes its own span.
    uint64_t ReqId = NextRequestId++;
    for (;;) {
      auto Start = std::chrono::steady_clock::now();
      ServiceReply R = C->tracedCall(Code, Body, Trace.TraceId, ReqId);
      auto End = std::chrono::steady_clock::now();
      uint64_t StartUs = Trace.sinceEpochUs(Start);
      uint64_t DurUs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
              .count());
      Trace.add(std::string("client/") + opKindName(K), 1, StartUs, DurUs,
                ReqId);
      if (R.Transport && R.WasTraced) {
        if (R.TraceId != Trace.TraceId || R.RequestId != ReqId)
          std::fprintf(stderr,
                       "slo_client: WARNING: daemon echoed trace ids "
                       "0x%llx/%llu, expected 0x%llx/%llu\n",
                       static_cast<unsigned long long>(R.TraceId),
                       static_cast<unsigned long long>(R.RequestId),
                       static_cast<unsigned long long>(Trace.TraceId),
                       static_cast<unsigned long long>(ReqId));
        for (const DaemonSpan &S : R.Spans)
          Trace.add("daemon/" + S.Name, 2, StartUs + S.StartMicros,
                    S.DurMicros, ReqId);
      }
      if (!(Retry && R.Transport && R.Op == Opcode::RetryAfter))
        return R;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(R.RetryMillis ? R.RetryMillis : 1));
    }
  };

  int Rc = 0;
  for (const Op &O : Ops) {
    std::string Text;
    switch (O.K) {
    case Op::Ping: {
      ServiceReply R = RoundTrip(O.K, Opcode::Ping, "", false);
      if (!R.Transport || R.Op != Opcode::Pong) {
        reportReply("ping", R);
        Rc = 1;
        break;
      }
      std::fprintf(stderr, "slo_client: pong (protocol v%u)\n", R.Version);
      break;
    }
    case Op::PutSource: {
      if (!readFileOrDiag(O.Path, Text)) {
        Rc = 1;
        break;
      }
      ServiceReply R = RoundTrip(O.K, Opcode::PutSource,
                                 encodePutSource(O.Module, Text), true);
      if (!reportReply("put-source", R))
        Rc = 1;
      break;
    }
    case Op::PutSummary: {
      if (!readFileOrDiag(O.Path, Text)) {
        Rc = 1;
        break;
      }
      std::string Body;
      appendString(Body, Text);
      ServiceReply R = RoundTrip(O.K, Opcode::PutSummary, Body, true);
      if (!reportReply("put-summary", R))
        Rc = 1;
      break;
    }
    case Op::PutProfile: {
      if (!readFileOrDiag(O.Path, Text)) {
        Rc = 1;
        break;
      }
      ServiceReply R = RoundTrip(O.K, Opcode::PutProfile,
                                 encodePutProfile(O.Module, Text), true);
      if (!reportReply("put-profile", R))
        Rc = 1;
      break;
    }
    case Op::GetAdvice: {
      std::string Body;
      Body.push_back(Json ? 1 : 0);
      ServiceReply R = RoundTrip(O.K, Opcode::GetAdvice, Body, false);
      if (!R.Transport || R.Op != Opcode::Advice) {
        reportReply("get-advice", R);
        Rc = 1;
        break;
      }
      std::fwrite(R.Text.data(), 1, R.Text.size(), stdout);
      break;
    }
    case Op::GetProfile: {
      std::string Body;
      appendString(Body, O.Module);
      ServiceReply R = RoundTrip(O.K, Opcode::GetProfile, Body, false);
      if (!R.Transport || R.Op != Opcode::Profile) {
        reportReply("get-profile", R);
        Rc = 1;
        break;
      }
      std::fwrite(R.Text.data(), 1, R.Text.size(), stdout);
      break;
    }
    case Op::Stats: {
      ServiceReply R = RoundTrip(O.K, Opcode::GetStats, "", false);
      if (!R.Transport || R.Op != Opcode::Stats) {
        reportReply("stats", R);
        Rc = 1;
        break;
      }
      std::fprintf(stdout, "%s\n", R.Text.c_str());
      break;
    }
    case Op::Metrics:
    case Op::MetricsProm: {
      std::string Body;
      Body.push_back(O.K == Op::MetricsProm ? 1 : 0);
      ServiceReply R = RoundTrip(O.K, Opcode::GetMetrics, Body, false);
      if (!R.Transport || R.Op != Opcode::Metrics) {
        reportReply(opKindName(O.K), R);
        Rc = 1;
        break;
      }
      std::fwrite(R.Text.data(), 1, R.Text.size(), stdout);
      if (!R.Text.empty() && R.Text.back() != '\n')
        std::fputc('\n', stdout);
      break;
    }
    case Op::Shutdown: {
      // Shutdown may not nest inside Traced; always send it plain.
      ServiceReply R = C->shutdown();
      if (!R.Transport || R.Op != Opcode::Ok) {
        reportReply("shutdown", R);
        Rc = 1;
        break;
      }
      std::fprintf(stderr, "slo_client: daemon draining\n");
      break;
    }
    }
    if (Rc)
      break;
  }

  if (Tracing) {
    std::ofstream Out(TraceJsonPath, std::ios::binary | std::ios::trunc);
    Out << Trace.render();
    if (!Out.good()) {
      std::fprintf(stderr, "slo_client: cannot write %s\n",
                   TraceJsonPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "slo_client: merged trace (id 0x%llx) -> %s\n",
                 static_cast<unsigned long long>(Trace.TraceId),
                 TraceJsonPath.c_str());
  }
  return Rc;
}
