//===- examples/slo_fuzz.cpp - Differential fuzzing driver ----------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Generates random MiniC programs and differentially checks the layout
// pipeline's oracles (output + leak census, verifier, legality
// inclusion, miss-attribution partition, lint cross-validation) on
// each; optionally replays a committed corpus first. Failures can be
// auto-minimized into self-contained .minic repro files.
//
//   slo_fuzz --runs 500 --seed 1 --corpus tests/corpus --minimize
//
// Exit codes: 0 all passed, 1 failures found, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "DriverUtils.h"

#include "fuzz/DifferentialHarness.h"
#include "fuzz/IncrementalParity.h"
#include "fuzz/ProgramFuzzer.h"
#include "fuzz/Reducer.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace slo;

namespace {

struct DriverOptions {
  unsigned Runs = 100;
  uint64_t Seed = 1;
  unsigned Jobs = 0; // 0 = hardware concurrency
  bool Minimize = false;
  bool InjectLegalityBug = false;
  bool InjectLintBug = false;
  HazardKind InjectHazard = HazardKind::None;
  bool SampledProfiles = false;
  bool EngineParity = false;
  bool InjectVmBug = false;
  ExecEngine Engine = ExecEngine::Auto;
  bool IncrementalParity = false;
  bool InjectStaleSummary = false;
  std::string CorpusDir;
  std::string OutDir = ".";
};

int usage() {
  std::fprintf(
      stderr,
      "usage: slo_fuzz [--runs N] [--seed S] [--jobs J] [--minimize]\n"
      "                [--corpus DIR] [--out DIR] [--inject-legality-bug]\n"
      "                [--inject-hazard uaf|uninit] [--inject-lint-bug]\n"
      "                [--sampled-profiles] [--engine walker|vm]\n"
      "                [--engine-parity] [--inject-vm-bug]\n"
      "                [--incremental-parity] [--inject-stale-summary]\n"
      "\n"
      "Replays DIR/*.minic (sorted) when --corpus is given, then runs N\n"
      "random differential tests derived from seed S. Every failure is\n"
      "reported with its seed; --minimize shrinks each to a .minic repro\n"
      "in --out (default .). --inject-legality-bug deliberately breaks\n"
      "the legality verdicts to prove the harness catches it.\n"
      "--inject-hazard plants a dangling use (uaf) or uninitialized\n"
      "read (uninit) into every generated program; the lint oracle must\n"
      "flag each one. Adding --inject-lint-bug blinds the lint suite to\n"
      "free(), so an injected uaf must flip into a lint-oracle failure\n"
      "(proving the oracle is not vacuous).\n"
      "--incremental-parity switches to the incremental-pipeline sweep:\n"
      "each run generates a multi-TU corpus, runs the FE->IPA->BE\n"
      "advisory pipeline cold against a scratch summary cache, mutates\n"
      "one TU, and requires the warm re-run's advice to be byte-identical\n"
      "to a cold run (and the unmutated TUs to actually be reused).\n"
      "--inject-stale-summary deliberately serves the stale cache entry,\n"
      "so the parity sweep must fail (non-vacuity check).\n"
      "--sampled-profiles plans from a sampled d-cache profile (DMISS,\n"
      "period 61, skid 2) round-tripped through the feedback format,\n"
      "instead of static estimates — the oracles must still hold.\n"
      "--engine selects the execution engine for the differential runs\n"
      "(default: SLO_ENGINE, else the tree walker). --engine-parity adds\n"
      "the engine-parity oracle: every module (base and transformed) runs\n"
      "under BOTH engines, which must agree bit-for-bit on results,\n"
      "attribution, and profiles. --inject-vm-bug deliberately mis-charges\n"
      "VM load cycles so --engine-parity must fail (non-vacuity check).\n");
  return 2;
}

struct ShardResult {
  bool Ran = false;
  DifferentialOutcome Outcome;
  FuzzConfig Config;
  FuzzProgram Program;
};

std::string countLines(const std::string &Text) {
  return std::to_string(
      std::count(Text.begin(), Text.end(), '\n'));
}

void writeRepro(const DriverOptions &Opts, const std::string &FileName,
                const std::string &Header, const std::string &Source) {
  std::filesystem::create_directories(Opts.OutDir);
  std::string Path = Opts.OutDir + "/" + FileName;
  std::ofstream Out(Path);
  Out << Header << Source;
  std::printf("[slo_fuzz]   repro written to %s (%s lines)\n", Path.c_str(),
              countLines(Source).c_str());
}

/// Replays every corpus file; returns the failure count.
unsigned runCorpus(const DriverOptions &Opts,
                   const DifferentialOptions &DOpts) {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Opts.CorpusDir))
    if (Entry.path().extension() == ".minic")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());

  unsigned Failures = 0;
  for (const auto &Path : Files) {
    std::ifstream In(Path);
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Source = Buf.str();
    std::string Name = Path.stem().string();
    DifferentialOutcome O = runDifferential(Name, Source, DOpts);
    if (O.Passed)
      continue;
    ++Failures;
    std::printf("[slo_fuzz] FAIL corpus %s: oracle=%s %s\n", Name.c_str(),
                fuzzOracleName(O.Oracle), O.Detail.c_str());
    if (Opts.Minimize) {
      FuzzOracle Want = O.Oracle;
      ReduceStats RS;
      std::string Reduced = reduceSourceLines(
          Source,
          [&](const std::string &Candidate) {
            return runDifferential(Name, Candidate, DOpts).Oracle == Want;
          },
          &RS);
      std::string Header = "// slo_fuzz corpus repro: file=" + Name +
                           " oracle=" + fuzzOracleName(Want) + "\n// " +
                           O.Detail + "\n";
      writeRepro(Opts, "slo_fuzz_repro_" + Name + ".minic", Header, Reduced);
    }
  }
  std::printf("[slo_fuzz] corpus: %zu file(s), %u failure(s)\n", Files.size(),
              Failures);
  return Failures;
}

/// Runs the random sweep; returns the failure count.
unsigned runRandom(const DriverOptions &Opts,
                   const DifferentialOptions &DOpts) {
  // Child streams are split off up front on this thread, so the sweep is
  // reproducible for a given --seed at any --jobs value, and shard K of
  // a sweep equals shard K of any longer sweep with the same seed.
  Rng Parent(Opts.Seed);
  std::vector<uint64_t> Seeds(Opts.Runs);
  for (unsigned I = 0; I < Opts.Runs; ++I)
    Seeds[I] = Parent.split().next();

  std::vector<ShardResult> Results(Opts.Runs);
  unsigned Jobs = Opts.Jobs ? Opts.Jobs
                            : std::max(1u, std::thread::hardware_concurrency());
  {
    ThreadPool Pool(Jobs);
    for (unsigned I = 0; I < Opts.Runs; ++I)
      Pool.enqueue([I, &Seeds, &Results, &DOpts] {
        ShardResult &R = Results[I];
        R.Config = randomFuzzConfig(Seeds[I]);
        R.Program = generateFuzzProgram(R.Config);
        injectHazard(R.Program, DOpts.ExpectedHazard);
        R.Outcome =
            runDifferential(R.Config.Name, R.Program.render(), DOpts);
        R.Ran = true;
      });
    Pool.wait();
  }

  // Failures are reported (and minimized) in shard order, independent of
  // scheduling.
  unsigned Failures = 0;
  for (unsigned I = 0; I < Opts.Runs; ++I) {
    const ShardResult &R = Results[I];
    if (!R.Ran || R.Outcome.Passed)
      continue;
    ++Failures;
    std::printf("[slo_fuzz] FAIL run %u (seed %llu): oracle=%s %s\n", I,
                static_cast<unsigned long long>(R.Config.Seed),
                fuzzOracleName(R.Outcome.Oracle), R.Outcome.Detail.c_str());
    if (!Opts.Minimize)
      continue;
    FuzzOracle Want = R.Outcome.Oracle;
    ReduceStats RS;
    FuzzProgram Reduced = reduceProgram(
        R.Program,
        [&](const FuzzProgram &Candidate) {
          return runDifferential(Candidate.Name, Candidate.render(), DOpts)
                     .Oracle == Want;
        },
        &RS);
    std::ostringstream Header;
    Header << "// slo_fuzz repro: sweep-seed=" << Opts.Seed << " run=" << I
           << " program-seed=" << R.Config.Seed << "\n"
           << "// oracle=" << fuzzOracleName(Want) << ": " << R.Outcome.Detail
           << "\n"
           << "// reduce: " << RS.Attempts << " attempts, " << RS.Accepted
           << " accepted\n"
           << "// config: " << R.Config.describe() << "\n";
    writeRepro(Opts,
               "slo_fuzz_repro_seed" + std::to_string(R.Config.Seed) +
                   ".minic",
               Header.str(), Reduced.render());
  }
  std::printf("[slo_fuzz] random: %u run(s), %u failure(s)\n", Opts.Runs,
              Failures);
  return Failures;
}

/// The incremental-parity sweep (--incremental-parity): independent of
/// the transform-differential harness, so it gets its own shard loop.
unsigned runIncrementalParitySweep(const DriverOptions &Opts) {
  Rng Parent(Opts.Seed);
  std::vector<uint64_t> Seeds(Opts.Runs);
  for (unsigned I = 0; I < Opts.Runs; ++I)
    Seeds[I] = Parent.split().next();

  std::filesystem::path ScratchRoot =
      std::filesystem::temp_directory_path() /
      ("slo_incpar_" + std::to_string(::getpid()));

  std::vector<IncrementalParityOutcome> Results(Opts.Runs);
  unsigned Jobs = Opts.Jobs ? Opts.Jobs
                            : std::max(1u, std::thread::hardware_concurrency());
  {
    ThreadPool Pool(Jobs);
    for (unsigned I = 0; I < Opts.Runs; ++I)
      Pool.enqueue([I, &Seeds, &Results, &Opts, &ScratchRoot] {
        IncrementalParityConfig Cfg;
        Cfg.Seed = Seeds[I];
        Cfg.InjectStaleSummary = Opts.InjectStaleSummary;
        Cfg.CacheDir = (ScratchRoot / ("run" + std::to_string(I))).string();
        Results[I] = runIncrementalParity(Cfg);
      });
    Pool.wait();
  }
  std::error_code Ec;
  std::filesystem::remove_all(ScratchRoot, Ec);

  unsigned Failures = 0;
  for (unsigned I = 0; I < Opts.Runs; ++I) {
    const IncrementalParityOutcome &R = Results[I];
    if (R.Passed)
      continue;
    ++Failures;
    std::printf("[slo_fuzz] FAIL incremental run %u (seed %llu): oracle=%s "
                "mutated-tu=%d (%s) %s\n",
                I, static_cast<unsigned long long>(Seeds[I]),
                fuzzOracleName(R.Oracle), R.MutatedTu,
                R.MutationDetail.c_str(), R.Detail.c_str());
    // The witness is the whole corpus: write every TU so the failure
    // replays with `slo_driver --summary-cache <dir> *.minic`.
    for (const TuSource &Tu : R.Corpus) {
      std::ostringstream Header;
      Header << "// slo_fuzz incremental-parity repro: sweep-seed="
             << Opts.Seed << " run=" << I << " seed=" << Seeds[I] << "\n"
             << "// oracle=" << fuzzOracleName(R.Oracle) << ": " << R.Detail
             << "\n";
      writeRepro(Opts,
                 "slo_fuzz_incpar_seed" + std::to_string(Seeds[I]) + "_" +
                     Tu.Name,
                 Header.str(), Tu.Source);
    }
  }
  std::printf("[slo_fuzz] incremental-parity: %u run(s), %u failure(s)\n",
              Opts.Runs, Failures);
  return Failures;
}

} // namespace

int main(int argc, char **argv) {
  DriverOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto NextValue = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    // Numeric flags go through the strict parser: '--runs abc' once
    // parsed as 0 and made the sweep "pass" without running anything.
    if (A == "--runs") {
      const char *V = NextValue();
      uint64_t N;
      if (!V || !driver::parseU64Arg("--runs", V, N))
        return usage();
      Opts.Runs = static_cast<unsigned>(N);
    } else if (A == "--seed") {
      const char *V = NextValue();
      if (!V || !driver::parseU64Arg("--seed", V, Opts.Seed))
        return usage();
    } else if (A == "--jobs") {
      const char *V = NextValue();
      uint64_t N;
      if (!V || !driver::parseU64Arg("--jobs", V, N))
        return usage();
      Opts.Jobs = static_cast<unsigned>(N);
    } else if (A == "--engine") {
      const char *V = NextValue();
      if (!V || !driver::parseEngineArg("--engine", V, Opts.Engine))
        return usage();
    } else if (A == "--engine-parity") {
      Opts.EngineParity = true;
    } else if (A == "--incremental-parity") {
      Opts.IncrementalParity = true;
    } else if (A == "--inject-stale-summary") {
      Opts.InjectStaleSummary = true;
    } else if (A == "--inject-vm-bug") {
      Opts.InjectVmBug = true;
    } else if (A == "--corpus") {
      const char *V = NextValue();
      if (!V)
        return usage();
      Opts.CorpusDir = V;
    } else if (A == "--out") {
      const char *V = NextValue();
      if (!V)
        return usage();
      Opts.OutDir = V;
    } else if (A == "--minimize") {
      Opts.Minimize = true;
    } else if (A == "--inject-legality-bug") {
      Opts.InjectLegalityBug = true;
    } else if (A == "--inject-lint-bug") {
      Opts.InjectLintBug = true;
    } else if (A == "--inject-hazard") {
      const char *V = NextValue();
      if (!V)
        return usage();
      if (std::strcmp(V, "uaf") == 0)
        Opts.InjectHazard = HazardKind::DanglingUse;
      else if (std::strcmp(V, "uninit") == 0)
        Opts.InjectHazard = HazardKind::UninitRead;
      else
        return usage();
    } else if (A == "--sampled-profiles") {
      Opts.SampledProfiles = true;
    } else {
      std::fprintf(stderr, "slo_fuzz: unknown argument '%s'\n", A.c_str());
      return usage();
    }
  }

  DifferentialOptions DOpts;
  DOpts.InjectLegalityBug = Opts.InjectLegalityBug;
  DOpts.InjectLintBug = Opts.InjectLintBug;
  DOpts.ExpectedHazard = Opts.InjectHazard;
  DOpts.Engine = Opts.Engine;
  DOpts.CheckEngineParity = Opts.EngineParity;
  DOpts.InjectVmBug = Opts.InjectVmBug;
  if (Opts.SampledProfiles) {
    // A realistic collection: miss-driven weights from a jittered
    // period-61 sweep with a little Itanium skid.
    DOpts.Scheme = WeightScheme::DMISS;
    DOpts.SampledProfilePeriod = 61;
    DOpts.SampledProfileSkid = 2;
  }

  if (Opts.IncrementalParity) {
    unsigned Failures = runIncrementalParitySweep(Opts);
    if (Failures) {
      std::printf("[slo_fuzz] FAILED: %u failure(s)\n", Failures);
      return 1;
    }
    std::printf("[slo_fuzz] all checks passed\n");
    return 0;
  }
  if (Opts.InjectStaleSummary) {
    std::fprintf(stderr,
                 "slo_fuzz: --inject-stale-summary requires "
                 "--incremental-parity\n");
    return 2;
  }

  unsigned Failures = 0;
  if (!Opts.CorpusDir.empty()) {
    if (!std::filesystem::is_directory(Opts.CorpusDir)) {
      std::fprintf(stderr, "slo_fuzz: corpus dir '%s' not found\n",
                   Opts.CorpusDir.c_str());
      return 2;
    }
    Failures += runCorpus(Opts, DOpts);
  }
  if (Opts.Runs > 0)
    Failures += runRandom(Opts, DOpts);

  if (Failures) {
    std::printf("[slo_fuzz] FAILED: %u failure(s)\n", Failures);
    return 1;
  }
  std::printf("[slo_fuzz] all checks passed\n");
  return 0;
}
