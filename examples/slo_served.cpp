//===- examples/slo_served.cpp - The advisory daemon front door -----------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// SLO-as-a-service: serves the advisory pipeline on a localhost TCP
// port speaking the length-prefixed protocol (DESIGN.md §13). Clients
// (slo_client, or anything speaking the protocol) stream MiniC sources,
// summary uploads and feedback payloads, and read back program-wide
// advice that is byte-identical to a one-shot `slo_driver
// --summary-cache` run over the same translation units.
//
//   slo_served [options]
//     --port=N            listen port (default 0 = ephemeral)
//     --port-file=P       write the bound port to P (for scripts)
//     --scheme=NAME       static scheme: ISPBO (default) | SPBO |
//                         ISPBO.NO | ISPBO.W
//     --lint              summaries carry lint findings (matches
//                         `slo_driver --summary-cache --lint`)
//     --shards=N          state shard count (default 16)
//     --queue-depth=N     max in-flight ingest requests (default 8)
//     --retry-after-ms=N  backoff carried in RetryAfter (default 20)
//     --timeout-ms=N      mid-frame stall budget (default 5000)
//     --idle-timeout-ms=N per-connection idle budget (default 0 = none)
//     --max-conn=N        connection cap (default 64)
//     --stats-json=P      write service counters + ingest digests to P
//                         on exit
//     --trace-json=P      write Chrome trace_event spans to P on exit
//     --metrics-json=P    write the GetMetrics JSON (counters +
//                         histogram snapshots) to P on exit
//     --flight-depth=N    per-connection flight-recorder events
//                         (default 64; 0 disables)
//     --inject-frame-bug  deliberately answer garbage opcodes as Ping
//                         (non-vacuity check for the frame fuzzer)
//
// Flight-recorder dumps (timeouts, malformed frames, drain closes) go
// to stderr as single-line JSON, ready for grep / jq.
//
// SIGINT/SIGTERM and the protocol's Shutdown request both trigger the
// same graceful drain: stop accepting, finish in-flight requests, flush
// responses, exit 0.
//
//===----------------------------------------------------------------------===//

#include "DriverUtils.h"

#include "observability/CounterRegistry.h"
#include "observability/Histogram.h"
#include "observability/Tracer.h"
#include "service/AdvisoryDaemon.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace slo;
using namespace slo::service;
using namespace slo::driver;

namespace {

volatile std::sig_atomic_t GSignal = 0;
void onSignal(int Sig) { GSignal = Sig; }

bool writeFileOrWarn(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
  if (!Out.good()) {
    std::fprintf(stderr, "slo_served: cannot write %s\n", Path.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  DaemonConfig Config;
  // Match slo_driver's defaults: lint is opt-in there, so the daemon's
  // advice stays byte-comparable to a plain --summary-cache run.
  Config.Summary.Lint = false;
  uint64_t Port = 0;
  std::string PortFile, StatsJsonPath, TraceJsonPath, MetricsJsonPath;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I], V;
    uint64_t N = 0;
    if (valuedFlag("--port", argc, argv, I, V)) {
      if (!parseU64Arg("--port", V, Port) || Port > 65535) {
        std::fprintf(stderr, "--port expects 0..65535\n");
        return 1;
      }
    } else if (valuedFlag("--port-file", argc, argv, I, V)) {
      PortFile = V;
    } else if (A.rfind("--scheme=", 0) == 0) {
      std::string S = A.substr(9);
      if (S == "ISPBO")
        Config.Summary.Scheme = WeightScheme::ISPBO;
      else if (S == "SPBO")
        Config.Summary.Scheme = WeightScheme::SPBO;
      else if (S == "ISPBO.NO")
        Config.Summary.Scheme = WeightScheme::ISPBO_NO;
      else if (S == "ISPBO.W")
        Config.Summary.Scheme = WeightScheme::ISPBO_W;
      else {
        std::fprintf(stderr,
                     "slo_served serves static schemes only, got '%s'\n",
                     S.c_str());
        return 1;
      }
    } else if (A == "--lint") {
      Config.Summary.Lint = true;
    } else if (valuedFlag("--shards", argc, argv, I, V)) {
      if (!parseU64Arg("--shards", V, N))
        return 1;
      Config.Shards = static_cast<unsigned>(N);
    } else if (valuedFlag("--queue-depth", argc, argv, I, V)) {
      if (!parseU64Arg("--queue-depth", V, N))
        return 1;
      Config.IngestQueueDepth = static_cast<unsigned>(N);
    } else if (valuedFlag("--retry-after-ms", argc, argv, I, V)) {
      if (!parseU64Arg("--retry-after-ms", V, N))
        return 1;
      Config.RetryAfterMillis = static_cast<uint32_t>(N);
    } else if (valuedFlag("--timeout-ms", argc, argv, I, V)) {
      if (!parseU64Arg("--timeout-ms", V, N))
        return 1;
      Config.FrameTimeoutMillis = static_cast<int>(N);
    } else if (valuedFlag("--idle-timeout-ms", argc, argv, I, V)) {
      if (!parseU64Arg("--idle-timeout-ms", V, N))
        return 1;
      Config.IdleTimeoutMillis = static_cast<int>(N);
    } else if (valuedFlag("--max-conn", argc, argv, I, V)) {
      if (!parseU64Arg("--max-conn", V, N))
        return 1;
      Config.MaxConnections = static_cast<unsigned>(N);
    } else if (A.rfind("--stats-json=", 0) == 0) {
      StatsJsonPath = A.substr(13);
    } else if (A.rfind("--trace-json=", 0) == 0) {
      TraceJsonPath = A.substr(13);
    } else if (A.rfind("--metrics-json=", 0) == 0) {
      MetricsJsonPath = A.substr(15);
    } else if (valuedFlag("--flight-depth", argc, argv, I, V)) {
      if (!parseU64Arg("--flight-depth", V, N))
        return 1;
      Config.FlightRecorderDepth = static_cast<unsigned>(N);
    } else if (A == "--inject-frame-bug") {
      Config.InjectFrameBug = true;
    } else {
      std::fprintf(
          stderr,
          "usage: slo_served [--port=N] [--port-file=P] [--scheme=NAME] "
          "[--lint] [--shards=N] [--queue-depth=N] [--retry-after-ms=N] "
          "[--timeout-ms=N] [--idle-timeout-ms=N] [--max-conn=N] "
          "[--stats-json=P] [--trace-json=P] [--metrics-json=P] "
          "[--flight-depth=N] [--inject-frame-bug]\n");
      return A == "--help" ? 0 : 1;
    }
  }

  CounterRegistry Counters;
  HistogramRegistry Hist;
  Tracer Trace;
  Config.Counters = &Counters;
  Config.Hist = &Hist;
  Config.Trace = &Trace;
  Config.FlightDumpSink = [](const std::string &Json) {
    std::fprintf(stderr, "%s\n", Json.c_str());
  };
  if (Config.InjectFrameBug)
    std::fprintf(stderr, "slo_served: running with --inject-frame-bug; "
                         "this daemon is DELIBERATELY broken\n");

  AdvisoryDaemon Daemon(std::move(Config));
  if (!Daemon.listenTcp(static_cast<uint16_t>(Port))) {
    std::fprintf(stderr, "slo_served: cannot listen on 127.0.0.1:%llu\n",
                 static_cast<unsigned long long>(Port));
    return 1;
  }
  std::fprintf(stderr, "slo_served: listening on 127.0.0.1:%u\n",
               Daemon.port());
  if (!PortFile.empty() &&
      !writeFileOrWarn(PortFile, std::to_string(Daemon.port()) + "\n"))
    return 1;

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Park until a signal or a protocol Shutdown begins the drain.
  while (GSignal == 0 && !Daemon.stopping())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::fprintf(stderr, "slo_served: draining (%s)\n",
               GSignal ? "signal" : "shutdown request");
  Daemon.stop();

  if (!StatsJsonPath.empty()) {
    std::string Json = "{\"counters\": " + Counters.renderJson() +
                       ", \"records\": " +
                       Daemon.state().renderRecordDigestsJson() + "}\n";
    if (!writeFileOrWarn(StatsJsonPath, Json))
      return 1;
  }
  if (!MetricsJsonPath.empty()) {
    // The same shape GetMetrics serves over the wire.
    std::string Json = "{\"counters\": " + Counters.renderJson() +
                       ", \"histograms\": " + Hist.renderJson() + "}\n";
    if (!writeFileOrWarn(MetricsJsonPath, Json))
      return 1;
  }
  if (!TraceJsonPath.empty() &&
      !writeFileOrWarn(TraceJsonPath, Trace.renderChromeJson()))
    return 1;
  std::fprintf(stderr, "slo_served: stopped cleanly\n");
  return 0;
}
