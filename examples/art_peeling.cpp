//===- examples/art_peeling.cpp - Structure peeling on 179.art ------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Demonstrates the paper's best result: the art-like neural network
// workload, whose single global array of all-floating-point neurons is
// peeled into one array per field (Figure 1c). Shows the peelability
// analysis verdicts, the resulting layouts, and the speedup.
//
//   $ ./art_peeling
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"
#include "transform/StructPeel.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace slo;

static RunOptions refParams(const Workload &W) {
  RunOptions O;
  O.IntParams = W.RefParams;
  O.Cache = CacheConfig::scaledItanium(); // See EXPERIMENTS.md.
  return O;
}

int main() {
  const Workload *W = findWorkload("179.art");

  // Baseline.
  IRContext RefCtx;
  std::unique_ptr<Module> Ref =
      compileProgramOrDie(RefCtx, W->Name, W->Sources);
  RunResult Before = runProgram(*Ref, refParams(*W));
  if (Before.Trapped) {
    std::fprintf(stderr, "baseline trapped: %s\n",
                 Before.TrapReason.c_str());
    return 1;
  }

  // Show the peelability verdict for every record type.
  IRContext Ctx;
  std::unique_ptr<Module> M =
      compileProgramOrDie(Ctx, W->Name, W->Sources);
  LegalityResult Legal = analyzeLegality(*M);
  std::printf("== peelability ==\n");
  for (RecordType *Rec : Legal.types()) {
    PeelabilityInfo Info = analyzePeelability(*M, Rec, Legal.get(Rec));
    std::printf("  %-12s %s%s\n", Rec->getRecordName().c_str(),
                Info.Peelable ? "PEELABLE" : "not peelable: ",
                Info.Peelable ? "" : Info.Reason.c_str());
  }

  // Transform and compare.
  PipelineOptions Opts;
  PipelineResult P = runStructLayoutPipeline(*M, Opts);
  std::printf("\n== transformation ==\n");
  for (const std::string &Line : P.Summary.Log)
    std::printf("  %s\n", Line.c_str());
  for (const AppliedTransform &A : P.Summary.Applied)
    for (RecordType *G : A.Peel.GroupRecs)
      std::printf("%s", printRecordLayout(*G).c_str());

  RunResult After = runProgram(*M, refParams(*W));
  if (After.Trapped) {
    std::fprintf(stderr, "transformed run trapped: %s\n",
                 After.TrapReason.c_str());
    return 1;
  }

  bool Same = Before.PrintedFloats == After.PrintedFloats;
  double Perf = 100.0 * (static_cast<double>(Before.Cycles) /
                             static_cast<double>(After.Cycles) -
                         1.0);
  std::printf("\n== results (reference input) ==\n");
  std::printf("  cycles before : %llu\n",
              static_cast<unsigned long long>(Before.Cycles));
  std::printf("  cycles after  : %llu\n",
              static_cast<unsigned long long>(After.Cycles));
  std::printf("  output equal  : %s\n", Same ? "yes" : "NO (bug!)");
  std::printf("  performance   : %+.1f%%  (paper: +78.2%%)\n", Perf);
  return Same ? 0 : 1;
}
