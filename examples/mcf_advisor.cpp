//===- examples/mcf_advisor.cpp - The advisory workflow on 181.mcf --------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Reproduces the paper's §3 advisory workflow end to end:
//   1. compile the mcf-like workload,
//   2. run it instrumented (edge counts + d-cache events per field),
//   3. print the annotated type layouts in the paper's Figure 2 format,
//   4. emit a VCG affinity graph for the node type.
//
//   $ ./mcf_advisor [--vcg]
//
//===----------------------------------------------------------------------===//

#include "advisor/AdvisorReport.h"
#include "frontend/Frontend.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace slo;

int main(int argc, char **argv) {
  bool EmitVcg = argc > 1 && std::strcmp(argv[1], "--vcg") == 0;

  const Workload *W = findWorkload("181.mcf");
  IRContext Ctx;
  std::unique_ptr<Module> M =
      compileProgramOrDie(Ctx, W->Name, W->Sources);

  // PBO collection run on the training input: the interpreter doubles as
  // the instrumented binary and the PMU.
  FeedbackFile Train;
  RunOptions Opts;
  Opts.IntParams = W->TrainParams;
  Opts.Profile = &Train;
  RunResult R = runProgram(*M, std::move(Opts));
  if (R.Trapped) {
    std::fprintf(stderr, "training run trapped: %s\n",
                 R.TrapReason.c_str());
    return 1;
  }

  // Analyze with the profile, but do not transform: this is the paper's
  // reporting mode.
  PipelineOptions POpts;
  POpts.Scheme = WeightScheme::PBO;
  POpts.AnalyzeOnly = true;
  PipelineResult P = runStructLayoutPipeline(*M, POpts, &Train);

  AdvisorInputs In;
  In.M = M.get();
  In.Legal = &P.Legality;
  In.Stats = &P.Stats;
  In.Cache = &Train;
  In.Plans = &P.Plans;
  In.Refined = &P.Refined;
  In.MtNotes = true;
  std::printf("%s", renderAdvisorReport(In).c_str());

  if (EmitVcg) {
    RecordType *Node = Ctx.getTypes().lookupRecord("node");
    const TypeFieldStats *S = P.Stats.get(Node);
    std::printf("\n---- VCG graph (feed to xvcg/aiSee) ----\n%s",
                renderVcgGraph(*S).c_str());
  }
  return 0;
}
