//===- examples/false_sharing_advice.cpp - Multi-threaded layout advice ---===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The paper (§2.4, §3.3) points out that multi-threaded applications
// want a different heuristic: write-heavy fields sharing a cache line
// with read-mostly fields cause coherency traffic, so they should be
// grouped by read/write behaviour rather than by hotness, and the HP-UX
// kernel team used exactly the advisor's read/write counts for this.
// This example shows the advisory MT notes on a shared-counter-style
// structure.
//
//   $ ./false_sharing_advice
//
//===----------------------------------------------------------------------===//

#include "advisor/AdvisorReport.h"
#include "frontend/Frontend.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"

#include <cstdio>

using namespace slo;

static const char *Program = R"(
  extern void print_i64(long v);
  struct conn_state {
    long proto_id;       // read-mostly: checked on every packet
    long flags;          // read-mostly
    long bytes_rx;       // written on every packet
    long bytes_tx;       // written on every packet
    long peer_key;       // read-mostly
    long last_seq;       // written on every packet
  };
  struct conn_state *conns;
  void pin(struct conn_state *p) { }
  int main() {
    long n = 4096;
    conns = (struct conn_state*) malloc(n * sizeof(struct conn_state));
    pin(conns);
    for (long i = 0; i < n; i++) {
      conns[i].proto_id = i % 3;
      conns[i].flags = 1;
      conns[i].bytes_rx = 0;
      conns[i].bytes_tx = 0;
      conns[i].peer_key = i * 17;
      conns[i].last_seq = 0;
    }
    long routed = 0;
    for (long r = 0; r < 64; r++) {
      for (long i = 0; i < n; i++) {
        // Per-packet path: reads the routing fields, writes the stats.
        if (conns[i].proto_id != 2 && conns[i].flags != 0) {
          routed += conns[i].peer_key & 15;
          conns[i].bytes_rx = conns[i].bytes_rx + 64;
          conns[i].bytes_tx = conns[i].bytes_tx + 32;
          conns[i].last_seq = conns[i].last_seq + 1;
        }
      }
    }
    print_i64(routed);
    free(conns);
    return 0;
  }
)";

int main() {
  IRContext Ctx;
  std::vector<std::string> Diags;
  std::unique_ptr<Module> M =
      compileMiniC(Ctx, "connstate", Program, Diags);
  if (!M) {
    std::fprintf(stderr, "compile error: %s\n", Diags[0].c_str());
    return 1;
  }

  // Collect a profile so the report carries real read/write counts and
  // d-cache events.
  FeedbackFile Train;
  RunOptions Opts;
  Opts.Profile = &Train;
  RunResult R = runProgram(*M, std::move(Opts));
  if (R.Trapped) {
    std::fprintf(stderr, "run trapped: %s\n", R.TrapReason.c_str());
    return 1;
  }

  PipelineOptions POpts;
  POpts.Scheme = WeightScheme::PBO;
  POpts.AnalyzeOnly = true; // Advice only; no automatic transformation.
  PipelineResult P = runStructLayoutPipeline(*M, POpts, &Train);

  AdvisorInputs In;
  In.M = M.get();
  In.Legal = &P.Legality;
  In.Stats = &P.Stats;
  In.Cache = &Train;
  In.Plans = &P.Plans;
  In.MtNotes = true; // The §3.3 multi-threaded grouping advice.
  std::printf("%s", renderAdvisorReport(In).c_str());

  std::printf("\nIn a multi-threaded server, placing bytes_rx/bytes_tx/"
              "last_seq on their own\ncache line (away from proto_id/"
              "flags/peer_key) avoids invalidating the\nread-mostly line "
              "on every packet.\n");
  return 0;
}
